//! Query discovery over the baseball `People` table (§5.2.3 end to end).
//!
//! Generates the synthetic table, picks a target query (T6: tall, heavy
//! players), samples two example players from its output, generates
//! candidate CNF queries, and interactively discovers the target by asking
//! membership questions about individual players.
//!
//! ```sh
//! cargo run --release --example query_discovery
//! ```

use interactive_set_discovery::core::cost::AvgDepth;
use interactive_set_discovery::core::discovery::{Session, SimulatedOracle};
use interactive_set_discovery::core::lookahead::KLp;
use interactive_set_discovery::core::EntitySet;
use interactive_set_discovery::relation::candgen::{generate_candidates, ReferenceValues};
use interactive_set_discovery::relation::people::people_table_sized;
use interactive_set_discovery::relation::targets::target_queries;

fn main() {
    // A 6,000-row table keeps the example snappy; `people_table(seed)`
    // gives the full 20,185 rows.
    let table = people_table_sized(6_000, 42);
    let targets = target_queries(&table);
    let target = &targets[5]; // T6: height>75 AND weight>260
    let output = target.query.evaluate(&table);
    println!(
        "Target {}: {}  →  {} tuples",
        target.id,
        target.query.display(&table),
        output.len()
    );

    // Two example tuples from the target output.
    let examples = [output[0], output[output.len() / 2]];
    println!(
        "Example players: {} and {}",
        table.row_name(examples[0]),
        table.row_name(examples[1])
    );

    // Candidate queries that contain both examples (steps 1–5 of §5.2.3).
    let cands = generate_candidates(&table, &examples, &ReferenceValues::paper_defaults());
    println!(
        "{} candidate queries generated, {} with distinct outputs",
        cands.n_generated,
        cands.collection.len()
    );

    // Interactive discovery with 2-step lookahead.
    let target_set = EntitySet::from_raw(output.iter().copied());
    let mut session = Session::over(cands.collection.full_view(), KLp::<AvgDepth>::new(2));
    let mut oracle = SimulatedOracle::new(&target_set);
    let outcome = session.run(&mut oracle).expect("truthful oracle");
    let found = outcome.discovered().expect("resolves to one query");
    println!(
        "Discovered after {} membership questions:",
        outcome.questions
    );
    println!("  {}", cands.queries[found.0 as usize].display(&table));
    for (entity, answer) in session.history() {
        println!("    asked about {} → {answer:?}", table.row_name(entity.0));
    }
    assert_eq!(cands.collection.set(found), &target_set);
    println!("Output matches the target query exactly.");
}
