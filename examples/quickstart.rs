//! Quickstart: the paper's running example (Figure 1 / Figure 2a).
//!
//! Builds the seven-set collection, constructs an optimal decision tree
//! with 3-step lookahead, prints it, and interactively discovers a target
//! set with a simulated user.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use interactive_set_discovery::prelude::*;

fn main() {
    // Entities a..k ↦ 0..10, named for readable output.
    let mut names = EntityInterner::new();
    for n in ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"] {
        names.intern(n);
    }

    // The collection of Figure 1.
    let collection = Collection::from_raw_sets(vec![
        vec![0, 1, 2, 3],    // S1 = {a,b,c,d}
        vec![0, 3, 4],       // S2 = {a,d,e}
        vec![0, 1, 2, 3, 5], // S3 = {a,b,c,d,f}
        vec![0, 1, 2, 6, 7], // S4 = {a,b,c,g,h}
        vec![0, 1, 7, 8],    // S5 = {a,b,h,i}
        vec![0, 1, 9, 10],   // S6 = {a,b,j,k}
        vec![0, 1, 6],       // S7 = {a,b,g}
    ])
    .expect("non-empty, unique sets");

    // Offline: build a decision tree with k-LP (k = 3, average-depth cost).
    let mut strategy = KLp::<AvgDepth>::new(3);
    let tree = build_tree(&collection.full_view(), &mut strategy).expect("tree");
    println!(
        "Decision tree (avg depth {:.3}, height {}):",
        tree.avg_depth(),
        tree.height()
    );
    println!("{}", tree.render(Some(&names)));
    assert_eq!(tree.total_depth(), 20, "optimal: 20/7 ≈ 2.857 (Lemma 3.3)");

    // Online: discover S5 = {a,b,h,i} starting from the ambiguous
    // example {b}, which six of the seven sets contain.
    let target = collection.set(SetId(4)).clone();
    let mut session = Session::new(&collection, &[EntityId(1)], KLp::<AvgDepth>::new(2));
    println!(
        "Initial example {{b}} leaves {} candidates",
        session.candidate_count()
    );
    let mut oracle = SimulatedOracle::new(&target);
    while !session.is_resolved() {
        let q = session.next_question().expect("informative entity exists");
        let answer = <SimulatedOracle as Oracle>::answer(&mut oracle, q);
        println!("  Q: is {} in your set?  A: {answer:?}", names.display(q));
        session.answer(q, answer);
    }
    let outcome = session.outcome();
    println!(
        "Discovered {} in {} questions",
        outcome
            .discovered()
            .map(|s| s.to_string())
            .unwrap_or_default(),
        outcome.questions
    );
    assert_eq!(outcome.discovered(), Some(SetId(4)));
}
