//! The paper's opening scenario (§1): a triage machine narrowing down
//! disease cases by asking about symptoms.
//!
//! Each "set" is a disease profile — the collection of symptoms its cases
//! exhibit. A patient reports a few symptoms (the initial example set); the
//! machine then asks the most informative follow-up symptom questions until
//! one profile remains, comparing InfoGain against 2-step lookahead.
//!
//! ```sh
//! cargo run --example symptom_triage
//! ```

use interactive_set_discovery::prelude::*;

const PROFILES: &[(&str, &[&str])] = &[
    (
        "influenza",
        &[
            "fever",
            "headache",
            "fatigue",
            "cough",
            "muscle-ache",
            "chills",
        ],
    ),
    (
        "covid",
        &[
            "fever",
            "fatigue",
            "cough",
            "loss-of-smell",
            "shortness-of-breath",
            "headache",
        ],
    ),
    (
        "common-cold",
        &["cough", "sneezing", "runny-nose", "sore-throat", "fatigue"],
    ),
    (
        "migraine",
        &["headache", "nausea", "light-sensitivity", "aura", "fatigue"],
    ),
    (
        "tension-headache",
        &["headache", "neck-pain", "fatigue", "stress", "nausea"],
    ),
    (
        "gastroenteritis",
        &[
            "nausea", "vomiting", "diarrhea", "fever", "fatigue", "cramps", "headache",
        ],
    ),
    (
        "food-poisoning",
        &["nausea", "vomiting", "diarrhea", "cramps", "chills"],
    ),
    (
        "meningitis",
        &[
            "fever",
            "headache",
            "stiff-neck",
            "nausea",
            "light-sensitivity",
            "confusion",
            "fatigue",
        ],
    ),
    (
        "sinusitis",
        &[
            "headache",
            "facial-pain",
            "runny-nose",
            "congestion",
            "fatigue",
        ],
    ),
    (
        "strep-throat",
        &[
            "sore-throat",
            "fever",
            "headache",
            "swollen-glands",
            "fatigue",
        ],
    ),
    (
        "mononucleosis",
        &[
            "fatigue",
            "fever",
            "sore-throat",
            "swollen-glands",
            "headache",
            "rash",
            "nausea",
        ],
    ),
    (
        "allergy",
        &["sneezing", "runny-nose", "itchy-eyes", "congestion"],
    ),
    (
        "anemia",
        &[
            "fatigue",
            "dizziness",
            "pale-skin",
            "shortness-of-breath",
            "headache",
        ],
    ),
    (
        "hypothyroidism",
        &["fatigue", "weight-gain", "cold-intolerance", "dry-skin"],
    ),
    (
        "dehydration",
        &[
            "fatigue",
            "dizziness",
            "headache",
            "dry-mouth",
            "cramps",
            "nausea",
        ],
    ),
];

fn main() {
    let mut names = EntityInterner::new();
    let mut builder = CollectionBuilder::new();
    for (_, symptoms) in PROFILES {
        builder.push(EntitySet::from_iter(
            symptoms.iter().map(|s| names.intern(s)),
        ));
    }
    let built = builder.build().expect("profiles");
    let collection = built.collection;

    // The patient from §1: headache, nausea and fatigue.
    let reported: Vec<EntityId> = ["headache", "nausea", "fatigue"]
        .iter()
        .map(|s| names.get(s).expect("known symptom"))
        .collect();

    // Ground truth for the simulation: the patient has a migraine.
    let truth_id = PROFILES
        .iter()
        .position(|(d, _)| *d == "migraine")
        .expect("profile exists") as u32;
    let truth = collection.set(SetId(truth_id)).clone();

    let runs: [(&str, Box<dyn SelectionStrategy>); 2] = [
        ("InfoGain", Box::new(InfoGain::new())),
        ("k-LP(k=2, AD)", Box::new(KLp::<AvgDepth>::new(2))),
    ];
    for (label, strategy) in runs {
        let mut session = Session::new(&collection, &reported, strategy);
        println!(
            "[{label}] {} candidate diagnoses after intake",
            session.candidate_count()
        );
        let mut oracle = SimulatedOracle::new(&truth);
        while !session.is_resolved() {
            let Some(q) = session.next_question() else {
                break;
            };
            let a = <SimulatedOracle as Oracle>::answer(&mut oracle, q);
            println!(
                "  do you have {}? {}",
                names.display(q),
                if a == Answer::Yes { "yes" } else { "no" }
            );
            session.answer(q, a);
        }
        let outcome = session.outcome();
        let diagnosis = outcome
            .discovered()
            .map(|id| PROFILES[id.0 as usize].0)
            .unwrap_or("inconclusive");
        println!(
            "[{label}] diagnosis: {diagnosis} ({} questions)\n",
            outcome.questions
        );
        assert_eq!(diagnosis, "migraine");
    }
}
