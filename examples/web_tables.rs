//! Set discovery over a simulated web-table corpus (§5.2.1 end to end):
//! generate the corpus, pick a two-entity seed query, and find a target
//! column among the candidates — also demonstrating the "don't know" and
//! error-recovery extensions (§6).
//!
//! ```sh
//! cargo run --release --example web_tables
//! ```

use interactive_set_discovery::core::cost::AvgDepth;
use interactive_set_discovery::core::discovery::{
    FaultInjectingOracle, Session, SimulatedOracle, UnsureOracle,
};
use interactive_set_discovery::core::engine::Engine;
use interactive_set_discovery::core::lookahead::KLp;
use interactive_set_discovery::core::strategy::MostEven;
use interactive_set_discovery::synth::webtables::{self, WebTablesConfig};

fn main() {
    let corpus = webtables::generate(&WebTablesConfig {
        n_columns: 4_000,
        seed: 7,
        ..WebTablesConfig::default()
    });
    println!(
        "Corpus: {} column-sets ({} duplicates and {} tiny columns dropped)",
        corpus.collection.len(),
        corpus.duplicates_dropped,
        corpus.small_dropped
    );

    let queries = webtables::seed_queries(&corpus.collection, 50, 5, 11);
    let q = queries.first().expect("a popular entity pair");
    println!(
        "Seed query {:?} matches {} candidate sets",
        q.entities, q.n_candidates
    );
    let view = corpus.collection.supersets_of(&q.entities);
    let target_id = view.ids()[view.len() / 2];
    let target = corpus.collection.set(target_id).clone();

    // Plain discovery with 2-step lookahead.
    let mut session = Session::over(view.clone(), KLp::<AvgDepth>::new(2));
    let outcome = session
        .run(&mut SimulatedOracle::new(&target))
        .expect("truthful oracle");
    println!(
        "k-LP(2) found {} in {} questions (candidates were {})",
        target_id, outcome.questions, q.n_candidates
    );
    assert_eq!(outcome.discovered(), Some(target_id));

    // A hesitant user: 20% of questions answered "don't know".
    let mut session = Session::over(view.clone(), KLp::<AvgDepth>::new(2));
    let outcome = session
        .run(&mut UnsureOracle::new(&target, 0.2, 3))
        .expect("shrugs never contradict");
    println!(
        "with don't-know answers: {} questions + {} shrugs → {}",
        outcome.questions,
        outcome.unknowns,
        outcome
            .discovered()
            .map(|s| s.to_string())
            .unwrap_or_else(|| format!("{} candidates left", outcome.candidates.len()))
    );

    // An erring user: the third answer is wrong; the engine's backtracking
    // mode (§6, Algorithm 2) confirms-and-recovers to the true target.
    let mut recovering = Engine::new(&corpus.collection, &q.entities, MostEven::new());
    recovering.set_backtracking(true);
    let mut oracle = FaultInjectingOracle::new(&target, target_id, vec![2]);
    let recovered = recovering
        .run_confirming(&mut oracle, 1000)
        .expect("recoverable");
    println!(
        "with one wrong answer: recovered {} after {} backtracks ({} questions total)",
        target_id,
        recovering.backtracks(),
        recovered.questions
    );
    assert_eq!(recovered.discovered(), Some(target_id));
}
