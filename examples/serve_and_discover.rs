//! A programmatic client discovering a target through the wire protocol.
//!
//! Stands up the discovery service on a loopback TCP port inside this
//! process, then connects as an ordinary socket client and plays the
//! paper's opening scenario: knowing its secret set is S5 = {a, b, h, i},
//! the client answers the service's membership questions truthfully until
//! the service names the set.
//!
//! ```text
//! cargo run --example serve_and_discover
//! ```

use interactive_set_discovery::service::server::spawn_tcp;
use interactive_set_discovery::service::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    // Server side: a service hosting the paper's Figure 1 collection,
    // listening on an ephemeral loopback port.
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service
        .registry()
        .install_fixture("figure1")
        .expect("built-in fixture");
    let (addr, _accept_thread) =
        spawn_tcp(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    println!("service listening on {addr}");

    // Client side: a plain TCP socket speaking line-delimited JSON.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = BufWriter::new(stream);
    let mut call = move |line: &str| -> String {
        writeln!(writer, "{line}").expect("send");
        writer.flush().expect("flush");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("receive");
        print!("  -> {line}\n  <- {resp}");
        resp
    };

    // The secret set the "user" has in mind: S5 = {a, b, h, i}.
    let secret = ["a", "b", "h", "i"];
    println!("client's secret set: {{{}}}", secret.join(", "));

    // Open a session with one example entity (Algorithm 2's initial
    // examples I = {b} narrow the start to the six supersets of b).
    let resp =
        call(r#"{"op":"create","collection":"figure1","strategy":"klp","k":2,"examples":["b"]}"#);
    let session = resp
        .split("\"session\":")
        .nth(1)
        .and_then(|s| s.split(&[',', '}'][..]).next())
        .expect("session id")
        .to_string();

    // Ask/answer until the service reports done.
    loop {
        let resp = call(&format!(r#"{{"op":"ask","session":{session}}}"#));
        if resp.contains("\"done\":true") {
            let discovered = resp
                .split("\"discovered\":\"")
                .nth(1)
                .and_then(|s| s.split('"').next())
                .unwrap_or("<unresolved>");
            println!("service discovered the set: {discovered}");
            assert_eq!(discovered, "S5", "the wire protocol found the right set");
            break;
        }
        let entity = resp
            .split("\"entity\":\"")
            .nth(1)
            .and_then(|s| s.split('"').next())
            .expect("question entity");
        let answer = if secret.contains(&entity) {
            "yes"
        } else {
            "no"
        };
        call(&format!(
            r#"{{"op":"answer","session":{session},"entity":"{entity}","answer":"{answer}"}}"#
        ));
    }
    call(&format!(r#"{{"op":"close","session":{session}}}"#));
    println!("done.");
}
