//! Facade crate re-exporting the interactive-set-discovery workspace.
//!
//! * [`core`] — the paper's contribution: cost lower bounds, pruned k-step
//!   lookahead (k-LP / k-LPLE / k-LPLVE), decision trees, discovery
//!   sessions (with §6 backtracking/priors and §7 multiple-choice modes),
//!   exact optimal solver.
//! * [`synth`] — synthetic workloads (copy-add collections, simulated web
//!   tables).
//! * [`relation`] — the relational substrate for query discovery.
//! * [`plan`] — the cross-session question-plan cache: persisted
//!   decision-tree prefixes served to every session over a snapshot.
//! * [`service`] — the concurrent multi-session discovery service (snapshot
//!   registry, session table, JSON wire protocol, load harness).
//! * [`eval`] — experiment harness reproducing every paper table/figure.
//! * [`util`] — shared substrate (hashing, bitsets, exact log math, PRNG).
//!
//! See the repository README for a guided tour, `examples/` for runnable
//! entry points, and DESIGN.md / EXPERIMENTS.md for the reproduction notes.

#![forbid(unsafe_code)]

pub use setdisc_core as core;
pub use setdisc_eval as eval;
pub use setdisc_plan as plan;
pub use setdisc_relation as relation;
pub use setdisc_service as service;
pub use setdisc_synth as synth;
pub use setdisc_util as util;

pub use setdisc_core::prelude;
