//! Deterministic case runner: config, RNG, and the accept/reject loop.

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases required to pass.
    pub cases: u32,
    /// Give up after this many rejected cases across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases, other knobs at their defaults.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was discarded (filter/`prop_assume!`); retry with new input.
    Reject,
    /// A `prop_assert!` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Deterministic xoshiro256++ PRNG handed to strategies.
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Seed via splitmix64 expansion, like `rand_xoshiro`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }
}

/// Drives one `proptest!` test: samples inputs and tallies case results.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
}

impl TestRunner {
    /// A runner with the given config; seed comes from `PROPTEST_SEED`
    /// (decimal u64) when set, else a fixed default.
    pub fn new(config: ProptestConfig) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x5E7D_15C0_DA7A_u64);
        TestRunner { config, seed }
    }

    /// Run `case` until `config.cases` cases pass, a case fails, or the
    /// reject budget is exhausted. Returns a human-readable error.
    pub fn run<F>(&mut self, mut case: F) -> Result<(), String>
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut stream = 0u64;
        while passed < self.config.cases {
            let case_seed = self
                .seed
                .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            stream += 1;
            let mut rng = TestRng::seed_from_u64(case_seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        return Err(format!(
                            "too many rejected cases ({rejected}) after {passed} passes; \
                             loosen the strategy or raise max_global_rejects",
                        ));
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "property failed at case {passed} (seed {case_seed:#x}; \
                         rerun with PROPTEST_SEED={}): {message}",
                        self.seed,
                    ));
                }
            }
        }
        Ok(())
    }
}
