//! The [`Strategy`] trait, combinators, and integer-range strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values for property tests.
///
/// `sample` returns `None` when the candidate is rejected (e.g. by
/// `prop_filter`); the runner then discards the whole case and retries
/// with fresh randomness.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value, or `None` to reject this case.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Transform every generated value with `fun`.
    fn prop_map<O, F>(self, fun: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, fun }
    }

    /// Keep only values for which `fun` returns true.
    fn prop_filter<F>(self, whence: impl Into<String>, fun: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        let _ = whence.into();
        Filter { source: self, fun }
    }

    /// Map values through `fun`, rejecting those mapped to `None`.
    fn prop_filter_map<O, F>(self, whence: impl Into<String>, fun: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        let _ = whence.into();
        FilterMap { source: self, fun }
    }
}

/// Strategy yielding a single fixed value (cloned per case).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    fun: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.source.sample(rng).map(&self.fun)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    source: S,
    fun: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.source.sample(rng).filter(|v| (self.fun)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    source: S,
    fun: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.source.sample(rng).and_then(&self.fun)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                Some(((self.start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128) - (start as i128) + 1;
                Some(((start as i128) + (rng.next_u64() as i128).rem_euclid(span)) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
