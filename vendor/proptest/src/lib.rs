//! Minimal offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset of the proptest 1.x API used by this
//! workspace's `tests/properties.rs`: the [`proptest!`] macro,
//! `prop_assert!`-family macros, [`strategy::Strategy`] with
//! `prop_map`/`prop_filter`/`prop_filter_map`, integer-range strategies,
//! and `prop::collection::{vec, btree_set}`.
//!
//! Generation is deterministic (seeded xoshiro256++, overridable with
//! `PROPTEST_SEED`); failures report the case index and seed. Unlike the
//! real crate there is **no shrinking** and no regression-file
//! persistence — swap in the genuine dependency for those
//! (see `vendor/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace of strategy constructors, mirroring `prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {}: {}",
                    ::std::stringify!($cond),
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `left == right`\n  left: {left:?}\n right: {right:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`: {}\n  left: {left:?}\n right: {right:?}",
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: `left != right`\n  both: {left:?}"),
            ));
        }
    }};
}

/// Discard the current case (counts as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let outcome = runner.run(|rng| {
                $(
                    let $pat = match $crate::strategy::Strategy::sample(&$strat, rng) {
                        ::std::option::Option::Some(value) => value,
                        ::std::option::Option::None => {
                            return ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Reject,
                            )
                        }
                    };
                )+
                $body
                ::std::result::Result::Ok(())
            });
            if let ::std::result::Result::Err(message) = outcome {
                ::std::panic!("{}", message);
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}
