//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeSet;

/// Strategy for `Vec`s with element strategy `S` and length strategy `L`.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

/// Generate `Vec`s whose length is drawn from `len` (e.g. `2..=10usize`).
pub fn vec<S, L>(element: S, len: L) -> VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    VecStrategy { element, len }
}

impl<S, L> Strategy for VecStrategy<S, L>
where
    S: Strategy,
    L: Strategy<Value = usize>,
{
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let n = self.len.sample(rng)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.element.sample(rng)?);
        }
        Some(out)
    }
}

/// Strategy for `BTreeSet`s with element strategy `S` and size strategy `L`.
pub struct BTreeSetStrategy<S, L> {
    element: S,
    len: L,
}

/// Generate `BTreeSet`s targeting a size drawn from `len`.
///
/// Like the real crate, the produced set may be smaller than the drawn
/// size when the element strategy cannot supply enough distinct values.
pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: Strategy<Value = usize>,
{
    BTreeSetStrategy { element, len }
}

impl<S, L> Strategy for BTreeSetStrategy<S, L>
where
    S: Strategy,
    S::Value: Ord,
    L: Strategy<Value = usize>,
{
    type Value = BTreeSet<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<BTreeSet<S::Value>> {
        let target = self.len.sample(rng)?;
        let mut out = BTreeSet::new();
        let mut attempts = 0usize;
        while out.len() < target && attempts < target.saturating_mul(16).max(16) {
            out.insert(self.element.sample(rng)?);
            attempts += 1;
        }
        Some(out)
    }
}
