//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Exposes the subset of the criterion 0.5 API used by the
//! `crates/bench` bench targets and measures plain wall-clock time:
//! a few warm-up runs, then `sample_size` timed runs, reporting the
//! median and mean per iteration. There is no outlier analysis, HTML
//! report, or baseline comparison — swap in the real crate for those
//! (see `vendor/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work like the real crate.
pub use std::hint::black_box;

/// Top-level benchmark driver; hands out groups and runs bench bodies.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter taken from argv (criterion CLI compatibility).
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Accept (and mostly ignore) the criterion CLI: a bare positional
        // arg is a name filter. Value-less flags (`--bench` from
        // `cargo bench`, `--exact`, …) are skipped; any other `--flag` is
        // assumed to take a value so that e.g. `--sample-size 20` does not
        // turn `20` into a filter that matches nothing.
        const VALUELESS: &[&str] = &[
            "--bench",
            "--exact",
            "--list",
            "--noplot",
            "--quiet",
            "--verbose",
        ];
        let mut filter = None;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if VALUELESS.contains(&arg.as_str()) {
                continue;
            }
            if arg.starts_with('-') {
                let _ = args.next();
                continue;
            }
            filter = Some(arg);
            break;
        }
        Criterion {
            sample_size: 10,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let sample_size = self.sample_size;
        self.run_one(&name, sample_size, &mut f);
        self
    }

    fn run_one<F>(&mut self, name: &str, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        };
        f(&mut bencher);
        report(name, &mut bencher.samples);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of measured samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&name, sample_size, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (printing happens eagerly; this is a no-op).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter, for benches already inside a named group.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Timer handle passed to benchmark bodies.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine`: a few warm-up calls, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "{name:<48} median {:>12?}  mean {:>12?}  ({} samples)",
        median,
        mean,
        samples.len()
    );
}

/// Bundle benchmark functions into a runnable group, like the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups, like the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
