#!/usr/bin/env bash
# The single CI gate, runnable locally. Keep in sync with
# .github/workflows/ci.yml, which just calls this script.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check

# -D warnings also hardens the in-source `#![warn(missing_docs)]` lints
# every crate carries into errors.
run cargo clippy --workspace --all-targets -- -D warnings

run cargo build --release

run cargo test -q

# Deny rustdoc warnings (broken intra-doc links etc.).
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace

# End-to-end sanity: one experiment at smoke scale through the real binary.
run cargo run --release -p setdisc-eval --bin experiments -- table1 --scale smoke --no-csv >/dev/null

# Bench smoke: hot-path kernels at smoke scale, emitting the JSON perf
# artifact. The committed BENCH_hotpath.json is the baseline perf PRs
# compare against; regenerate it with this same command on a quiet machine.
run cargo bench -p setdisc-bench --bench bench_hotpath -- --scale smoke --out "$PWD/BENCH_hotpath.json"

echo "CI green."
