#!/usr/bin/env bash
# The single CI gate, runnable locally. Keep in sync with
# .github/workflows/ci.yml, which just calls this script.
set -euo pipefail
cd "$(dirname "$0")"

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all --check

# -D warnings also hardens the in-source `#![warn(missing_docs)]` lints
# every crate carries into errors.
run cargo clippy --workspace --all-targets -- -D warnings

run cargo build --release

run cargo test -q

# Deny rustdoc warnings (broken intra-doc links etc.).
RUSTDOCFLAGS="-D warnings" run cargo doc --no-deps --workspace

# Chaos suite under a pinned fault seed: torn clients, oversized and
# half-written frames, deadline stalls, injected I/O errors and panics —
# with the invariant that surviving sessions stay bit-identical to direct
# engine runs. The pinned seed makes any CI failure reproducible locally
# with the same variable.
SETDISC_FAULT_SEED=42 run cargo test -q -p setdisc-service --test chaos

# End-to-end sanity: one experiment at smoke scale through the real binary.
run cargo run --release -p setdisc-eval --bin experiments -- table1 --scale smoke --no-csv >/dev/null

# Bench smoke: hot-path kernels at smoke scale, emitting the JSON perf
# artifact. The committed BENCH_hotpath.json is the baseline perf PRs
# compare against; --compare prints per-kernel deltas against it (read
# before the file is overwritten). Regenerate on a quiet machine.
run cargo bench -p setdisc-bench --bench bench_hotpath -- --scale smoke \
    --compare "$PWD/BENCH_hotpath.json" --out "$PWD/BENCH_hotpath.json"

# Cost-model calibration report (DESIGN.md §14): force both counting
# kernels over a size range, fit ns/element and ns/scan-unit through the
# origin, and print the implied break-even dispatch factor next to the
# committed constants — the measured input for ROADMAP item 3's re-fit.
run cargo bench -p setdisc-bench --bench bench_hotpath -- --scale smoke --calibrate

# Service wire-protocol smoke: the serve binary (stdio transport) must
# reproduce the committed golden transcript byte for byte. (The same pair
# of files is replayed in-process by crates/service/tests/wire_golden.rs.)
echo "==> service stdio golden transcript"
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    < crates/service/tests/wire_smoke.in \
    | diff -u crates/service/tests/wire_smoke.golden -

# Session-mode golden: §6 backtracking (recover:true), per-set priors, and
# §7 multiple-choice screens over the same stdio transport. The classic
# wire_smoke pair above must stay byte-identical with all of these modes
# compiled in — new wire fields are strictly additive.
echo "==> service stdio session-mode golden transcript"
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    < crates/service/tests/wire_noisy.in \
    | diff -u crates/service/tests/wire_noisy.golden -

# Telemetry must be invisible on the wire: with span recording armed
# (SETDISC_OBS=1 — same switch as serve --metrics), both committed golden
# transcripts must stay byte-identical. Site histograms only ever surface
# through the session-less metrics op, never in session replies.
echo "==> armed-telemetry golden transcripts stay byte-identical"
SETDISC_OBS=1 cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    < crates/service/tests/wire_smoke.in \
    | diff -u crates/service/tests/wire_smoke.golden -
SETDISC_OBS=1 cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    < crates/service/tests/wire_noisy.in \
    | diff -u crates/service/tests/wire_noisy.golden -

# Record → replay (DESIGN.md §14): drive both committed transcripts
# through serve with the session journal armed — the wire output must stay
# byte-identical to the goldens — then re-drive each journal through a
# fresh in-process service with the replay binary, which must reproduce
# every recorded response byte for byte. A third, chaos-armed recording
# (pinned fault seed, one injected selection panic mid-conversation) must
# also replay exactly: the journal's meta record captures the
# SETDISC_FAULTS spec, and replay re-arms it so the seeded per-site stream
# fires at the same dispatch ordinal.
echo "==> session journal record -> replay"
JOURNAL_TMP=$(mktemp -d)
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --journal "$JOURNAL_TMP/smoke" \
    < crates/service/tests/wire_smoke.in \
    | diff -u crates/service/tests/wire_smoke.golden -
run cargo run --release -q -p setdisc-service --bin replay -- --quiet "$JOURNAL_TMP/smoke"
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --journal "$JOURNAL_TMP/noisy" \
    < crates/service/tests/wire_noisy.in \
    | diff -u crates/service/tests/wire_noisy.golden -
run cargo run --release -q -p setdisc-service --bin replay -- --quiet "$JOURNAL_TMP/noisy"
SETDISC_FAULTS="seed=42,engine.select=panic:1:0:1" \
    cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --journal "$JOURNAL_TMP/chaos" \
    < crates/service/tests/wire_smoke.in >/dev/null 2>"$JOURNAL_TMP/chaos.err"
run cargo run --release -q -p setdisc-service --bin replay -- --quiet "$JOURNAL_TMP/chaos"
rm -rf "$JOURNAL_TMP"

# Memory-governance soak (DESIGN.md §13): a 1 MB budget cannot hold the
# lazily registered multi-MB fixtures, so a 100-create flood against them
# must shed every single request with the structured overloaded shape —
# each attempt materializes the snapshot, walks the degradation ladder,
# and is refused *before* a session id is allocated. The classic
# transcript then replays on the very same process: session ids 1 and 2,
# every line after the collections listing byte-identical to the golden
# (line 1 differs only by the extra registered fixtures and figure1's
# governed state, since the ladder unloaded the cold figure1 too).
echo "==> memory-governance soak (1 MB budget)"
SOAK_TMP=$(mktemp -d)
{
    for _ in $(seq 50); do
        echo '{"op":"create","collection":"copyadd:3000:0.5:1"}'
        echo '{"op":"create","collection":"copyadd:2500:0.5:2"}'
    done
    cat crates/service/tests/wire_smoke.in
} > "$SOAK_TMP/in"
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --memory-budget-mb 1 \
    --register copyadd:3000:0.5:1 --register copyadd:2500:0.5:2 \
    < "$SOAK_TMP/in" > "$SOAK_TMP/out"
NOT_SHED=$(head -n 100 "$SOAK_TMP/out" | { grep -vc '"code":"overloaded"' || true; })
[ "$NOT_SHED" -eq 0 ] \
    || { echo "flood creates were not all shed:"; head -n 100 "$SOAK_TMP/out" | grep -v overloaded | head -n 3; exit 1; }
sed -n '101p' "$SOAK_TMP/out" | grep -q '"figure1"' \
    || { echo "collections listing lost figure1:"; sed -n '101p' "$SOAK_TMP/out"; exit 1; }
tail -n +102 "$SOAK_TMP/out" | diff -u <(tail -n +2 crates/service/tests/wire_smoke.golden) -
rm -rf "$SOAK_TMP"

# With a generous budget the governor must be invisible: both committed
# transcripts replay byte-for-byte with governance armed. (The same pair
# runs in-process in crates/service/tests/wire_golden.rs.)
echo "==> governed golden transcripts stay byte-identical (512 MB budget)"
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --memory-budget-mb 512 \
    < crates/service/tests/wire_smoke.in \
    | diff -u crates/service/tests/wire_smoke.golden -
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --memory-budget-mb 512 \
    < crates/service/tests/wire_noisy.in \
    | diff -u crates/service/tests/wire_noisy.golden -

# Telemetry reconciliation: metrics_check boots a live TCP server with
# spans armed, replays truthful sessions over real sockets, and asserts
# (a) the Prometheus rendering parses against the minimal exposition
# grammar, (b) the engine.select event count grew by exactly the number
# of questions asked, and (c) plan hit/miss/node counters agree between
# the metrics op, the status op, and the Prometheus text.
run cargo run --release -q -p setdisc-service --bin metrics_check

# Plan-cache round trip: precompute a question plan to disk, boot serve
# warm from the persisted file, replay the golden transcript — output must
# stay byte-identical with the cache enabled — and assert the plan actually
# served (nonzero hit count in the trailing service-status line).
echo "==> plan-cache precompute round trip"
PLAN_TMP=$(mktemp -d)
run cargo run --release -q -p setdisc-eval --bin discover -- precompute \
    --fixture figure1 --strategy klp --k 2 \
    --out "$PLAN_TMP/figure1.plan" --max-nodes 512 --max-depth 16
{ cat crates/service/tests/wire_smoke.in; echo '{"op":"status"}'; } > "$PLAN_TMP/in"
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --plan-cache "$PLAN_TMP/figure1.plan" \
    < "$PLAN_TMP/in" > "$PLAN_TMP/out"
GOLDEN_LINES=$(wc -l < crates/service/tests/wire_smoke.golden)
# Line 1 is the collections listing, whose accounted plan_bytes is
# honestly nonzero on a warm boot (the precomputed plan is resident
# memory); every session line from 2 on must stay byte-identical.
sed -n '1p' "$PLAN_TMP/out" | grep -Eq '"plan_bytes":[1-9]' \
    || { echo "warm boot reported no resident plan bytes:"; sed -n '1p' "$PLAN_TMP/out"; exit 1; }
head -n "$GOLDEN_LINES" "$PLAN_TMP/out" | tail -n +2 \
    | diff -u <(tail -n +2 crates/service/tests/wire_smoke.golden) -
tail -n 1 "$PLAN_TMP/out" | grep -Eq '"plan_hits":[1-9]' \
    || { echo "plan cache reported no hits:"; tail -n 1 "$PLAN_TMP/out"; exit 1; }
rm -rf "$PLAN_TMP"

# Weighted plan round trip: precompute under a per-set prior (the plan file
# carries the prior's fingerprint in its strategy keys), boot serve warm
# from it, replay the session-mode transcript — whose weighted create uses
# the *same* prior — and assert the weighted plan partition actually served
# (nonzero weighted hit count in the trailing service-status line).
echo "==> weighted plan-cache precompute round trip"
PLAN_TMP=$(mktemp -d)
run cargo run --release -q -p setdisc-eval --bin discover -- precompute \
    --fixture figure1 --strategy klp --k 2 --prior 1,50,1,1,1,1,1 \
    --out "$PLAN_TMP/figure1w.plan" --max-nodes 512 --max-depth 16
{ cat crates/service/tests/wire_noisy.in; echo '{"op":"status"}'; } > "$PLAN_TMP/in"
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --plan-cache "$PLAN_TMP/figure1w.plan" \
    < "$PLAN_TMP/in" > "$PLAN_TMP/out"
GOLDEN_LINES=$(wc -l < crates/service/tests/wire_noisy.golden)
head -n "$GOLDEN_LINES" "$PLAN_TMP/out" | diff -u crates/service/tests/wire_noisy.golden -
tail -n 1 "$PLAN_TMP/out" | grep -Eq '"plan_weighted_hits":[1-9]' \
    || { echo "weighted plan reported no hits:"; tail -n 1 "$PLAN_TMP/out"; exit 1; }
rm -rf "$PLAN_TMP"

# Crash safety: serve over TCP with an aggressive plan checkpointer, drive
# real socket load, SIGKILL the server mid-checkpoint — several times.
# Because saves are write-temp + fsync + atomic rename, the plan file must
# come through every kill loadable (stray *.tmp.* staging files are
# expected debris of a kill mid-write; the main file is what's guaranteed),
# and a warm reboot from it must replay the golden transcript byte for
# byte.
echo "==> crash-safe plan persistence (SIGKILL mid-checkpoint)"
cargo build --release -q -p setdisc-service --bin serve
PLAN_TMP=$(mktemp -d)
run cargo run --release -q -p setdisc-eval --bin discover -- precompute \
    --fixture figure1 --strategy klp --k 2 \
    --out "$PLAN_TMP/figure1.plan" --max-nodes 512 --max-depth 16
for KILL_ROUND in 1 2 3; do
    SERVE_OUT="$PLAN_TMP/serve_out.$KILL_ROUND"
    ./target/release/serve --tcp 127.0.0.1:0 --fixture figure1 \
        --plan-cache "$PLAN_TMP/figure1.plan" --checkpoint-ms 25 \
        > "$SERVE_OUT" 2>"$SERVE_OUT.err" &
    SERVE_PID=$!
    trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
    for _ in $(seq 100); do
        grep -q "listening on" "$SERVE_OUT" && break
        sleep 0.05
    done
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_OUT")
    [ -n "$ADDR" ] || { echo "serve did not come up (round $KILL_ROUND)"; exit 1; }
    grep -q "loaded plan cache" "$SERVE_OUT.err" \
        || { echo "round $KILL_ROUND: plan did not survive the previous kill"; cat "$SERVE_OUT.err"; exit 1; }
    cargo bench -p setdisc-service --bench bench_service -- \
        --mode socket-only --addr "$ADDR" --fixture figure1 \
        --clients 2 --sessions 3 >/dev/null 2>&1 &
    LOAD_PID=$!
    sleep 0.3   # several 25 ms checkpoints land under live traffic
    kill -9 "$SERVE_PID" 2>/dev/null || true
    wait "$LOAD_PID" 2>/dev/null || true
    trap - EXIT
done
cargo run --release -q -p setdisc-service --bin serve -- --stdio --fixture figure1 \
    --plan-cache "$PLAN_TMP/figure1.plan" \
    < crates/service/tests/wire_smoke.in 2>"$PLAN_TMP/boot.err" > "$PLAN_TMP/warm.out"
# Warm boots report their resident plan bytes on line 1 (see the
# precompute round trip above); the transcript proper must match.
tail -n +2 "$PLAN_TMP/warm.out" \
    | diff -u <(tail -n +2 crates/service/tests/wire_smoke.golden) -
grep -q "loaded plan cache" "$PLAN_TMP/boot.err" \
    || { echo "post-kill warm boot did not load the plan:"; cat "$PLAN_TMP/boot.err"; exit 1; }

# SIGKILL mid-journal-write: the same kill treatment with the session
# journal armed and a single sequential client (one connection keeps the
# journal's dispatch order equal to the wire order). Each round boots into
# the same directory, appending a fresh meta record; after the kills the
# journal must still read — a torn tail drops whole exchanges, never half
# of one — and every surviving exchange across all rounds must replay
# byte-identically.
echo "==> crash-tolerant session journal (SIGKILL mid-write)"
cargo build --release -q -p setdisc-service --bin replay
for KILL_ROUND in 1 2 3; do
    SERVE_OUT="$PLAN_TMP/journal_serve.$KILL_ROUND"
    ./target/release/serve --tcp 127.0.0.1:0 --fixture figure1 \
        --journal "$PLAN_TMP/journal" \
        > "$SERVE_OUT" 2>"$SERVE_OUT.err" &
    SERVE_PID=$!
    trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT
    for _ in $(seq 100); do
        grep -q "listening on" "$SERVE_OUT" && break
        sleep 0.05
    done
    ADDR=$(sed -n 's/^listening on //p' "$SERVE_OUT")
    [ -n "$ADDR" ] || { echo "journal serve did not come up (round $KILL_ROUND)"; exit 1; }
    cargo bench -p setdisc-service --bench bench_service -- \
        --mode socket-only --addr "$ADDR" --fixture figure1 \
        --clients 1 --sessions 50 >/dev/null 2>&1 &
    LOAD_PID=$!
    sleep 0.3   # enough traffic that the kill lands mid-append batch
    kill -9 "$SERVE_PID" 2>/dev/null || true
    wait "$LOAD_PID" 2>/dev/null || true
    trap - EXIT
done
run ./target/release/replay --quiet "$PLAN_TMP/journal"
rm -rf "$PLAN_TMP"

# Service TCP smoke: start serve on an ephemeral loopback port, drive a
# brief verified load through the generator over the real socket, kill it.
echo "==> service tcp smoke"
cargo build --release -q -p setdisc-service --bin serve
SERVE_OUT=$(mktemp)
./target/release/serve --tcp 127.0.0.1:0 --fixture copyadd:120:0.9:7 > "$SERVE_OUT" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 100); do
    grep -q "listening on" "$SERVE_OUT" && break
    sleep 0.1
done
ADDR=$(sed -n 's/^listening on //p' "$SERVE_OUT")
[ -n "$ADDR" ] || { echo "serve did not come up"; exit 1; }
run cargo bench -p setdisc-service --bench bench_service -- \
    --mode socket-only --addr "$ADDR" --fixture copyadd:120:0.9:7 --clients 4 --sessions 5
kill "$SERVE_PID" 2>/dev/null || true
trap - EXIT
rm -f "$SERVE_OUT"

# Service bench: the ≥1k-concurrent-open-sessions gate plus in-process and
# loopback-socket throughput/latency phases; regenerates the committed
# BENCH_service.json baseline (every session's outcome is verified). Runs
# with telemetry armed (SETDISC_OBS=1) so the committed baseline carries
# the armed-span cost — the honest deployment configuration — and any
# span-overhead regression shows up in the percentile deltas.
SETDISC_OBS=1 run cargo bench -p setdisc-service --bench bench_service -- --scale smoke --out "$PWD/BENCH_service.json"

echo "CI green."
