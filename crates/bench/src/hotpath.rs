//! Selection hot-path kernels with a JSON trajectory artifact.
//!
//! `bench_hotpath` times the innermost kernels of tree construction — the
//! counting pass, partitioning, k-LP / gain-k lookahead, and the exact
//! optimal solver — and emits `BENCH_hotpath.json` so every perf PR can
//! compare against the committed baseline. Unlike the per-figure criterion
//! benches this harness is self-contained (plain wall-clock medians) because
//! it must also produce a machine-readable artifact.

use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::{GainK, KLp};
use setdisc_core::optimal::OptimalSolver;
use setdisc_core::subcollection::{CountScratch, SubStorage};
use setdisc_util::obs;
use setdisc_util::report::{fmt_duration, parse_json, JsonObject, JsonValue};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Workload scale for the hotpath kernels.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HotpathScale {
    /// Seconds — the CI smoke configuration.
    Smoke,
    /// Tens of seconds — for local before/after comparisons.
    Default,
}

impl HotpathScale {
    /// Parses `"smoke" | "default"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(Self::Smoke),
            "default" => Some(Self::Default),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Self::Smoke => "smoke",
            Self::Default => "default",
        }
    }

    fn pick<T>(self, smoke: T, default: T) -> T {
        match self {
            Self::Smoke => smoke,
            Self::Default => default,
        }
    }
}

/// One timed kernel: median/mean wall clock per iteration plus a
/// kernel-specific throughput figure.
pub struct KernelReport {
    /// Kernel name (stable across PRs — the JSON key).
    pub name: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Measured samples.
    pub samples: usize,
    /// Work items processed per iteration (trees, partitions, elements…).
    pub items_per_iter: u64,
    /// Unit of `items_per_iter` (e.g. `"trees"`).
    pub unit: &'static str,
}

impl KernelReport {
    /// Items per second at the median iteration time.
    pub fn throughput(&self) -> f64 {
        if self.median_ns <= 0.0 {
            return 0.0;
        }
        self.items_per_iter as f64 * 1e9 / self.median_ns
    }

    fn to_json(&self) -> JsonObject {
        JsonObject::new()
            .str("kernel", &self.name)
            .num("median_ns", self.median_ns)
            .num("mean_ns", self.mean_ns)
            .int("samples", self.samples as u64)
            .int("items_per_iter", self.items_per_iter)
            .str("unit", self.unit)
            .num("items_per_sec", self.throughput())
    }
}

/// Times `f` (which performs `items` units of work per call): two warm-up
/// calls, then `samples` measured calls.
pub fn time_kernel(
    name: &str,
    samples: usize,
    items: u64,
    unit: &'static str,
    mut f: impl FnMut() -> u64,
) -> KernelReport {
    let mut acc = 0u64;
    for _ in 0..2 {
        acc = acc.wrapping_add(f());
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        acc = acc.wrapping_add(f());
        times.push(start.elapsed());
    }
    black_box(acc);
    times.sort_unstable();
    let median = times[times.len() / 2];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    KernelReport {
        name: name.to_string(),
        median_ns: median.as_nanos() as f64,
        mean_ns: mean.as_nanos() as f64,
        samples,
        items_per_iter: items,
        unit,
    }
}

/// Runs every hotpath kernel (optionally filtered by substring) and returns
/// the reports in execution order.
pub fn run_kernels(scale: HotpathScale, filter: Option<&str>) -> Vec<KernelReport> {
    let mut reports = Vec::new();
    let mut run =
        |name: &str, samples: usize, items: u64, unit: &'static str, f: &mut dyn FnMut() -> u64| {
            if let Some(pat) = filter {
                if !name.contains(pat) {
                    return;
                }
            }
            let rep = time_kernel(name, samples, items, unit, f);
            eprintln!(
                "{:>32}  median {:>10}  {:>14.0} {}/s",
                rep.name,
                fmt_duration(Duration::from_nanos(rep.median_ns as u64)),
                rep.throughput(),
                rep.unit
            );
            reports.push(rep);
        };

    // Fig. 3 kernel: k-LP tree build over a copy-add collection (α = 0.9,
    // d = 10–15) — the headline construction-throughput workload.
    let n_tree = scale.pick(120, 300);
    let samples = scale.pick(9, 15);
    let copyadd = crate::synthetic(n_tree, 0.9);
    for k in [2u32, 3] {
        run(
            &format!("klp_k{k}_tree_copyadd_n{n_tree}"),
            samples,
            1,
            "trees",
            &mut || {
                let mut s = KLp::<AvgDepth>::new(k);
                let tree = build_tree(&copyadd.full_view(), &mut s).expect("tree");
                tree.total_depth()
            },
        );
    }

    // Parallel vs forced-sequential selection loop on the same k=3 build.
    // The parallel kernel uses the pool default thread count with a
    // permissive dispatch gate; on a single-core host it degenerates to
    // the sequential path (the pool reports one worker), so comparing the
    // two kernels shows exactly what the machine buys.
    run(
        &format!("klp_k3_tree_seq_copyadd_n{n_tree}"),
        samples,
        1,
        "trees",
        &mut || {
            let mut s = KLp::<AvgDepth>::new(3).with_threads(1);
            let tree = build_tree(&copyadd.full_view(), &mut s).expect("tree");
            tree.total_depth()
        },
    );
    run(
        &format!("klp_k3_tree_par_copyadd_n{n_tree}"),
        samples,
        1,
        "trees",
        &mut || {
            let mut s = KLp::<AvgDepth>::new(3)
                .with_threads(0)
                .with_parallel_gate(4, 64);
            let tree = build_tree(&copyadd.full_view(), &mut s).expect("tree");
            tree.total_depth()
        },
    );

    // Same kernel on web-table seed-query sub-collections.
    let (web, lists) = crate::web_subcollections(15, 3, scale.pick(40, 60));
    let web_ids = lists.first().expect("a sub-collection").clone();
    run(
        &format!("klp_k3_tree_web_n{}", web_ids.len()),
        samples,
        1,
        "trees",
        &mut || {
            let mut s = KLp::<AvgDepth>::new(3);
            let tree = build_tree(&crate::view_of(&web, &web_ids), &mut s).expect("tree");
            tree.total_depth()
        },
    );

    // Unpruned gain-k bound (the Fig. 4 baseline's inner call).
    let small = crate::synthetic(scale.pick(30, 40), 0.9);
    run(
        &format!("gaink_k2_bound_copyadd_n{}", small.len()),
        samples,
        1,
        "bounds",
        &mut || {
            let (_, l) = GainK::<AvgDepth>::new(2)
                .bound(&small.full_view())
                .expect("bound");
            l
        },
    );

    // Exact optimal solver on a small collection (memo-heavy workload).
    let tiny = crate::synthetic(scale.pick(13, 15), 0.8);
    run(
        &format!("optimal_ad_copyadd_n{}", tiny.len()),
        samples,
        1,
        "solves",
        &mut || {
            let mut solver = OptimalSolver::<AvgDepth>::new();
            solver.optimal_cost(&tiny.full_view()).expect("small")
        },
    );

    // Raw counting pass over a larger collection — the innermost loop.
    let big = crate::synthetic(scale.pick(2_000, 8_000), 0.9);
    let big_view = big.full_view();
    let elements = big_view.total_elements() as u64;
    run(
        &format!("count_entities_copyadd_n{}", big.len()),
        samples.max(10),
        elements,
        "elements",
        &mut || {
            let mut scratch = CountScratch::new();
            let mut out = Vec::new();
            big_view.count_entities(&mut scratch, &mut out);
            out.len() as u64
        },
    );

    // The same counting pass forced through the bitmap machinery: each
    // occurring entity's postings intersected with the view bitmap,
    // fingerprints included (the k-LP candidate-generation shape).
    run(
        &format!("count_entities_bitmap_n{}", big.len()),
        samples.max(10),
        elements,
        "elements",
        &mut || {
            let mut out = Vec::new();
            big_view.count_entities_with_fp_postings(&mut out);
            out.len() as u64
        },
    );

    // Partition sweep: split the big view on each of a slice of entities.
    let mut scratch = CountScratch::new();
    let informative = big_view.informative_entities(&mut scratch);
    let probes: Vec<_> = informative
        .iter()
        .step_by((informative.len() / 200).max(1))
        .map(|ec| ec.entity)
        .collect();
    run(
        &format!("partition_copyadd_n{}", big.len()),
        samples.max(10),
        probes.len() as u64,
        "partitions",
        &mut || {
            let mut acc = 0u64;
            for &e in &probes {
                let (yes, no) = big_view.partition(e);
                acc = acc.wrapping_add(yes.len() as u64 ^ no.len() as u64);
            }
            acc
        },
    );

    // The pure bitmap split kernel: same probes, storage recycled, so the
    // timing is AND/ANDNOT + popcount + yes-side fingerprint only.
    run(
        &format!("partition_bitmap_n{}", big.len()),
        samples.max(10),
        probes.len() as u64,
        "partitions",
        &mut || {
            let mut acc = 0u64;
            let mut yes = SubStorage::new();
            let mut no = SubStorage::new();
            for &e in &probes {
                let (y, n) = big_view.partition_into(e, yes, no);
                acc = acc.wrapping_add(y.len() as u64 ^ n.len() as u64);
                yes = y.into_storage();
                no = n.into_storage();
            }
            acc
        },
    );

    // The id-vector merge reference the bitmap kernels replaced (also the
    // correctness oracle the property tests pin against).
    run(
        &format!("partition_merge_n{}", big.len()),
        samples.max(10),
        probes.len() as u64,
        "partitions",
        &mut || {
            let mut acc = 0u64;
            let mut yes = SubStorage::new();
            let mut no = SubStorage::new();
            for &e in &probes {
                let (y, n) = big_view.partition_into_merge(e, yes, no);
                acc = acc.wrapping_add(y.len() as u64 ^ n.len() as u64);
                yes = y.into_storage();
                no = n.into_storage();
            }
            acc
        },
    );

    // Telemetry guard pair: the same accumulate loop with and without a
    // disarmed span at each step. A disarmed span is one relaxed load
    // (DESIGN.md §12), so the two medians should be within noise of each
    // other; the hard per-op ceiling is asserted in this module's tests,
    // where it cannot rot out of the CI gate.
    obs::arm(false);
    let span_iters: u64 = scale.pick(1_000_000, 4_000_000);
    run(
        "obs_span_disarmed",
        samples.max(10),
        span_iters,
        "spans",
        &mut || {
            let mut acc = 0u64;
            for i in 0..span_iters {
                let _span = obs::span(obs::Site::EngineSelect);
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        },
    );
    run(
        "obs_span_baseline",
        samples.max(10),
        span_iters,
        "spans",
        &mut || {
            let mut acc = 0u64;
            for i in 0..span_iters {
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        },
    );

    reports
}

/// One calibration measurement: a forced run of a counting kernel over a
/// view whose predicted cost driver is `units` (total elements for the
/// element pass, index scan cost for the postings sweep).
#[derive(Debug, Clone, Copy)]
pub struct CalibrationPoint {
    /// Collection size (sets) the view was taken over.
    pub n: usize,
    /// Predicted cost units for this kernel on this view.
    pub units: u64,
    /// Median nanoseconds for one forced pass.
    pub median_ns: f64,
}

/// Measured calibration data for both counting kernels, with the
/// least-squares fits the `calibrate` report prints. Feeds ROADMAP item 3:
/// the committed dispatch factors (1 for the count-only pass, 2 for the
/// fingerprint variants) encode an assumed ratio between the per-unit
/// costs of the two kernels, and this report measures that ratio on the
/// current machine.
#[derive(Debug, Default)]
pub struct Calibration {
    /// Element-pass points (`units` = view total elements).
    pub elements: Vec<CalibrationPoint>,
    /// Postings-sweep points (`units` = index scan cost).
    pub postings: Vec<CalibrationPoint>,
}

/// Least-squares slope through the origin for `median_ns = c × units`:
/// `c = Σ(units·ns) / Σ(units²)`. Zero when there is nothing to fit.
fn fit_through_origin(points: &[CalibrationPoint]) -> f64 {
    let num: f64 = points.iter().map(|p| p.units as f64 * p.median_ns).sum();
    let den: f64 = points.iter().map(|p| (p.units as f64).powi(2)).sum();
    if den > 0.0 {
        num / den
    } else {
        0.0
    }
}

impl Calibration {
    /// Fitted nanoseconds per element for the forced element pass.
    pub fn ns_per_element(&self) -> f64 {
        fit_through_origin(&self.elements)
    }

    /// Fitted nanoseconds per scan unit for the forced postings sweep.
    pub fn ns_per_scan_unit(&self) -> f64 {
        fit_through_origin(&self.postings)
    }

    /// The break-even dispatch factor the fits imply. The dispatcher sweeps
    /// postings when `total_elements > factor × scan_cost`; cost parity
    /// holds at `elements · c_e = scan · c_s`, i.e. the measured factor is
    /// `c_s / c_e`. Zero when the element fit is degenerate.
    pub fn fitted_factor(&self) -> f64 {
        let e = self.ns_per_element();
        if e > 0.0 {
            self.ns_per_scan_unit() / e
        } else {
            0.0
        }
    }

    /// Renders the calibrate report: per-point measurements, the two fitted
    /// constants, and the implied dispatch factor next to the committed
    /// ones.
    pub fn lines(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, points) in [("elements", &self.elements), ("postings", &self.postings)] {
            for p in points {
                lines.push(format!(
                    "{:>10} n={:<6} units={:<9} median={:>10}  {:>8.3} ns/unit",
                    name,
                    p.n,
                    p.units,
                    fmt_duration(Duration::from_nanos(p.median_ns as u64)),
                    if p.units > 0 {
                        p.median_ns / p.units as f64
                    } else {
                        0.0
                    },
                ));
            }
        }
        lines.push(format!(
            "fitted: {:.3} ns/element, {:.3} ns/scan-unit",
            self.ns_per_element(),
            self.ns_per_scan_unit()
        ));
        lines.push(format!(
            "fitted dispatch factor {:.2} (committed: 1 for count-only, 2 for fingerprint passes)",
            self.fitted_factor()
        ));
        lines
    }
}

/// Runs the calibration workload: forced element-pass and postings-sweep
/// counting over full views of copy-add collections across a size range,
/// timing each and recording the predicted cost units the dispatcher would
/// have compared. The same measurement the armed
/// `setdisc_cost_model_error` histograms collect in production, but under
/// controlled sizes and with both kernels forced on every view.
pub fn run_calibration(scale: HotpathScale) -> Calibration {
    use setdisc_core::subcollection::EntityStats;
    let sizes: &[usize] = scale.pick(
        &[250, 500, 1_000, 2_000],
        &[500, 1_000, 2_000, 4_000, 8_000],
    );
    let samples = scale.pick(7, 11);
    let mut cal = Calibration::default();
    for &n in sizes {
        let coll = crate::synthetic(n, 0.9);
        let view = coll.full_view();
        let preview = view.dispatch_preview(2);
        let mut scratch = CountScratch::new();
        let mut out: Vec<EntityStats> = Vec::new();
        let rep = time_kernel(
            &format!("calibrate_elements_n{n}"),
            samples,
            preview.total_elements,
            "elements",
            || {
                out.clear();
                view.count_entities_with_fp_elements(&mut scratch, &mut out);
                out.len() as u64
            },
        );
        cal.elements.push(CalibrationPoint {
            n,
            units: preview.total_elements,
            median_ns: rep.median_ns,
        });
        let rep = time_kernel(
            &format!("calibrate_postings_n{n}"),
            samples,
            preview.scan_cost,
            "scan-units",
            || {
                out.clear();
                view.count_entities_with_fp_postings(&mut out);
                out.len() as u64
            },
        );
        cal.postings.push(CalibrationPoint {
            n,
            units: preview.scan_cost,
            median_ns: rep.median_ns,
        });
    }
    cal
}

/// Renders a per-kernel comparison of `reports` against a previously
/// emitted `BENCH_hotpath.json` document, one line per kernel
/// (`name old → new speedup`); kernels present on only one side are
/// called out. Errors on unparseable baselines.
pub fn compare_lines(baseline_json: &str, reports: &[KernelReport]) -> Result<Vec<String>, String> {
    let doc = parse_json(baseline_json).map_err(|e| format!("bad baseline JSON: {e}"))?;
    let kernels = doc
        .get("kernels")
        .and_then(JsonValue::as_array)
        .ok_or("baseline has no kernels array")?;
    let mut old: Vec<(String, f64)> = Vec::new();
    for k in kernels {
        let name = k
            .get("kernel")
            .and_then(JsonValue::as_str)
            .ok_or("kernel entry without a name")?;
        let median = k
            .get("median_ns")
            .and_then(JsonValue::as_f64)
            .ok_or("kernel entry without median_ns")?;
        old.push((name.to_string(), median));
    }
    let mut lines = Vec::new();
    for rep in reports {
        match old.iter().find(|(name, _)| *name == rep.name) {
            Some((_, old_ns)) if rep.median_ns > 0.0 => lines.push(format!(
                "{:>32}  {:>10} -> {:>10}  {:>6.2}x",
                rep.name,
                fmt_duration(Duration::from_nanos(*old_ns as u64)),
                fmt_duration(Duration::from_nanos(rep.median_ns as u64)),
                old_ns / rep.median_ns,
            )),
            Some(_) => {}
            None => lines.push(format!("{:>32}  (new kernel, no baseline)", rep.name)),
        }
    }
    for (name, _) in &old {
        if !reports.iter().any(|r| r.name == *name) {
            lines.push(format!("{name:>32}  (in baseline only)"));
        }
    }
    Ok(lines)
}

/// Encodes the reports as the `BENCH_hotpath.json` document.
pub fn to_json(scale: HotpathScale, reports: &[KernelReport]) -> JsonObject {
    JsonObject::new()
        .str("bench", "hotpath")
        .str("scale", scale.name())
        .array(
            "kernels",
            reports.iter().map(KernelReport::to_json).collect(),
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_kernel_reports_sane_numbers() {
        let rep = time_kernel("noop", 3, 7, "items", || 1);
        assert_eq!(rep.samples, 3);
        assert_eq!(rep.items_per_iter, 7);
        assert!(rep.median_ns >= 0.0);
        assert!(rep.throughput() >= 0.0);
    }

    #[test]
    fn json_document_shape() {
        let rep = time_kernel("noop", 2, 1, "items", || 1);
        let doc = to_json(HotpathScale::Smoke, &[rep]).encode();
        assert!(doc.contains("\"bench\":\"hotpath\""));
        assert!(doc.contains("\"scale\":\"smoke\""));
        assert!(doc.contains("\"kernel\":\"noop\""));
    }

    #[test]
    fn compare_reports_speedups_and_mismatches() {
        let mut fast = time_kernel("shared", 2, 1, "items", || 1);
        fast.median_ns = 500.0;
        let baseline = to_json(
            HotpathScale::Smoke,
            &[
                KernelReport {
                    name: "shared".into(),
                    median_ns: 1000.0,
                    mean_ns: 1000.0,
                    samples: 2,
                    items_per_iter: 1,
                    unit: "items",
                },
                KernelReport {
                    name: "retired".into(),
                    median_ns: 10.0,
                    mean_ns: 10.0,
                    samples: 2,
                    items_per_iter: 1,
                    unit: "items",
                },
            ],
        )
        .encode();
        let mut fresh = time_kernel("fresh", 2, 1, "items", || 1);
        fresh.median_ns = 7.0;
        let lines = compare_lines(&baseline, &[fast, fresh]).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(
            lines[0].contains("shared") && lines[0].contains("2.00x"),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("no baseline"));
        assert!(lines[2].contains("in baseline only"));
        assert!(compare_lines("not json", &[]).is_err());
        assert!(compare_lines("{\"bench\":\"hotpath\"}", &[]).is_err());
    }

    #[test]
    fn fit_recovers_a_known_slope() {
        // Exact points on median_ns = 3 × units fit back to 3.
        let points: Vec<CalibrationPoint> = [10u64, 100, 1000]
            .iter()
            .map(|&units| CalibrationPoint {
                n: units as usize,
                units,
                median_ns: 3.0 * units as f64,
            })
            .collect();
        let slope = fit_through_origin(&points);
        assert!((slope - 3.0).abs() < 1e-9, "{slope}");
        assert_eq!(fit_through_origin(&[]), 0.0);
    }

    #[test]
    fn calibration_report_shape() {
        let mut cal = Calibration::default();
        cal.elements.push(CalibrationPoint {
            n: 100,
            units: 1000,
            median_ns: 2000.0,
        });
        cal.postings.push(CalibrationPoint {
            n: 100,
            units: 250,
            median_ns: 1500.0,
        });
        assert!((cal.ns_per_element() - 2.0).abs() < 1e-9);
        assert!((cal.ns_per_scan_unit() - 6.0).abs() < 1e-9);
        assert!((cal.fitted_factor() - 3.0).abs() < 1e-9);
        let lines = cal.lines();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("elements"));
        assert!(lines[1].contains("postings"));
        assert!(lines[2].contains("ns/element"));
        assert!(lines[3].contains("committed: 1 for count-only"));
        // Degenerate element fit must not divide by zero.
        assert_eq!(Calibration::default().fitted_factor(), 0.0);
    }

    #[test]
    fn disarmed_span_overhead_is_negligible() {
        // The §12 contract: a disarmed span site costs one relaxed load.
        // The ceiling is absolute and deliberately generous (a relaxed
        // load is ~1 ns; 25 ns absorbs a heavily loaded CI host) so the
        // guard catches regressions of kind — an accidental
        // Instant::now(), lock, or allocation on the disarmed path, each
        // of which costs well past it — without being wall-clock flaky.
        obs::arm(false);
        const ITERS: u64 = 200_000;
        let rep = time_kernel("span_guard", 15, ITERS, "spans", || {
            let mut acc = 0u64;
            for i in 0..ITERS {
                let _span = obs::span(obs::Site::EngineSelect);
                acc = acc.wrapping_add(black_box(i));
            }
            acc
        });
        let per_op = rep.median_ns / ITERS as f64;
        assert!(
            per_op < 25.0,
            "disarmed span costs {per_op:.2} ns/op — something heavy \
             crept onto the disarmed path"
        );
    }

    #[test]
    fn scale_parses() {
        assert_eq!(HotpathScale::parse("smoke"), Some(HotpathScale::Smoke));
        assert_eq!(HotpathScale::parse("default"), Some(HotpathScale::Default));
        assert_eq!(HotpathScale::parse("paper"), None);
    }
}
