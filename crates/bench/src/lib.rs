//! Shared fixtures for the per-figure Criterion benchmarks.
//!
//! Benchmarks run at deliberately small sizes (criterion repeats each body
//! many times); the `experiments` binary is the tool for paper-scale
//! numbers. Fixtures are deterministic so criterion's statistics compare
//! the same workload across runs.

pub mod hotpath;

use setdisc_core::{Collection, SubCollection};
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};
use setdisc_synth::webtables::{self, WebTablesConfig};

/// Canonical bench seed.
pub const SEED: u64 = 0xBE_7C11;

/// A small copy-add collection (n sets, d=10–15, given α).
pub fn synthetic(n: usize, alpha: f64) -> Collection {
    generate_copy_add(&CopyAddConfig {
        n_sets: n,
        size_range: (10, 15),
        overlap: alpha,
        seed: SEED,
    })
}

/// A tiny web-tables corpus and the id-lists of its seed-query
/// sub-collections (each with ≥ `min_candidates` sets, truncated to `cap`).
pub fn web_subcollections(
    min_candidates: usize,
    max_queries: usize,
    cap: usize,
) -> (Collection, Vec<Vec<setdisc_core::entity::SetId>>) {
    let corpus = webtables::generate(&WebTablesConfig::tiny(SEED));
    let queries = webtables::seed_queries(&corpus.collection, min_candidates, max_queries, SEED);
    let lists = queries
        .iter()
        .map(|q| {
            let mut ids = corpus.collection.supersets_of(&q.entities).ids().to_vec();
            ids.truncate(cap);
            ids
        })
        .filter(|ids| ids.len() >= 2)
        .collect();
    (corpus.collection, lists)
}

/// View over an id list.
pub fn view_of<'c>(
    collection: &'c Collection,
    ids: &[setdisc_core::entity::SetId],
) -> SubCollection<'c> {
    SubCollection::from_ids(collection, ids.to_vec())
}

/// A small baseball-style fixture: People table, one target's candidate
/// sets capped for bench speed, and the target row set.
pub struct BaseballFixture {
    /// Candidate collection (entities = row ids).
    pub collection: Collection,
    /// Target output as an entity set.
    pub target: setdisc_core::EntitySet,
    /// The candidate set equal to the target output.
    pub target_set: setdisc_core::entity::SetId,
}

/// Builds the fixture from a scaled-down table.
pub fn baseball_fixture(rows: usize, cap: usize) -> BaseballFixture {
    use setdisc_relation::candgen::{generate_candidates, ReferenceValues};
    use setdisc_relation::people::people_table_sized;
    use setdisc_relation::targets::target_queries;
    let table = people_table_sized(rows, SEED);
    let targets = target_queries(&table);
    // T3 (bats=L AND throws=R) has broad support at every table size.
    let t3 = &targets[2];
    let rows_out = t3.query.evaluate(&table);
    let examples = [rows_out[0], rows_out[rows_out.len() / 2]];
    let cands = generate_candidates(&table, &examples, &ReferenceValues::paper_defaults());
    let target = setdisc_core::EntitySet::from_raw(rows_out.iter().copied());
    // Cap candidates, always keeping the target set.
    let mut kept: Vec<setdisc_core::EntitySet> = Vec::new();
    for (_, s) in cands.collection.iter() {
        if *s == target || kept.len() < cap - 1 {
            kept.push(s.clone());
        }
    }
    if !kept.contains(&target) {
        kept.push(target.clone());
    }
    let collection = Collection::new(kept).expect("non-empty");
    let target_set = collection
        .iter()
        .find(|(_, s)| **s == target)
        .map(|(id, _)| id)
        .expect("target kept");
    BaseballFixture {
        collection,
        target,
        target_set,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_wellformed() {
        let c = synthetic(50, 0.9);
        assert!(c.len() >= 40);
        let (web, lists) = web_subcollections(10, 4, 30);
        assert!(!lists.is_empty());
        for ids in &lists {
            assert!(view_of(&web, ids).len() >= 2);
        }
        let bb = baseball_fixture(1_500, 60);
        assert!(bb.collection.len() >= 10);
        assert_eq!(bb.collection.set(bb.target_set), &bb.target);
    }
}
