//! Ablations for the design choices DESIGN.md calls out:
//!
//! * beam width `q` — time/quality knob of k-LPLE (§4.4.2);
//! * memoization — cache reuse across the selections of one tree build;
//! * greedy selection strategy cost — MostEven vs InfoGain vs LB₁ (all pick
//!   the same entity by Lemma 4.3; their scoring costs differ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::KLp;
use setdisc_core::strategy::{IndistinguishablePairs, InfoGain, Lb1, MostEven, SelectionStrategy};

fn bench_beam(c: &mut Criterion) {
    let collection = setdisc_bench::synthetic(120, 0.9);
    let mut g = c.benchmark_group("ablation_beam_width");
    g.sample_size(10);
    for &q in &[1usize, 5, 10, 50] {
        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let mut s = KLp::<AvgDepth>::limited(3, q);
                let tree = build_tree(&collection.full_view(), &mut s).expect("tree");
                std::hint::black_box(tree.total_depth())
            })
        });
    }
    g.finish();
}

fn bench_memo(c: &mut Criterion) {
    let collection = setdisc_bench::synthetic(80, 0.9);
    let view = collection.full_view();
    let mut g = c.benchmark_group("ablation_memoization");
    g.sample_size(10);
    g.bench_function("warm_cache_select", |b| {
        let mut s = KLp::<AvgDepth>::new(3);
        let _ = s.select(&view); // warm
        b.iter(|| std::hint::black_box(s.select(&view)))
    });
    g.bench_function("cold_cache_select", |b| {
        b.iter(|| {
            let mut s = KLp::<AvgDepth>::new(3);
            std::hint::black_box(s.select(&view))
        })
    });
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let collection = setdisc_bench::synthetic(300, 0.9);
    let view = collection.full_view();
    let mut g = c.benchmark_group("ablation_greedy_strategies");
    g.sample_size(10);
    g.bench_function("most_even", |b| {
        let mut s = MostEven::new();
        b.iter(|| std::hint::black_box(s.select(&view)))
    });
    g.bench_function("info_gain", |b| {
        let mut s = InfoGain::new();
        b.iter(|| std::hint::black_box(s.select(&view)))
    });
    g.bench_function("indistinguishable_pairs", |b| {
        let mut s = IndistinguishablePairs::new();
        b.iter(|| std::hint::black_box(s.select(&view)))
    });
    g.bench_function("lb1_ad", |b| {
        let mut s = Lb1::<AvgDepth>::new();
        b.iter(|| std::hint::black_box(s.select(&view)))
    });
    g.finish();
}

fn bench_collapse(c: &mut Criterion) {
    // Entity collapsing matters most for query-output collections, where
    // thousands of rows share a membership pattern.
    let fixture = setdisc_bench::baseball_fixture(1_500, 40);
    let collapsed = setdisc_core::transform::collapse_equivalent_entities(&fixture.collection);
    let mut g = c.benchmark_group("ablation_entity_collapse");
    g.sample_size(10);
    g.bench_function("select_original_universe", |b| {
        let view = fixture.collection.full_view();
        b.iter(|| {
            let mut s = KLp::<AvgDepth>::new(2);
            std::hint::black_box(s.select(&view))
        })
    });
    g.bench_function("select_collapsed_universe", |b| {
        let view = collapsed.collection.full_view();
        b.iter(|| {
            let mut s = KLp::<AvgDepth>::new(2);
            std::hint::black_box(s.select(&view))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_beam,
    bench_memo,
    bench_greedy,
    bench_collapse
);
criterion_main!(benches);
