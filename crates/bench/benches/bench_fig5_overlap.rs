//! Figure 5 — tree construction time as the overlap ratio varies.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::KLp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_overlap");
    g.sample_size(10);
    for &alpha in &[0.65, 0.80, 0.95] {
        let collection = setdisc_bench::synthetic(150, alpha);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha={alpha}")),
            &collection,
            |b, coll| {
                b.iter(|| {
                    let mut s = KLp::<AvgDepth>::limited(3, 10);
                    let tree = build_tree(&coll.full_view(), &mut s).expect("tree");
                    std::hint::black_box(tree.avg_depth())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
