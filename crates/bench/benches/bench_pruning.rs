//! Table 4 / §5.3.3 — pruning effectiveness: a single k-LP selection on a
//! baseball-style candidate collection, with prune statistics on, versus
//! the unpruned gain-k selection on the same view.

use criterion::{criterion_group, criterion_main, Criterion};
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::{GainK, KLp};
use setdisc_core::strategy::SelectionStrategy;

fn bench(c: &mut Criterion) {
    let fixture = setdisc_bench::baseball_fixture(1_500, 40);
    let view = fixture.collection.full_view();
    let mut g = c.benchmark_group("table4_pruning");
    g.sample_size(10);

    g.bench_function("klp2_select_with_stats", |b| {
        b.iter(|| {
            let mut s = KLp::<AvgDepth>::new(2).record_stats(true);
            std::hint::black_box(s.select(&view))
        })
    });
    g.bench_function("gain2_select_unpruned", |b| {
        b.iter(|| {
            let mut s = GainK::<AvgDepth>::new(2);
            std::hint::black_box(s.select(&view))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
