//! Figure 3 — k-LP tree construction time versus lookahead depth k on
//! web-table sub-collections.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::KLp;

fn bench(c: &mut Criterion) {
    let (collection, lists) = setdisc_bench::web_subcollections(15, 3, 40);
    let ids = lists.first().expect("a sub-collection").clone();
    let mut g = c.benchmark_group("fig3_klp_vs_k");
    g.sample_size(10);
    for k in [1u32, 2, 3] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let view = setdisc_bench::view_of(&collection, &ids);
                    let mut s = KLp::<AvgDepth>::new(k);
                    let tree = build_tree(&view, &mut s).expect("tree");
                    std::hint::black_box(tree.total_depth())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
