//! Figure 8 — interactive query discovery time per strategy on a
//! baseball-style candidate collection.

use criterion::{criterion_group, criterion_main, Criterion};
use setdisc_core::cost::AvgDepth;
use setdisc_core::discovery::{Session, SimulatedOracle};
use setdisc_core::lookahead::KLp;
use setdisc_core::strategy::{InfoGain, SelectionStrategy};

fn bench(c: &mut Criterion) {
    let fixture = setdisc_bench::baseball_fixture(1_500, 60);
    let mut g = c.benchmark_group("fig8_discovery");
    g.sample_size(10);

    let run = |strategy: Box<dyn SelectionStrategy>| {
        let mut session = Session::over(fixture.collection.full_view(), strategy);
        let outcome = session
            .run(&mut SimulatedOracle::new(&fixture.target))
            .expect("resolves");
        assert_eq!(outcome.discovered(), Some(fixture.target_set));
        outcome.questions
    };

    g.bench_function("infogain", |b| b.iter(|| run(Box::new(InfoGain::new()))));
    g.bench_function("klp2", |b| {
        b.iter(|| run(Box::new(KLp::<AvgDepth>::new(2))))
    });
    g.bench_function("klple_3_10", |b| {
        b.iter(|| run(Box::new(KLp::<AvgDepth>::limited(3, 10))))
    });
    g.bench_function("klplve_3_10", |b| {
        b.iter(|| run(Box::new(KLp::<AvgDepth>::limited_variable(3, 10))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
