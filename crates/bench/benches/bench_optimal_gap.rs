//! §5.3.2 — exact optimal solver versus greedy InfoGain on small
//! sub-collections (the optimal-gap measurement's kernel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::optimal::OptimalSolver;
use setdisc_core::strategy::InfoGain;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("optimal_gap");
    g.sample_size(10);
    for &n in &[8usize, 12, 16] {
        let collection = setdisc_bench::synthetic(n, 0.85);
        g.bench_with_input(BenchmarkId::new("optimal_dp", n), &collection, |b, coll| {
            b.iter(|| {
                let mut solver = OptimalSolver::<AvgDepth>::new();
                std::hint::black_box(solver.optimal_cost(&coll.full_view()).expect("small"))
            })
        });
        g.bench_with_input(
            BenchmarkId::new("infogain_greedy", n),
            &collection,
            |b, coll| {
                b.iter(|| {
                    let mut s = InfoGain::new();
                    let tree = build_tree(&coll.full_view(), &mut s).expect("tree");
                    std::hint::black_box(tree.total_depth())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
