//! Hot-path kernel timings with a JSON artifact (`BENCH_hotpath.json`).
//!
//! Unlike the per-figure benches this target is a self-contained harness
//! (no criterion) because it must emit a machine-readable baseline:
//!
//! ```text
//! cargo bench -p setdisc-bench --bench bench_hotpath -- \
//!     --scale smoke --out BENCH_hotpath.json \
//!     [--filter substr] [--compare BASELINE.json]
//! cargo bench -p setdisc-bench --bench bench_hotpath -- \
//!     --scale smoke --calibrate
//! ```
//!
//! `--compare` reads a previously emitted document *before* running (so it
//! may name the same path as `--out`) and prints per-kernel median deltas
//! after the run — the workflow `ci.sh` uses to show every PR's effect on
//! the committed baseline.
//!
//! `--calibrate` is a separate mode: instead of the kernel suite it forces
//! both counting kernels over a size range, fits ns-per-element and
//! ns-per-scan-unit by least squares through the origin, and prints the
//! implied break-even dispatch factor next to the committed constants —
//! the measured input for re-fitting the `use_postings` cost model
//! (ROADMAP item 3, DESIGN.md §14).

use setdisc_bench::hotpath::{compare_lines, run_calibration, run_kernels, to_json, HotpathScale};

fn main() {
    let mut scale = HotpathScale::Smoke;
    let mut out: Option<String> = None;
    let mut filter: Option<String> = None;
    let mut compare: Option<String> = None;
    let mut calibrate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--calibrate" => calibrate = true,
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = HotpathScale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale {v:?} (smoke|default)"));
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--filter" => filter = Some(args.next().expect("--filter needs a substring")),
            "--compare" => compare = Some(args.next().expect("--compare needs a path")),
            // `cargo bench` passes --bench through to the target; ignore it
            // and any other criterion-style flag so the harness composes.
            _ => {}
        }
    }

    if calibrate {
        eprintln!("cost-model calibration: forced counting kernels over full views");
        for line in run_calibration(scale).lines() {
            println!("{line}");
        }
        return;
    }

    // Read the baseline up front: --compare and --out may be the same file.
    let baseline = compare.map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        (path, text)
    });

    let reports = run_kernels(scale, filter.as_deref());
    if let Some((path, text)) = &baseline {
        eprintln!("vs baseline {path}:");
        match compare_lines(text, &reports) {
            Ok(lines) => {
                for line in lines {
                    eprintln!("{line}");
                }
            }
            Err(e) => eprintln!("  (comparison unavailable: {e})"),
        }
    }
    let doc = to_json(scale, &reports);
    match &out {
        Some(path) => {
            doc.write(path).expect("write JSON artifact");
            eprintln!("wrote {path}");
        }
        None => println!("{}", doc.encode()),
    }
}
