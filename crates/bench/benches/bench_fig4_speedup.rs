//! Figure 4 — pruned k-LP versus unpruned gain-k tree construction, on the
//! synthetic copy-add workload (panel b) at two collection sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::{GainK, KLp};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_speedup");
    g.sample_size(10);
    for &n in &[32usize, 64] {
        let collection = setdisc_bench::synthetic(n, 0.9);
        g.bench_with_input(BenchmarkId::new("klp2", n), &collection, |b, coll| {
            b.iter(|| {
                let mut s = KLp::<AvgDepth>::new(2);
                let tree = build_tree(&coll.full_view(), &mut s).expect("tree");
                std::hint::black_box(tree.total_depth())
            })
        });
        g.bench_with_input(BenchmarkId::new("gain2", n), &collection, |b, coll| {
            b.iter(|| {
                let mut s = GainK::<AvgDepth>::new(2);
                let tree = build_tree(&coll.full_view(), &mut s).expect("tree");
                std::hint::black_box(tree.total_depth())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
