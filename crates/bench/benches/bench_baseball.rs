//! Tables 2 & 3 — People table generation, target evaluation, and
//! candidate-query generation.

use criterion::{criterion_group, criterion_main, Criterion};
use setdisc_relation::candgen::{generate_candidates, ReferenceValues};
use setdisc_relation::people::people_table_sized;
use setdisc_relation::targets::target_queries;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseball");
    g.sample_size(10);

    g.bench_function("table2_generate_people_5k", |b| {
        b.iter(|| std::hint::black_box(people_table_sized(5_000, setdisc_bench::SEED)))
    });

    let table = people_table_sized(5_000, setdisc_bench::SEED);
    g.bench_function("table2_evaluate_all_targets", |b| {
        b.iter(|| {
            let total: usize = target_queries(&table)
                .iter()
                .map(|t| t.query.evaluate(&table).len())
                .sum();
            std::hint::black_box(total)
        })
    });

    let targets = target_queries(&table);
    let rows = targets[2].query.evaluate(&table);
    let examples = [rows[0], rows[rows.len() / 2]];
    g.bench_function("table3_generate_candidates", |b| {
        b.iter(|| {
            let cands = generate_candidates(&table, &examples, &ReferenceValues::paper_defaults());
            std::hint::black_box(cands.collection.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
