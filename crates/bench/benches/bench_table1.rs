//! Table 1 — copy-add generation cost across overlap ratios.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_copy_add_generation");
    g.sample_size(10);
    for &alpha in &[0.65, 0.90, 0.99] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha={alpha}")),
            &alpha,
            |b, &alpha| {
                let cfg = CopyAddConfig {
                    n_sets: 2_000,
                    size_range: (50, 60),
                    overlap: alpha,
                    seed: setdisc_bench::SEED,
                };
                b.iter(|| {
                    let c = generate_copy_add(&cfg);
                    std::hint::black_box(c.distinct_entities())
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
