//! Figure 7 — tree construction time as the number of sets grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::KLp;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_sets");
    g.sample_size(10);
    for &n in &[100usize, 200, 400] {
        let collection = setdisc_bench::synthetic(n, 0.9);
        g.bench_with_input(BenchmarkId::from_parameter(n), &collection, |b, coll| {
            b.iter(|| {
                let mut s = KLp::<AvgDepth>::limited_variable(3, 10);
                let tree = build_tree(&coll.full_view(), &mut s).expect("tree");
                std::hint::black_box(tree.avg_depth())
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
