//! Figure 6 — tree construction time as the distinct-entity count grows
//! (driven by the set-size range).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::KLp;
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_entities");
    g.sample_size(10);
    for &(lo, hi) in &[(10usize, 20usize), (30, 50), (60, 90)] {
        let collection = generate_copy_add(&CopyAddConfig {
            n_sets: 150,
            size_range: (lo, hi),
            overlap: 0.9,
            seed: setdisc_bench::SEED,
        });
        let label = format!("d={lo}-{hi} (m={})", collection.distinct_entities());
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &collection,
            |b, coll| {
                b.iter(|| {
                    let mut s = KLp::<AvgDepth>::limited(3, 10);
                    let tree = build_tree(&coll.full_view(), &mut s).expect("tree");
                    std::hint::black_box(tree.avg_depth())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
