//! Synthetic `People` table — the substitution for the Lahman baseball
//! database (DESIGN.md §4).
//!
//! Ten columns matching the paper's experiment: `birthCountry`,
//! `birthState`, `birthCity`, `birthYear`, `birthMonth`, `birthDay`,
//! `height`, `weight`, `bats`, `throws`, over 20,185 rows (the row count
//! §5.2.3 reports). Marginals and correlations are tuned so the seven target
//! queries of Table 2 return outputs of the same order of magnitude as the
//! paper's; EXPERIMENTS.md records the side-by-side counts.
//!
//! Per the paper's grouping, `birthMonth` and `birthDay` are *categorical*
//! (their conditions are equality disjunctions, not ranges); `birthYear`,
//! `height` and `weight` are numeric.

use crate::table::{numeric_column, CategoricalBuilder, Table};
use setdisc_util::Rng;

/// Row count of the real Lahman `People` table, as reported in §5.2.3.
pub const PEOPLE_ROWS: usize = 20_185;

/// Weighted categorical choice. Weights need not sum to 1 (normalized).
fn pick<'a>(rng: &mut Rng, options: &[(&'a str, f64)]) -> &'a str {
    let total: f64 = options.iter().map(|(_, w)| w).sum();
    let mut u = rng.f64() * total;
    for (name, w) in options {
        u -= w;
        if u <= 0.0 {
            return name;
        }
    }
    options.last().expect("non-empty options").0
}

const COUNTRIES: &[(&str, f64)] = &[
    ("USA", 0.720),
    ("D.R.", 0.048),
    ("Venezuela", 0.032),
    ("P.R.", 0.022),
    ("Canada", 0.021),
    ("Cuba", 0.019),
    ("Mexico", 0.012),
    ("Japan", 0.008),
    ("Panama", 0.005),
    ("Australia", 0.004),
    ("Colombia", 0.004),
    ("South Korea", 0.003),
    ("Curacao", 0.003),
    ("Nicaragua", 0.003),
    ("United Kingdom", 0.003),
    ("Germany", 0.002),
    ("Ireland", 0.002),
    ("Netherlands", 0.002),
    ("Taiwan", 0.001),
    ("Brazil", 0.001),
    // Long tail lumped so the weights sum to 1.0 and USA stays at 72%.
    ("Other-Country", 0.085),
];

const US_STATES: &[(&str, f64)] = &[
    ("CA", 0.125),
    ("PA", 0.075),
    ("NY", 0.072),
    ("IL", 0.064),
    ("OH", 0.062),
    ("TX", 0.056),
    ("MO", 0.040),
    ("MA", 0.040),
    ("FL", 0.036),
    ("NC", 0.030),
    ("GA", 0.028),
    ("AL", 0.027),
    ("MI", 0.026),
    ("NJ", 0.026),
    ("TN", 0.023),
    ("VA", 0.022),
    ("IN", 0.022),
    ("KY", 0.021),
    ("WA", 0.018),
    ("LA", 0.018),
    ("MD", 0.017),
    ("OK", 0.017),
    ("WI", 0.016),
    ("SC", 0.016),
    ("MS", 0.016),
    ("IA", 0.015),
    ("KS", 0.013),
    ("MN", 0.012),
    ("AR", 0.012),
    ("CT", 0.012),
    ("WV", 0.011),
    ("OR", 0.008),
    ("CO", 0.008),
    ("AZ", 0.007),
    ("NE", 0.007),
    ("ME", 0.005),
];

/// Largest cities per US state (heavily biased to the big ones so the T2
/// Los Angeles selection has paper-scale support).
fn us_cities(state: &str) -> &'static [(&'static str, f64)] {
    match state {
        "CA" => &[
            ("Los Angeles", 0.16),
            ("San Francisco", 0.12),
            ("San Diego", 0.07),
            ("Oakland", 0.06),
            ("Sacramento", 0.05),
            ("Fresno", 0.04),
            ("Long Beach", 0.04),
            ("San Jose", 0.03),
            ("Berkeley", 0.03),
            ("Pasadena", 0.03),
            ("Santa Monica", 0.02),
            ("Anaheim", 0.02),
            ("Other-CA", 0.33),
        ],
        "IL" => &[
            ("Chicago", 0.35),
            ("Springfield", 0.06),
            ("Peoria", 0.05),
            ("Rockford", 0.04),
            ("Other-IL", 0.50),
        ],
        "NY" => &[
            ("New York", 0.30),
            ("Brooklyn", 0.12),
            ("Buffalo", 0.07),
            ("Rochester", 0.05),
            ("Syracuse", 0.04),
            ("Other-NY", 0.42),
        ],
        "WA" => &[
            ("Seattle", 0.30),
            ("Tacoma", 0.12),
            ("Spokane", 0.10),
            ("Other-WA", 0.48),
        ],
        "PA" => &[
            ("Philadelphia", 0.22),
            ("Pittsburgh", 0.14),
            ("Allentown", 0.04),
            ("Other-PA", 0.60),
        ],
        "TX" => &[
            ("Houston", 0.15),
            ("Dallas", 0.13),
            ("San Antonio", 0.09),
            ("Austin", 0.07),
            ("Other-TX", 0.56),
        ],
        "OH" => &[
            ("Cincinnati", 0.14),
            ("Cleveland", 0.13),
            ("Columbus", 0.10),
            ("Other-OH", 0.63),
        ],
        "MA" => &[
            ("Boston", 0.25),
            ("Worcester", 0.08),
            ("Springfield", 0.06),
            ("Other-MA", 0.61),
        ],
        "MO" => &[
            ("St. Louis", 0.28),
            ("Kansas City", 0.16),
            ("Other-MO", 0.56),
        ],
        _ => &[
            ("Springfield", 0.05),
            ("Franklin", 0.04),
            ("Clinton", 0.04),
            ("Georgetown", 0.03),
            ("Salem", 0.03),
            ("Madison", 0.03),
            ("Riverside", 0.03),
            ("Other", 0.75),
        ],
    }
}

fn foreign_cities(country: &str) -> &'static [(&'static str, f64)] {
    match country {
        "D.R." => &[
            ("Santo Domingo", 0.35),
            ("San Pedro de Macoris", 0.22),
            ("Santiago", 0.14),
            ("Bani", 0.08),
            ("Other-DR", 0.21),
        ],
        "Venezuela" => &[
            ("Caracas", 0.30),
            ("Maracaibo", 0.18),
            ("Valencia", 0.12),
            ("Other-VE", 0.40),
        ],
        "Cuba" => &[("Havana", 0.45), ("Matanzas", 0.12), ("Other-CU", 0.43)],
        "P.R." => &[
            ("San Juan", 0.28),
            ("Ponce", 0.14),
            ("Bayamon", 0.10),
            ("Other-PR", 0.48),
        ],
        "Canada" => &[
            ("Toronto", 0.18),
            ("Montreal", 0.16),
            ("Vancouver", 0.10),
            ("Other-CA", 0.56),
        ],
        "Mexico" => &[
            ("Mexico City", 0.22),
            ("Guadalajara", 0.12),
            ("Monterrey", 0.10),
            ("Other-MX", 0.56),
        ],
        "Japan" => &[("Tokyo", 0.30), ("Osaka", 0.15), ("Other-JP", 0.55)],
        _ => &[("Capital", 0.5), ("Other-XX", 0.5)],
    }
}

fn days_in_month(month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => 28,
        _ => unreachable!("months are 1..=12"),
    }
}

/// Birth year: piecewise-uniform mixture skewed toward the modern era,
/// tuned so ~6.2% of players are born after 1990 (T1 support).
fn birth_year(rng: &mut Rng) -> i32 {
    let u = rng.f64();
    let (lo, hi) = if u < 0.10 {
        (1850, 1899)
    } else if u < 0.30 {
        (1900, 1944)
    } else if u < 0.70 {
        (1945, 1979)
    } else if u < 0.938 {
        (1980, 1990)
    } else {
        (1991, 2002)
    };
    lo + rng.gen_range((hi - lo + 1) as u64) as i32
}

/// Generates the synthetic `People` table at its canonical size.
pub fn people_table(seed: u64) -> Table {
    people_table_sized(PEOPLE_ROWS, seed)
}

/// Generates a `People` table with `n_rows` rows (smaller sizes for tests).
pub fn people_table_sized(n_rows: usize, seed: u64) -> Table {
    assert!(n_rows >= 1);
    let mut rng = Rng::new(seed);

    let mut country_b = CategoricalBuilder::new("birthCountry");
    let mut state_b = CategoricalBuilder::new("birthState");
    let mut city_b = CategoricalBuilder::new("birthCity");
    let mut month_b = CategoricalBuilder::new("birthMonth");
    let mut day_b = CategoricalBuilder::new("birthDay");
    let mut bats_b = CategoricalBuilder::new("bats");
    let mut throws_b = CategoricalBuilder::new("throws");
    let mut years: Vec<Option<i32>> = Vec::with_capacity(n_rows);
    let mut heights: Vec<Option<i32>> = Vec::with_capacity(n_rows);
    let mut weights: Vec<Option<i32>> = Vec::with_capacity(n_rows);
    let mut row_names: Vec<String> = Vec::with_capacity(n_rows);

    for i in 0..n_rows {
        row_names.push(format!("player{i:05}"));

        // Country / state / city, correlated.
        let country = if rng.chance(0.005) {
            None
        } else {
            Some(pick(&mut rng, COUNTRIES))
        };
        country_b.push(country);
        let (state, city): (Option<&str>, Option<&str>) = match country {
            Some("USA") => {
                if rng.chance(0.02) {
                    (None, None)
                } else {
                    let st = pick(&mut rng, US_STATES);
                    let ci = pick(&mut rng, us_cities(st));
                    (Some(st), Some(ci))
                }
            }
            Some(c) => {
                if rng.chance(0.45) {
                    (None, Some(pick(&mut rng, foreign_cities(c))))
                } else {
                    (
                        Some("Foreign-Province"),
                        Some(pick(&mut rng, foreign_cities(c))),
                    )
                }
            }
            None => (None, None),
        };
        state_b.push(state);
        city_b.push(city);

        // Birth date.
        if rng.chance(0.02) {
            years.push(None);
            month_b.push(None);
            day_b.push(None);
        } else {
            years.push(Some(birth_year(&mut rng)));
            let month = 1 + rng.gen_range(12) as u32;
            let day = 1 + rng.gen_range(days_in_month(month) as u64) as u32;
            month_b.push(Some(&month.to_string()));
            day_b.push(Some(&day.to_string()));
        }

        // Height and weight, correlated (weight regressed on height with
        // occasional heavy outliers so the T6 tail is populated).
        let h = (rng.normal_with(72.5, 2.6)).round().clamp(60.0, 84.0) as i32;
        let mut w = rng.normal_with(190.0 + 6.5 * (h as f64 - 72.5), 16.0);
        if rng.chance(0.03) {
            w += 45.0;
        }
        let w = w.round().clamp(120.0, 330.0) as i32;
        heights.push(if rng.chance(0.01) { None } else { Some(h) });
        weights.push(if rng.chance(0.01) { None } else { Some(w) });

        // Handedness, correlated.
        let bats = if rng.chance(0.012) {
            None
        } else {
            Some(pick(&mut rng, &[("R", 0.635), ("L", 0.300), ("B", 0.065)]))
        };
        let throws = match bats {
            Some("L") => Some(pick(&mut rng, &[("R", 0.36), ("L", 0.64)])),
            Some("B") => Some(pick(&mut rng, &[("R", 0.80), ("L", 0.20)])),
            Some(_) => Some(pick(&mut rng, &[("R", 0.96), ("L", 0.04)])),
            None => None,
        };
        bats_b.push(bats);
        throws_b.push(throws);
        let _ = i;
    }

    Table::new(
        "People",
        vec![
            country_b.build(),
            state_b.build(),
            city_b.build(),
            numeric_column("birthYear", years),
            month_b.build(),
            day_b.build(),
            numeric_column("height", heights),
            numeric_column("weight", weights),
            bats_b.build(),
            throws_b.build(),
        ],
        row_names,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_size_and_schema() {
        let t = people_table_sized(3_000, 1);
        assert_eq!(t.n_rows(), 3_000);
        let names: Vec<&str> = t.columns().iter().map(|c| c.name()).collect();
        assert_eq!(
            names,
            vec![
                "birthCountry",
                "birthState",
                "birthCity",
                "birthYear",
                "birthMonth",
                "birthDay",
                "height",
                "weight",
                "bats",
                "throws"
            ]
        );
        assert_eq!(t.row_name(0), "player00000");
    }

    #[test]
    fn deterministic() {
        let a = people_table_sized(500, 7);
        let b = people_table_sized(500, 7);
        for row in 0..500u32 {
            assert_eq!(a.num_value(6, row), b.num_value(6, row), "height row {row}");
            assert_eq!(a.cat_code(0, row), b.cat_code(0, row));
        }
    }

    #[test]
    fn usa_dominates_birth_country() {
        let t = people_table_sized(5_000, 3);
        let col = t.column_index("birthCountry").unwrap();
        let usa = t.cat_lookup(col, "USA").unwrap();
        let usa_count = (0..5_000u32)
            .filter(|&r| t.cat_code(col, r) == Some(usa))
            .count();
        let frac = usa_count as f64 / 5_000.0;
        assert!((0.67..0.77).contains(&frac), "USA fraction {frac}");
    }

    #[test]
    fn key_cities_exist() {
        let t = people_table_sized(PEOPLE_ROWS, 0);
        let col = t.column_index("birthCity").unwrap();
        for city in ["Los Angeles", "Chicago", "Seattle"] {
            let code = t
                .cat_lookup(col, city)
                .unwrap_or_else(|| panic!("{city} missing"));
            let count = (0..t.n_rows() as u32)
                .filter(|&r| t.cat_code(col, r) == Some(code))
                .count();
            assert!(count > 20, "{city}: {count}");
        }
    }

    #[test]
    fn height_weight_are_plausible_and_correlated() {
        let t = people_table_sized(8_000, 5);
        let hcol = t.column_index("height").unwrap();
        let wcol = t.column_index("weight").unwrap();
        let mut pairs = Vec::new();
        for r in 0..8_000u32 {
            if let (Some(h), Some(w)) = (t.num_value(hcol, r), t.num_value(wcol, r)) {
                assert!((60..=84).contains(&h), "height {h}");
                assert!((120..=330).contains(&w), "weight {w}");
                pairs.push((h as f64, w as f64));
            }
        }
        let n = pairs.len() as f64;
        let mh = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let mw = pairs.iter().map(|p| p.1).sum::<f64>() / n;
        let cov = pairs.iter().map(|p| (p.0 - mh) * (p.1 - mw)).sum::<f64>() / n;
        let sh = (pairs.iter().map(|p| (p.0 - mh).powi(2)).sum::<f64>() / n).sqrt();
        let sw = (pairs.iter().map(|p| (p.1 - mw).powi(2)).sum::<f64>() / n).sqrt();
        let corr = cov / (sh * sw);
        assert!(corr > 0.5, "height/weight correlation {corr}");
        assert!((71.0..74.0).contains(&mh), "mean height {mh}");
        assert!((180.0..200.0).contains(&mw), "mean weight {mw}");
    }

    #[test]
    fn dates_are_valid() {
        let t = people_table_sized(5_000, 11);
        let ycol = t.column_index("birthYear").unwrap();
        let mcol = t.column_index("birthMonth").unwrap();
        let dcol = t.column_index("birthDay").unwrap();
        for r in 0..5_000u32 {
            if let Some(y) = t.num_value(ycol, r) {
                assert!((1850..=2002).contains(&y));
                let m: u32 = t
                    .cat_string(mcol, t.cat_code(mcol, r).expect("month with year"))
                    .parse()
                    .unwrap();
                let d: u32 = t
                    .cat_string(dcol, t.cat_code(dcol, r).expect("day with year"))
                    .parse()
                    .unwrap();
                assert!((1..=12).contains(&m));
                assert!(d >= 1 && d <= days_in_month(m));
            }
        }
    }

    #[test]
    fn modern_tail_has_paper_scale_mass() {
        let t = people_table_sized(PEOPLE_ROWS, 0);
        let ycol = t.column_index("birthYear").unwrap();
        let post90 = (0..t.n_rows() as u32)
            .filter(|&r| t.num_value(ycol, r).is_some_and(|y| y > 1990))
            .count();
        // Paper's T1 (USA ∧ >1990) returns 892; the raw >1990 tail must be
        // somewhat above that.
        assert!((800..2_200).contains(&post90), "post-1990 count {post90}");
    }

    #[test]
    fn handedness_marginals() {
        let t = people_table_sized(10_000, 2);
        let bcol = t.column_index("bats").unwrap();
        let tcol = t.column_index("throws").unwrap();
        let b_l = t.cat_lookup(bcol, "L").unwrap();
        let t_r = t.cat_lookup(tcol, "R").unwrap();
        let lr = (0..10_000u32)
            .filter(|&r| t.cat_code(bcol, r) == Some(b_l) && t.cat_code(tcol, r) == Some(t_r))
            .count();
        let frac = lr as f64 / 10_000.0;
        // Paper's T3 is 2179/20185 ≈ 10.8%.
        assert!((0.08..0.14).contains(&frac), "bats=L∧throws=R {frac}");
    }
}
