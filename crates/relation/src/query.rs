//! Selection conditions and conjunctive (CNF) queries over a [`Table`].
//!
//! The §5.2.3 experiment uses exactly two condition shapes:
//!
//! * a **categorical disjunction** — `city = "Chicago" ∨ city = "Seattle"`
//!   (one condition per column, disjoining the example tuples' values), and
//! * an **open numeric interval** — `height > 60 ∧ height < 75`, where
//!   either bound may be absent.
//!
//! A [`CnfQuery`] is a conjunction of such conditions on distinct columns.
//! NULL never satisfies any condition (SQL semantics).

use crate::table::Table;

/// One selection condition on a single column.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Condition {
    /// `column IN {values}` over a categorical column (codes).
    CatIn {
        /// Column index.
        column: usize,
        /// Accepted dictionary codes (sorted, deduplicated).
        values: Vec<u16>,
    },
    /// `column > lower AND column < upper` (either bound optional, both
    /// exclusive, per the paper's examples).
    NumRange {
        /// Column index.
        column: usize,
        /// Exclusive lower bound.
        lower: Option<i32>,
        /// Exclusive upper bound.
        upper: Option<i32>,
    },
}

impl Condition {
    /// Builds a categorical disjunction, normalizing the value list.
    pub fn cat_in(column: usize, mut values: Vec<u16>) -> Self {
        values.sort_unstable();
        values.dedup();
        assert!(!values.is_empty(), "empty disjunction");
        Condition::CatIn { column, values }
    }

    /// Builds a numeric range; at least one bound must be present and a
    /// two-sided range must be non-empty.
    pub fn num_range(column: usize, lower: Option<i32>, upper: Option<i32>) -> Self {
        assert!(
            lower.is_some() || upper.is_some(),
            "range needs at least one bound"
        );
        if let (Some(l), Some(u)) = (lower, upper) {
            assert!(l < u, "empty range ({l}, {u})");
        }
        Condition::NumRange {
            column,
            lower,
            upper,
        }
    }

    /// The column this condition constrains.
    pub fn column(&self) -> usize {
        match self {
            Condition::CatIn { column, .. } | Condition::NumRange { column, .. } => *column,
        }
    }

    /// Does `row` satisfy the condition? NULL fails everything.
    pub fn matches(&self, table: &Table, row: u32) -> bool {
        match self {
            Condition::CatIn { column, values } => match table.cat_code(*column, row) {
                Some(code) => values.binary_search(&code).is_ok(),
                None => false,
            },
            Condition::NumRange {
                column,
                lower,
                upper,
            } => match table.num_value(*column, row) {
                Some(v) => lower.is_none_or(|l| v > l) && upper.is_none_or(|u| v < u),
                None => false,
            },
        }
    }

    /// SQL-ish rendering (resolves dictionary codes through the table).
    pub fn display(&self, table: &Table) -> String {
        match self {
            Condition::CatIn { column, values } => {
                let name = table.column(*column).name();
                if values.len() == 1 {
                    format!("{name}=\"{}\"", table.cat_string(*column, values[0]))
                } else {
                    let vals: Vec<String> = values
                        .iter()
                        .map(|&v| format!("\"{}\"", table.cat_string(*column, v)))
                        .collect();
                    format!("{name} IN ({})", vals.join(", "))
                }
            }
            Condition::NumRange {
                column,
                lower,
                upper,
            } => {
                let name = table.column(*column).name();
                match (lower, upper) {
                    (Some(l), Some(u)) => format!("{name}>{l} AND {name}<{u}"),
                    (Some(l), None) => format!("{name}>{l}"),
                    (None, Some(u)) => format!("{name}<{u}"),
                    (None, None) => unreachable!("constructor forbids"),
                }
            }
        }
    }
}

/// A conjunction of conditions on distinct columns.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CnfQuery {
    conditions: Vec<Condition>,
}

impl CnfQuery {
    /// Builds a query; conditions must be on distinct columns.
    pub fn new(mut conditions: Vec<Condition>) -> Self {
        conditions.sort_by_key(Condition::column);
        assert!(
            conditions
                .windows(2)
                .all(|w| w[0].column() != w[1].column()),
            "conditions must be on distinct columns"
        );
        Self { conditions }
    }

    /// The conditions, ordered by column index.
    pub fn conditions(&self) -> &[Condition] {
        &self.conditions
    }

    /// Does `row` satisfy every condition?
    pub fn matches(&self, table: &Table, row: u32) -> bool {
        self.conditions.iter().all(|c| c.matches(table, row))
    }

    /// All satisfying row ids, ascending.
    pub fn evaluate(&self, table: &Table) -> Vec<u32> {
        (0..table.n_rows() as u32)
            .filter(|&row| self.matches(table, row))
            .collect()
    }

    /// SQL-ish rendering: `σ cond ∧ cond (TableName)`.
    pub fn display(&self, table: &Table) -> String {
        if self.conditions.is_empty() {
            return format!("σ true ({})", table.name());
        }
        let parts: Vec<String> = self.conditions.iter().map(|c| c.display(table)).collect();
        format!("σ {} ({})", parts.join(" AND "), table.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{numeric_column, CategoricalBuilder, Table};

    fn toy() -> Table {
        let mut city = CategoricalBuilder::new("city");
        for v in [
            Some("Chicago"),
            Some("Seattle"),
            Some("Boston"),
            None,
            Some("Chicago"),
        ] {
            city.push(v);
        }
        let h = numeric_column("height", vec![Some(70), Some(75), Some(62), Some(80), None]);
        Table::new(
            "toy",
            vec![city.build(), h],
            (0..5).map(|i| format!("r{i}")).collect(),
        )
    }

    #[test]
    fn cat_in_matches_and_nulls() {
        let t = toy();
        let chi = t.cat_lookup(0, "Chicago").unwrap();
        let sea = t.cat_lookup(0, "Seattle").unwrap();
        let c = Condition::cat_in(0, vec![chi, sea]);
        assert!(c.matches(&t, 0));
        assert!(c.matches(&t, 1));
        assert!(!c.matches(&t, 2), "Boston");
        assert!(!c.matches(&t, 3), "NULL");
        assert!(c.matches(&t, 4));
    }

    #[test]
    fn num_range_bounds_are_exclusive() {
        let t = toy();
        let c = Condition::num_range(1, Some(62), Some(80));
        assert!(c.matches(&t, 0)); // 70
        assert!(c.matches(&t, 1)); // 75
        assert!(!c.matches(&t, 2), "62 is not > 62");
        assert!(!c.matches(&t, 3), "80 is not < 80");
        assert!(!c.matches(&t, 4), "NULL");
        let one_sided = Condition::num_range(1, Some(74), None);
        assert_eq!(CnfQuery::new(vec![one_sided]).evaluate(&t), vec![1, 3]);
    }

    #[test]
    fn conjunction_evaluates() {
        let t = toy();
        let chi = t.cat_lookup(0, "Chicago").unwrap();
        let q = CnfQuery::new(vec![
            Condition::cat_in(0, vec![chi]),
            Condition::num_range(1, Some(60), Some(75)),
        ]);
        assert_eq!(q.evaluate(&t), vec![0]);
    }

    #[test]
    fn empty_query_selects_all() {
        let t = toy();
        let q = CnfQuery::new(vec![]);
        assert_eq!(q.evaluate(&t).len(), 5);
        assert_eq!(q.display(&t), "σ true (toy)");
    }

    #[test]
    fn display_formats() {
        let t = toy();
        let chi = t.cat_lookup(0, "Chicago").unwrap();
        let sea = t.cat_lookup(0, "Seattle").unwrap();
        assert_eq!(
            Condition::cat_in(0, vec![chi]).display(&t),
            "city=\"Chicago\""
        );
        assert_eq!(
            Condition::cat_in(0, vec![sea, chi]).display(&t),
            format!(
                "city IN (\"{}\", \"{}\")",
                t.cat_string(0, chi.min(sea)),
                t.cat_string(0, chi.max(sea))
            )
        );
        assert_eq!(
            Condition::num_range(1, Some(60), Some(75)).display(&t),
            "height>60 AND height<75"
        );
        assert_eq!(
            Condition::num_range(1, None, Some(75)).display(&t),
            "height<75"
        );
        let q = CnfQuery::new(vec![
            Condition::cat_in(0, vec![chi]),
            Condition::num_range(1, Some(70), None),
        ]);
        assert_eq!(q.display(&t), "σ city=\"Chicago\" AND height>70 (toy)");
    }

    #[test]
    fn normalization_dedups_values() {
        let c = Condition::cat_in(0, vec![3, 1, 3, 2, 1]);
        assert_eq!(
            c,
            Condition::CatIn {
                column: 0,
                values: vec![1, 2, 3]
            }
        );
    }

    #[test]
    #[should_panic(expected = "distinct columns")]
    fn same_column_twice_panics() {
        CnfQuery::new(vec![
            Condition::num_range(1, Some(60), None),
            Condition::num_range(1, None, Some(80)),
        ]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn inverted_range_panics() {
        Condition::num_range(0, Some(10), Some(5));
    }

    #[test]
    #[should_panic(expected = "at least one bound")]
    fn unbounded_range_panics() {
        Condition::num_range(0, None, None);
    }
}
