//! Candidate CNF query generation from example tuples — §5.2.3 steps 1–5.
//!
//! Given two (or more) example rows of the target output:
//!
//! 1. columns split into categorical and numerical;
//! 2. each numerical column has fixed **reference values**;
//! 3. each categorical column yields one condition: the disjunction of the
//!    examples' distinct values (skipped when an example is NULL there);
//! 4. each numerical column yields every condition formed from reference
//!    bounds containing all example values: `(l, u)` pairs plus one-sided
//!    `> l` and `< u`;
//! 5. every single condition is a candidate query, and so is every
//!    conjunction of two conditions on different columns.
//!
//! Candidates whose outputs coincide are merged (set discovery can only
//! distinguish queries by their output on the instance — §2.1), producing a
//! [`setdisc_core::Collection`] whose entities are row ids, aligned with a
//! query per set.

use crate::query::{CnfQuery, Condition};
use crate::table::{ColumnKind, Table};
use setdisc_core::collection::CollectionBuilder;
use setdisc_core::{Collection, EntitySet};
use setdisc_util::FxHashMap;

/// Reference values per numeric column (§5.2.3 step 2).
#[derive(Clone, Debug)]
pub struct ReferenceValues {
    /// `(column name, sorted reference values)`.
    pub per_column: Vec<(String, Vec<i32>)>,
}

impl ReferenceValues {
    /// The paper's reference values for the `People` table.
    pub fn paper_defaults() -> Self {
        Self {
            per_column: vec![
                ("height".into(), vec![60, 65, 70, 75, 80]),
                (
                    "weight".into(),
                    vec![120, 140, 160, 180, 200, 220, 240, 260, 280, 300],
                ),
                (
                    "birthYear".into(),
                    vec![1850, 1870, 1890, 1910, 1930, 1950, 1970, 1990],
                ),
            ],
        }
    }

    fn refs_for(&self, name: &str) -> Option<&[i32]> {
        self.per_column
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }
}

/// Candidate conditions per column (steps 3–4). The outer vector is indexed
/// by column; columns that yield no condition have empty entries.
pub fn candidate_conditions(
    table: &Table,
    examples: &[u32],
    refs: &ReferenceValues,
) -> Vec<Vec<Condition>> {
    assert!(!examples.is_empty(), "need at least one example tuple");
    let mut out: Vec<Vec<Condition>> = vec![Vec::new(); table.n_columns()];
    for (col_idx, col) in table.columns().iter().enumerate() {
        match col.kind() {
            ColumnKind::Categorical => {
                let mut codes = Vec::with_capacity(examples.len());
                let mut any_null = false;
                for &row in examples {
                    match table.cat_code(col_idx, row) {
                        Some(c) => codes.push(c),
                        None => any_null = true,
                    }
                }
                if !any_null && !codes.is_empty() {
                    out[col_idx].push(Condition::cat_in(col_idx, codes));
                }
            }
            ColumnKind::Numeric => {
                let Some(refs) = refs.refs_for(col.name()) else {
                    continue;
                };
                let mut vals = Vec::with_capacity(examples.len());
                let mut any_null = false;
                for &row in examples {
                    match table.num_value(col_idx, row) {
                        Some(v) => vals.push(v),
                        None => any_null = true,
                    }
                }
                if any_null || vals.is_empty() {
                    continue;
                }
                let lo = *vals.iter().min().expect("non-empty");
                let hi = *vals.iter().max().expect("non-empty");
                let lowers: Vec<i32> = refs.iter().copied().filter(|&r| r < lo).collect();
                let uppers: Vec<i32> = refs.iter().copied().filter(|&r| r > hi).collect();
                for &l in &lowers {
                    for &u in &uppers {
                        out[col_idx].push(Condition::num_range(col_idx, Some(l), Some(u)));
                    }
                }
                for &l in &lowers {
                    out[col_idx].push(Condition::num_range(col_idx, Some(l), None));
                }
                for &u in &uppers {
                    out[col_idx].push(Condition::num_range(col_idx, None, Some(u)));
                }
            }
        }
    }
    out
}

/// Candidate queries with output-deduplicated candidate sets.
pub struct CandidateSets {
    /// Candidate outputs as a collection; entity ids are table row ids.
    pub collection: Collection,
    /// The representative query of each set, aligned with set ids.
    pub queries: Vec<CnfQuery>,
    /// Queries generated before output-deduplication (steps 3–5 count).
    pub n_generated: usize,
    /// Mean output size across the *generated* queries (Table 3's
    /// "average number of output tuples").
    pub avg_output_size: f64,
}

/// Runs steps 1–5 and evaluates every candidate (step 5 is limited to
/// conjunctions of at most two conditions, as in the paper).
pub fn generate_candidates(
    table: &Table,
    examples: &[u32],
    refs: &ReferenceValues,
) -> CandidateSets {
    let per_column = candidate_conditions(table, examples, refs);

    let mut queries: Vec<CnfQuery> = Vec::new();
    // Singles.
    for conds in &per_column {
        for c in conds {
            queries.push(CnfQuery::new(vec![c.clone()]));
        }
    }
    // Pairs on distinct columns.
    for (i, ci) in per_column.iter().enumerate() {
        for cj in per_column.iter().skip(i + 1) {
            for a in ci {
                for b in cj {
                    queries.push(CnfQuery::new(vec![a.clone(), b.clone()]));
                }
            }
        }
    }

    // Evaluate, verify example containment, dedup by output.
    let mut builder = CollectionBuilder::new();
    let mut kept: Vec<CnfQuery> = Vec::new();
    let mut seen: FxHashMap<Vec<u32>, ()> = FxHashMap::default();
    let mut output_total: usize = 0;
    let n_generated = queries.len();
    for q in queries {
        let rows = q.evaluate(table);
        debug_assert!(
            examples.iter().all(|e| rows.binary_search(e).is_ok()),
            "candidate must contain the examples by construction"
        );
        output_total += rows.len();
        if seen.insert(rows.clone(), ()).is_some() {
            continue;
        }
        let before = builder.len();
        builder.push(EntitySet::from_raw(rows));
        if builder.len() > before {
            kept.push(q);
        }
    }
    let built = builder.build().expect("at least one candidate");
    CandidateSets {
        collection: built.collection,
        queries: kept,
        n_generated,
        avg_output_size: output_total as f64 / n_generated.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::people::people_table_sized;
    use setdisc_core::entity::SetId;

    #[test]
    fn paper_height_example_yields_five_conditions() {
        // §5.2.3 step 4, verbatim: heights 62 and 73 →
        // >60∧<75, >60∧<80, >60, <75, <80. Use a toy table so the exact
        // example heights are guaranteed to exist.
        let t = {
            let mut city = crate::table::CategoricalBuilder::new("city");
            city.push(Some("A"));
            city.push(Some("B"));
            crate::table::Table::new(
                "toy",
                vec![
                    city.build(),
                    crate::table::numeric_column("height", vec![Some(62), Some(73)]),
                ],
                vec!["r0".into(), "r1".into()],
            )
        };
        let hcol = t.column_index("height").unwrap();
        let conds = candidate_conditions(&t, &[0, 1], &ReferenceValues::paper_defaults());
        let height_conds = &conds[hcol];
        assert_eq!(height_conds.len(), 5, "{height_conds:?}");
        assert!(height_conds.contains(&Condition::num_range(hcol, Some(60), Some(75))));
        assert!(height_conds.contains(&Condition::num_range(hcol, Some(60), Some(80))));
        assert!(height_conds.contains(&Condition::num_range(hcol, Some(60), None)));
        assert!(height_conds.contains(&Condition::num_range(hcol, None, Some(75))));
        assert!(height_conds.contains(&Condition::num_range(hcol, None, Some(80))));
    }

    #[test]
    fn common_heights_yield_eight_conditions() {
        // Heights 68 and 73 (both frequent in the People table): lowers
        // {60, 65}, uppers {75, 80} → 4 pairs + 2 one-sided lowers +
        // 2 one-sided uppers = 8 conditions.
        let t = people_table_sized(5_000, 1);
        let hcol = t.column_index("height").unwrap();
        let r68 = (0..5_000u32)
            .find(|&r| t.num_value(hcol, r) == Some(68))
            .expect("a 68in player");
        let r73 = (0..5_000u32)
            .find(|&r| t.num_value(hcol, r) == Some(73))
            .expect("a 73in player");
        let conds = candidate_conditions(&t, &[r68, r73], &ReferenceValues::paper_defaults());
        assert_eq!(conds[hcol].len(), 8, "{:?}", conds[hcol]);
    }

    #[test]
    fn categorical_condition_disjoins_example_values() {
        let t = people_table_sized(2_000, 1);
        let ccol = t.column_index("birthCountry").unwrap();
        // Two rows with distinct non-null countries.
        let mut rows = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for r in 0..2_000u32 {
            if let Some(code) = t.cat_code(ccol, r) {
                if seen.insert(code) {
                    rows.push(r);
                    if rows.len() == 2 {
                        break;
                    }
                }
            }
        }
        let conds = candidate_conditions(&t, &rows, &ReferenceValues::paper_defaults());
        match &conds[ccol][..] {
            [Condition::CatIn { values, .. }] => assert_eq!(values.len(), 2),
            other => panic!("expected one CatIn, got {other:?}"),
        }
    }

    #[test]
    fn null_example_skips_column() {
        let t = people_table_sized(4_000, 1);
        let scol = t.column_index("birthState").unwrap();
        let null_row = (0..4_000u32)
            .find(|&r| t.cat_code(scol, r).is_none())
            .expect("some null state");
        let other = (0..4_000u32)
            .find(|&r| t.cat_code(scol, r).is_some())
            .unwrap();
        let conds =
            candidate_conditions(&t, &[null_row, other], &ReferenceValues::paper_defaults());
        assert!(conds[scol].is_empty(), "NULL example must skip the column");
    }

    #[test]
    fn candidates_contain_examples_and_dedup() {
        let t = people_table_sized(3_000, 2);
        let examples = [10u32, 500u32];
        let cands = generate_candidates(&t, &examples, &ReferenceValues::paper_defaults());
        assert!(cands.n_generated > cands.collection.len(), "dedup happened");
        assert_eq!(cands.queries.len(), cands.collection.len());
        for (i, q) in cands.queries.iter().enumerate() {
            let set = cands.collection.set(SetId(i as u32));
            // The aligned query regenerates exactly this output.
            let rows = q.evaluate(&t);
            assert_eq!(rows.len(), set.len(), "query {}", q.display(&t));
            // And both examples are inside.
            for &e in &examples {
                assert!(set.contains(setdisc_core::entity::EntityId(e)));
            }
        }
        assert!(cands.avg_output_size > 0.0);
    }

    #[test]
    fn candidate_count_has_paper_magnitude() {
        // Table 3 reports 600–1,339 candidates from two examples. The exact
        // number depends on the examples' NULLs and value spreads; assert
        // the order of magnitude on the full-size table.
        let t = crate::people::people_table(0);
        let examples = [3u32, 7u32];
        let cands = generate_candidates(&t, &examples, &ReferenceValues::paper_defaults());
        assert!(
            (100..4_000).contains(&cands.n_generated),
            "generated {}",
            cands.n_generated
        );
        assert!(
            cands.collection.len() >= 50,
            "kept {}",
            cands.collection.len()
        );
    }
}
