//! A typed, columnar in-memory table.
//!
//! Only what the §5.2.3 experiment needs: categorical columns (dictionary
//! encoded, `u16` codes) and numeric columns (`i32`), both nullable. Storage
//! is column-major so predicate evaluation scans one dense vector.

use setdisc_util::FxHashMap;

/// Column type tag.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ColumnKind {
    /// Dictionary-encoded string column.
    Categorical,
    /// 32-bit integer column.
    Numeric,
}

/// One column of a [`Table`].
pub enum Column {
    /// Dictionary-encoded strings; `None` = NULL.
    Categorical {
        /// Column name.
        name: String,
        /// Code → string dictionary.
        dict: Vec<String>,
        /// Reverse lookup.
        index: FxHashMap<String, u16>,
        /// Per-row codes.
        codes: Vec<Option<u16>>,
    },
    /// Integers; `None` = NULL.
    Numeric {
        /// Column name.
        name: String,
        /// Per-row values.
        values: Vec<Option<i32>>,
    },
}

impl Column {
    /// Column name.
    pub fn name(&self) -> &str {
        match self {
            Column::Categorical { name, .. } | Column::Numeric { name, .. } => name,
        }
    }

    /// Column kind.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Categorical { .. } => ColumnKind::Categorical,
            Column::Numeric { .. } => ColumnKind::Numeric,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical { codes, .. } => codes.len(),
            Column::Numeric { values, .. } => values.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fixed-schema, immutable, columnar table.
pub struct Table {
    name: String,
    columns: Vec<Column>,
    n_rows: usize,
    row_names: Vec<String>,
}

impl Table {
    /// Assembles a table; all columns must have `n_rows` entries, as must
    /// `row_names` (the printable primary key, e.g. `playerID`).
    pub fn new(name: impl Into<String>, columns: Vec<Column>, row_names: Vec<String>) -> Self {
        let n_rows = row_names.len();
        for c in &columns {
            assert_eq!(c.len(), n_rows, "column {} length mismatch", c.name());
        }
        Self {
            name: name.into(),
            columns,
            n_rows,
            row_names,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_columns(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Column by index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Printable row identifier (e.g. the playerID).
    pub fn row_name(&self, row: u32) -> &str {
        &self.row_names[row as usize]
    }

    /// Categorical code for `(column, row)`; `None` for NULL. Panics when
    /// the column is numeric (programmer error).
    pub fn cat_code(&self, col: usize, row: u32) -> Option<u16> {
        match &self.columns[col] {
            Column::Categorical { codes, .. } => codes[row as usize],
            Column::Numeric { name, .. } => panic!("column {name} is numeric"),
        }
    }

    /// Numeric value for `(column, row)`; `None` for NULL. Panics when the
    /// column is categorical.
    pub fn num_value(&self, col: usize, row: u32) -> Option<i32> {
        match &self.columns[col] {
            Column::Numeric { values, .. } => values[row as usize],
            Column::Categorical { name, .. } => panic!("column {name} is categorical"),
        }
    }

    /// The dictionary string for a categorical code.
    pub fn cat_string(&self, col: usize, code: u16) -> &str {
        match &self.columns[col] {
            Column::Categorical { dict, .. } => &dict[code as usize],
            Column::Numeric { name, .. } => panic!("column {name} is numeric"),
        }
    }

    /// The code for a categorical string, if present in the dictionary.
    pub fn cat_lookup(&self, col: usize, value: &str) -> Option<u16> {
        match &self.columns[col] {
            Column::Categorical { index, .. } => index.get(value).copied(),
            Column::Numeric { name, .. } => panic!("column {name} is numeric"),
        }
    }
}

/// Builder for categorical columns.
pub struct CategoricalBuilder {
    name: String,
    dict: Vec<String>,
    index: FxHashMap<String, u16>,
    codes: Vec<Option<u16>>,
}

impl CategoricalBuilder {
    /// New builder for a column called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            dict: Vec::new(),
            index: FxHashMap::default(),
            codes: Vec::new(),
        }
    }

    /// Appends a value (interned) or NULL.
    pub fn push(&mut self, value: Option<&str>) {
        let code = value.map(|v| {
            if let Some(&c) = self.index.get(v) {
                c
            } else {
                let c = u16::try_from(self.dict.len()).expect("dictionary overflow");
                self.dict.push(v.to_string());
                self.index.insert(v.to_string(), c);
                c
            }
        });
        self.codes.push(code);
    }

    /// Finalizes the column.
    pub fn build(self) -> Column {
        Column::Categorical {
            name: self.name,
            dict: self.dict,
            index: self.index,
            codes: self.codes,
        }
    }
}

/// Builds a numeric column directly.
pub fn numeric_column(name: impl Into<String>, values: Vec<Option<i32>>) -> Column {
    Column::Numeric {
        name: name.into(),
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Table {
        let mut city = CategoricalBuilder::new("city");
        for v in [Some("Chicago"), Some("Seattle"), None, Some("Chicago")] {
            city.push(v);
        }
        let height = numeric_column("height", vec![Some(70), Some(75), Some(62), None]);
        Table::new(
            "toy",
            vec![city.build(), height],
            (0..4).map(|i| format!("row{i}")).collect(),
        )
    }

    #[test]
    fn shape_and_lookup() {
        let t = toy();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_columns(), 2);
        assert_eq!(t.column_index("city"), Some(0));
        assert_eq!(t.column_index("height"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.row_name(2), "row2");
        assert_eq!(t.column(0).kind(), ColumnKind::Categorical);
        assert_eq!(t.column(1).kind(), ColumnKind::Numeric);
    }

    #[test]
    fn dictionary_interning() {
        let t = toy();
        let chicago = t.cat_lookup(0, "Chicago").unwrap();
        assert_eq!(t.cat_code(0, 0), Some(chicago));
        assert_eq!(t.cat_code(0, 3), Some(chicago), "same code reused");
        assert_eq!(t.cat_code(0, 2), None, "NULL");
        assert_eq!(t.cat_string(0, chicago), "Chicago");
        assert_eq!(t.cat_lookup(0, "Boston"), None);
    }

    #[test]
    fn numeric_access() {
        let t = toy();
        assert_eq!(t.num_value(1, 1), Some(75));
        assert_eq!(t.num_value(1, 3), None);
    }

    #[test]
    #[should_panic(expected = "is numeric")]
    fn kind_confusion_panics() {
        toy().cat_code(1, 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_columns_panic() {
        let height = numeric_column("h", vec![Some(1)]);
        Table::new("bad", vec![height], vec!["a".into(), "b".into()]);
    }
}
