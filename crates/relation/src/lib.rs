//! Mini relational substrate for the query-discovery experiment (§5.2.3).
//!
//! The paper runs set discovery over the *outputs of candidate SQL queries*
//! on the Lahman baseball database's `People` table. This crate provides
//! everything that experiment needs, built from scratch:
//!
//! * [`table`] — a typed, columnar in-memory table (categorical columns with
//!   dictionaries, numeric columns, NULLs);
//! * [`query`] — selection conditions (categorical disjunctions, open
//!   numeric intervals) composed into conjunctive (CNF) queries, with
//!   evaluation to row-id sets;
//! * [`people`] — a synthetic 20,185-row `People` table with the same ten
//!   columns and realistic, correlated distributions (the substitution for
//!   the real Lahman data — DESIGN.md §4);
//! * [`candgen`] — the candidate-query generator of §5.2.3, steps 1–5;
//! * [`targets`] — the seven target queries of Table 2.
//!
//! Query outputs become entity sets (entities = row ids), at which point the
//! core crate's machinery discovers the target query interactively.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candgen;
pub mod people;
pub mod query;
pub mod table;
pub mod targets;

pub use candgen::{generate_candidates, CandidateSets};
pub use people::people_table;
pub use query::{CnfQuery, Condition};
pub use table::{Column, ColumnKind, Table};
pub use targets::{target_queries, TargetQuery};
