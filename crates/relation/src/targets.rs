//! The seven target queries of Table 2, constructed against a `People`
//! table instance.

use crate::query::{CnfQuery, Condition};
use crate::table::Table;

/// A named target query (one row of Table 2).
pub struct TargetQuery {
    /// Short id, `"T1"` … `"T7"`.
    pub id: &'static str,
    /// The paper's description of the selection.
    pub description: &'static str,
    /// The query itself.
    pub query: CnfQuery,
}

fn cat(table: &Table, column: &str, value: &str) -> Condition {
    let col = table
        .column_index(column)
        .unwrap_or_else(|| panic!("column {column} missing"));
    let code = table
        .cat_lookup(col, value)
        .unwrap_or_else(|| panic!("value {value} missing from {column}"));
    Condition::cat_in(col, vec![code])
}

fn num(table: &Table, column: &str, lower: Option<i32>, upper: Option<i32>) -> Condition {
    let col = table
        .column_index(column)
        .unwrap_or_else(|| panic!("column {column} missing"));
    Condition::num_range(col, lower, upper)
}

/// Builds T1–T7 for the given table.
pub fn target_queries(table: &Table) -> Vec<TargetQuery> {
    vec![
        TargetQuery {
            id: "T1",
            description: "birthCountry=USA AND birthYear>1990",
            query: CnfQuery::new(vec![
                cat(table, "birthCountry", "USA"),
                num(table, "birthYear", Some(1990), None),
            ]),
        },
        TargetQuery {
            id: "T2",
            description: "birthCity=Los Angeles AND height>70 AND height<80",
            query: CnfQuery::new(vec![
                cat(table, "birthCity", "Los Angeles"),
                num(table, "height", Some(70), Some(80)),
            ]),
        },
        TargetQuery {
            id: "T3",
            description: "bats=L AND throws=R",
            query: CnfQuery::new(vec![cat(table, "bats", "L"), cat(table, "throws", "R")]),
        },
        TargetQuery {
            id: "T4",
            description: "birthCountry=USA AND bats=B",
            query: CnfQuery::new(vec![
                cat(table, "birthCountry", "USA"),
                cat(table, "bats", "B"),
            ]),
        },
        TargetQuery {
            id: "T5",
            description: "birthMonth=12 AND birthDay=25",
            query: CnfQuery::new(vec![
                cat(table, "birthMonth", "12"),
                cat(table, "birthDay", "25"),
            ]),
        },
        TargetQuery {
            id: "T6",
            description: "height>75 AND weight>260",
            query: CnfQuery::new(vec![
                num(table, "height", Some(75), None),
                num(table, "weight", Some(260), None),
            ]),
        },
        TargetQuery {
            id: "T7",
            description: "height<65 AND weight<160",
            query: CnfQuery::new(vec![
                num(table, "height", None, Some(65)),
                num(table, "weight", None, Some(160)),
            ]),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::people::people_table;

    #[test]
    fn all_seven_targets_build_and_return_rows() {
        let t = people_table(0);
        let targets = target_queries(&t);
        assert_eq!(targets.len(), 7);
        for target in &targets {
            let out = target.query.evaluate(&t);
            assert!(
                out.len() >= 2,
                "{} returned {} rows — too few to sample two examples",
                target.id,
                out.len()
            );
        }
    }

    #[test]
    fn output_magnitudes_track_table2() {
        // Paper (Table 2): T1=892, T2=201, T3=2179, T4=939, T5=65, T6=49,
        // T7=26 on 20,185 rows. The synthetic table targets the same orders
        // of magnitude; allow generous bands.
        let t = people_table(0);
        let targets = target_queries(&t);
        let bands: &[(usize, usize)] = &[
            (300, 2_500),   // T1
            (60, 700),      // T2
            (1_200, 3_500), // T3
            (400, 1_800),   // T4
            (20, 160),      // T5
            (10, 250),      // T6
            (5, 160),       // T7
        ];
        for (target, &(lo, hi)) in targets.iter().zip(bands) {
            let n = target.query.evaluate(&t).len();
            assert!(
                (lo..=hi).contains(&n),
                "{}: {} rows outside [{lo}, {hi}]",
                target.id,
                n
            );
        }
    }

    #[test]
    fn targets_render_sql_like() {
        let t = people_table(0);
        let targets = target_queries(&t);
        assert_eq!(
            targets[0].query.display(&t),
            "σ birthCountry=\"USA\" AND birthYear>1990 (People)"
        );
        assert!(targets[5].query.display(&t).contains("height>75"));
        assert!(targets[5].query.display(&t).contains("weight>260"));
    }
}
