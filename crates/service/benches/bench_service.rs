//! Service throughput harness with a JSON artifact (`BENCH_service.json`).
//!
//! Self-contained (no criterion) because it must emit a machine-readable
//! baseline, like `bench_hotpath`:
//!
//! ```text
//! cargo bench -p setdisc-service --bench bench_service -- \
//!     --scale smoke --out BENCH_service.json
//! ```
//!
//! Five phases by default, all verified end-to-end (every session must
//! discover its intended target):
//!
//! * `open_concurrent` — opens ≥ 1k sessions that are live in the table
//!   *simultaneously*, then drives them all to completion (the concurrency
//!   acceptance gate);
//! * `inproc_klp2_nocache` — streaming clients over the in-process
//!   transport with the k-LP(k=2,AD) strategy and the plan cache disabled:
//!   the pre-PR-5 baseline, every session pays the full lookahead;
//! * `inproc_klp2_cold` — the same workload with the plan cache enabled
//!   from empty (sessions fill it as they run);
//! * `inproc_klp2_warm` — the same workload again on the *same* service,
//!   now served from the populated plan (the cross-session steady state a
//!   busy deployment lives in); the emitted JSON carries the cache's
//!   hit-rate report alongside the phase;
//! * `inproc_klp2_noisy` — §6 erroneous-answer sessions: `recover:true`,
//!   one unconfident lie per session, outcomes verified against a direct
//!   backtracking engine run with the same lie;
//! * `inproc_wklp2_cold` / `inproc_wklp2_warm` — §6 weighted sessions
//!   under a skewed per-set prior, cold then warm (the warm run must be
//!   served from the weighted plan partition);
//! * `inproc_klp2_mc4` — §7 multiple-choice screens of width 4
//!   (`questions` counts screens for this phase);
//! * `mem_governed` — the streaming workload on a memory-governed service
//!   (DESIGN.md §13) whose byte budget cannot hold the preloaded ballast
//!   collection: the degradation ladder must unload the cold ballast,
//!   every session must still verify, and the artifact carries the
//!   governor's accounting (budget, component bytes, shrink/unload/shed
//!   counts) alongside the phase latencies;
//! * `socket_klp2` — the cold-cache workload over a real TCP loopback
//!   socket served by `setdisc_service::server`.
//!
//! `--mode socket-only --addr HOST:PORT` instead drives an *external*
//! `serve` process (the CI smoke uses this to exercise the real binary);
//! the client installs the same `--fixture` locally to answer truthfully.

use setdisc_service::load::{
    run_load, run_open_many, Client, InProcessClient, LoadConfig, LoadReport, SocketClient,
};
use setdisc_service::strategy::StrategySpec;
use setdisc_service::{Service, ServiceConfig, Snapshot};
use setdisc_util::report::JsonObject;
use std::net::SocketAddr;
use std::sync::Arc;

#[derive(Copy, Clone, PartialEq, Eq)]
enum Scale {
    Smoke,
    Default,
}

impl Scale {
    fn parse(s: &str) -> Option<Self> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Default => "default",
        }
    }

    fn pick<T>(self, smoke: T, default: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
        }
    }
}

fn main() {
    let mut scale = Scale::Smoke;
    let mut out: Option<String> = None;
    let mut mode = "all".to_string();
    let mut addr: Option<String> = None;
    let mut fixture = "copyadd:120:0.9:7".to_string();
    let mut clients: Option<usize> = None;
    let mut sessions: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let v = args.next().expect("--scale needs a value");
                scale = Scale::parse(&v)
                    .unwrap_or_else(|| panic!("unknown scale {v:?} (smoke|default)"));
            }
            "--out" => out = Some(args.next().expect("--out needs a path")),
            "--mode" => mode = args.next().expect("--mode needs all|socket-only"),
            "--addr" => addr = Some(args.next().expect("--addr needs host:port")),
            "--fixture" => fixture = args.next().expect("--fixture needs a spec"),
            "--clients" => {
                clients = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--clients needs a count"),
                )
            }
            "--sessions" => {
                sessions = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--sessions needs a count"),
                )
            }
            // `cargo bench` passes --bench and other criterion-style flags
            // through to the target; ignore them so the harness composes.
            _ => {}
        }
    }

    let snapshot = setdisc_service::snapshot::fixture(&fixture).expect("fixture spec");
    let klp_cfg = |clients_n: usize, sessions_n: usize| LoadConfig {
        collection: fixture.clone(),
        strategy: StrategySpec::default(), // k-LP(k=2,AD)
        clients: clients_n,
        sessions_per_client: sessions_n,
        ..LoadConfig::default()
    };

    let (reports, plan_stats, mem_stats): (
        Vec<LoadReport>,
        Option<JsonObject>,
        Option<JsonObject>,
    ) = if mode == "socket-only" {
        let addr: SocketAddr = addr
            .expect("--mode socket-only requires --addr")
            .parse()
            .expect("bad --addr");
        let cfg = klp_cfg(clients.unwrap_or(4), sessions.unwrap_or(10));
        let report = run_load(
            "external_socket_klp2",
            "socket",
            &snapshot,
            &move || Ok(Box::new(SocketClient::connect(addr)?) as Box<dyn Client>),
            &cfg,
        );
        eprintln!("{}", summary(&report));
        assert_eq!(report.errors, 0, "socket sessions must all verify");
        (vec![report], None, None)
    } else {
        run_all_phases(scale, &fixture, &snapshot, &klp_cfg)
    };

    let mut doc = JsonObject::new()
        .str("bench", "service")
        .str("scale", scale.name())
        .str("fixture", &fixture)
        .array("phases", reports.iter().map(LoadReport::to_json).collect());
    if let Some(plan) = plan_stats {
        doc = doc.array("plan_cache", vec![plan]);
    }
    if let Some(mem) = mem_stats {
        doc = doc.array("memory", vec![mem]);
    }
    match &out {
        Some(path) => {
            doc.write(path).expect("write JSON artifact");
            eprintln!("wrote {path}");
        }
        None => println!("{}", doc.encode()),
    }
}

fn run_all_phases(
    scale: Scale,
    fixture: &str,
    snapshot: &Arc<Snapshot>,
    klp_cfg: &dyn Fn(usize, usize) -> LoadConfig,
) -> (Vec<LoadReport>, Option<JsonObject>, Option<JsonObject>) {
    let mut reports = Vec::new();
    let plan_stats;
    let mem_stats;

    // Phase 1: ≥ 1k sessions open concurrently in one process. The cheap
    // MostEven strategy keeps the phase about table/session scaling rather
    // than lookahead compute.
    {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let open = scale.pick(1200, 4000);
        let mut cfg = klp_cfg(8, 0);
        cfg.strategy = StrategySpec::parse("most-even", None, None, None, None).expect("spec");
        let report = run_open_many("open_concurrent", &service, snapshot, &cfg, open);
        eprintln!("{}", summary(&report));
        assert!(
            report.peak_open >= open as u64,
            "expected {open} concurrently open sessions, saw {}",
            report.peak_open
        );
        assert_eq!(report.errors, 0, "open_concurrent sessions must all verify");
        reports.push(report);
    }

    // Phase 2a: streaming in-process clients, k-LP(k=2,AD), plan cache
    // OFF — per-question latency when every session pays the lookahead.
    {
        let service = Arc::new(Service::new(ServiceConfig {
            plan_cache_capacity: 0,
            ..ServiceConfig::default()
        }));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let cfg = klp_cfg(scale.pick(4, 8), scale.pick(25, 100));
        let svc = Arc::clone(&service);
        let report = run_load(
            "inproc_klp2_nocache",
            "in-process",
            snapshot,
            &move || {
                Ok(Box::new(InProcessClient {
                    service: Arc::clone(&svc),
                }) as Box<dyn Client>)
            },
            &cfg,
        );
        eprintln!("{}", summary(&report));
        assert_eq!(report.errors, 0, "inproc sessions must all verify");
        reports.push(report);
    }

    // Phases 2b/2c: the same workload with the (default-on) plan cache —
    // cold fill, then the cross-session warm steady state on the same
    // service. The warm phase is where cached `ask` collapses toward the
    // hash-probe floor; its hit-rate report rides along in the artifact.
    {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let cfg = klp_cfg(scale.pick(4, 8), scale.pick(25, 100));
        for label in ["inproc_klp2_cold", "inproc_klp2_warm"] {
            let svc = Arc::clone(&service);
            let report = run_load(
                label,
                "in-process",
                snapshot,
                &move || {
                    Ok(Box::new(InProcessClient {
                        service: Arc::clone(&svc),
                    }) as Box<dyn Client>)
                },
                &cfg,
            );
            eprintln!("{}", summary(&report));
            assert_eq!(report.errors, 0, "inproc sessions must all verify");
            reports.push(report);
        }
        let cache = service
            .registry()
            .get(fixture)
            .expect("fixture registered")
            .plan_cache()
            .expect("default config installs a plan cache");
        let stats = cache.stats();
        assert!(stats.hits > 0, "warm phase must hit the plan: {stats:?}");
        eprintln!(
            "plan cache: {} nodes, {} hits / {} misses (rate {:.3}), {} evicted",
            stats.nodes,
            stats.hits,
            stats.misses,
            stats.hit_rate(),
            stats.evicted
        );
        plan_stats = Some(
            JsonObject::new()
                .int("nodes", stats.nodes)
                .int("hits", stats.hits)
                .int("misses", stats.misses)
                .num("hit_rate", stats.hit_rate())
                .int("evicted", stats.evicted),
        );
    }

    // Phase 2d: §6 noisy sessions — recover:true, every client lies
    // (flagged unconfident) on its second question, and the harness
    // verifies each outcome against a direct backtracking engine run with
    // the same lie. Measures what recovery replay costs per question.
    {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let cfg = LoadConfig {
            noisy: true,
            ..klp_cfg(scale.pick(4, 8), scale.pick(10, 50))
        };
        let svc = Arc::clone(&service);
        let report = run_load(
            "inproc_klp2_noisy",
            "in-process",
            snapshot,
            &move || {
                Ok(Box::new(InProcessClient {
                    service: Arc::clone(&svc),
                }) as Box<dyn Client>)
            },
            &cfg,
        );
        eprintln!("{}", summary(&report));
        assert_eq!(report.errors, 0, "noisy sessions must all verify");
        reports.push(report);
    }

    // Phases 2e/2f: §6 weighted sessions (a mildly skewed per-set prior)
    // cold then warm on the same service — the warm run must be served
    // from the weighted plan partition (its hits are tracked separately).
    {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let n = snapshot.collection().len();
        let cfg = LoadConfig {
            prior: Some((0..n).map(|i| 1 + (i % 4) as u64).collect()),
            ..klp_cfg(scale.pick(4, 8), scale.pick(10, 50))
        };
        for label in ["inproc_wklp2_cold", "inproc_wklp2_warm"] {
            let svc = Arc::clone(&service);
            let report = run_load(
                label,
                "in-process",
                snapshot,
                &move || {
                    Ok(Box::new(InProcessClient {
                        service: Arc::clone(&svc),
                    }) as Box<dyn Client>)
                },
                &cfg,
            );
            eprintln!("{}", summary(&report));
            assert_eq!(report.errors, 0, "weighted sessions must all verify");
            reports.push(report);
        }
        let stats = service
            .registry()
            .get(fixture)
            .expect("fixture registered")
            .plan_cache()
            .expect("default config installs a plan cache")
            .stats();
        assert!(
            stats.weighted_hits > 0,
            "warm weighted phase must hit the weighted plan: {stats:?}"
        );
    }

    // Phase 2g: §7 multiple-choice screens (width 4) — sessions/s compares
    // directly against `inproc_klp2_cold`; `questions` counts screens.
    {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let cfg = LoadConfig {
            choices: Some(4),
            ..klp_cfg(scale.pick(4, 8), scale.pick(10, 50))
        };
        let svc = Arc::clone(&service);
        let report = run_load(
            "inproc_klp2_mc4",
            "in-process",
            snapshot,
            &move || {
                Ok(Box::new(InProcessClient {
                    service: Arc::clone(&svc),
                }) as Box<dyn Client>)
            },
            &cfg,
        );
        eprintln!("{}", summary(&report));
        assert_eq!(report.errors, 0, "multiple-choice sessions must all verify");
        reports.push(report);
    }

    // Phase 2h: the streaming workload on a memory-governed service. The
    // budget holds the workload collection plus about half the preloaded
    // ballast — reachable only by walking the ladder (plan shrinks, then
    // unloading the cold ballast snapshot). Measures what admission
    // accounting and ladder walks cost per question; every session still
    // verifies, so governance is proven invisible to admitted work.
    {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let ballast = "copyadd:1500:0.6:97";
        service
            .registry()
            .install_fixture(ballast)
            .expect("ballast fixture");
        let (mut keep, mut drop_bytes) = (0usize, 0usize);
        for info in service.registry().list() {
            let total = info.bytes + info.plan_bytes;
            if info.name == ballast {
                drop_bytes += total;
            } else {
                keep += total;
            }
        }
        let budget = keep + drop_bytes / 2;
        service.registry().set_budget(budget);
        let cfg = klp_cfg(scale.pick(4, 8), scale.pick(25, 100));
        let svc = Arc::clone(&service);
        let report = run_load(
            "mem_governed",
            "in-process",
            snapshot,
            &move || {
                Ok(Box::new(InProcessClient {
                    service: Arc::clone(&svc),
                }) as Box<dyn Client>)
            },
            &cfg,
        );
        eprintln!("{}", summary(&report));
        assert_eq!(report.errors, 0, "governed sessions must all verify");
        let registry = service.registry();
        let gov = registry.governor();
        assert!(
            gov.unloads() >= 1,
            "the budget cannot hold the ballast; the ladder must have unloaded it"
        );
        eprintln!(
            "memory governor: budget {budget} B, resident {} B collections + {} B plans, \
             {} shrinks / {} unloads / {} sheds",
            registry.collections_bytes(),
            registry.plan_cache_bytes(),
            gov.plan_shrinks(),
            gov.unloads(),
            gov.sheds()
        );
        mem_stats = Some(
            JsonObject::new()
                .int("budget_bytes", budget as u64)
                .int("collections_bytes", registry.collections_bytes() as u64)
                .int("plan_cache_bytes", registry.plan_cache_bytes() as u64)
                .int("session_bytes", service.session_bytes() as u64)
                .int("plan_shrinks", gov.plan_shrinks())
                .int("unloads", gov.unloads())
                .int("sheds", gov.sheds()),
        );
        reports.push(report);
    }

    // Phase 3: the same workload over a real TCP loopback socket.
    {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service
            .registry()
            .install_fixture(fixture)
            .expect("fixture");
        let (addr, _handle) =
            setdisc_service::server::spawn_tcp(Arc::clone(&service), "127.0.0.1:0")
                .expect("bind loopback");
        let cfg = klp_cfg(scale.pick(4, 8), scale.pick(10, 50));
        let report = run_load(
            "socket_klp2",
            "socket",
            snapshot,
            &move || Ok(Box::new(SocketClient::connect(addr)?) as Box<dyn Client>),
            &cfg,
        );
        eprintln!("{}", summary(&report));
        assert_eq!(report.errors, 0, "socket sessions must all verify");
        reports.push(report);
    }

    (reports, plan_stats, mem_stats)
}

fn summary(r: &LoadReport) -> String {
    format!(
        "{:<16} {:>10}: {} sessions ({} peak open), {:.1} sessions/s, \
         {:.1} questions/session, p50 {:.0}µs p99 {:.0}µs per question",
        r.label,
        r.transport,
        r.sessions,
        r.peak_open,
        r.sessions_per_sec,
        r.questions_per_session,
        r.p50_question_us,
        r.p99_question_us
    )
}
