//! `explain` is pure (DESIGN.md §14): interleaving explain ops into a
//! conversation — and arming provenance capture at create time — must not
//! change a single byte of any non-explain response, nor the shared plan
//! cache the conversation leaves behind.
//!
//! Two services drive the same randomized answer sequence over the same
//! collection. The observed run creates its session with `"explain":true`
//! and fires an `explain` op at random points between every step; the
//! control run never mentions explain. Every ask / answer / status / close
//! response must be byte-identical, and the plan-cache exports must agree
//! node for node.

use proptest::prelude::*;
use setdisc_service::{Service, ServiceConfig};

/// Collections to churn: the paper fixture and a mid-size copy-add one.
const NAMES: [&str; 2] = ["figure1", "copyadd:10:0.6:5"];

fn service_over(name: &str) -> Service {
    let service = Service::new(ServiceConfig::default());
    service.registry().install_fixture(name).unwrap();
    service
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn explain_never_perturbs_outcomes_or_plans(
        answers in prop::collection::vec(0u64..2, 1..40usize),
        probes in prop::collection::vec(0u64..2, 1..40usize),
        which in 0usize..NAMES.len(),
    ) {
        let name = NAMES[which];
        let control = service_over(name);
        let observed = service_over(name);

        let create = format!(r#"{{"op":"create","collection":"{name}"}}"#);
        let create_explain =
            format!(r#"{{"op":"create","collection":"{name}","explain":true}}"#);
        prop_assert_eq!(
            control.handle_line(&create),
            observed.handle_line(&create_explain),
            "create response must not betray the explain flag"
        );

        for (i, &yes) in answers.iter().enumerate() {
            let yes = yes == 1;
            // Probe before the ask on the observed side only.
            if probes[i % probes.len()] == 1 {
                let resp = observed.handle_line(r#"{"op":"explain","session":1}"#);
                prop_assert!(resp.contains(r#""ok":true"#), "{resp}");
            }
            let asked = control.handle_line(r#"{"op":"ask","session":1}"#);
            prop_assert_eq!(
                &asked,
                &observed.handle_line(r#"{"op":"ask","session":1}"#)
            );
            if asked.contains(r#""done":true"#) {
                break;
            }
            let entity = asked
                .split(r#""entity":""#)
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .expect("ask carries an entity")
                .to_string();
            // Probe between ask and answer too — provenance for the
            // pending question is live here on the observed side.
            if probes[(i + 1) % probes.len()] == 1 {
                let resp = observed.handle_line(r#"{"op":"explain","session":1}"#);
                prop_assert!(resp.contains(r#""ok":true"#), "{resp}");
            }
            let answer = format!(
                r#"{{"op":"answer","session":1,"entity":"{entity}","answer":"{}"}}"#,
                if yes { "yes" } else { "no" }
            );
            prop_assert_eq!(
                control.handle_line(&answer),
                observed.handle_line(&answer)
            );
        }

        prop_assert_eq!(
            control.handle_line(r#"{"op":"status","session":1}"#),
            observed.handle_line(r#"{"op":"status","session":1}"#)
        );
        prop_assert_eq!(
            control.handle_line(r#"{"op":"close","session":1}"#),
            observed.handle_line(r#"{"op":"close","session":1}"#)
        );

        // The conversations fed the shared plan cache identically: explain
        // must not have recorded, evicted, or reordered a single node.
        let plans = |svc: &Service| {
            svc.registry()
                .get(name)
                .unwrap()
                .plan_cache()
                .map(|cache| cache.export_nodes())
                .unwrap_or_default()
        };
        prop_assert_eq!(plans(&control), plans(&observed));
    }
}
