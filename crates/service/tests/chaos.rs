//! Chaos suite: torn clients, hostile frames, injected faults.
//!
//! Every test drives a real TCP server (ephemeral port, thread per
//! connection) with deliberately broken client behavior — oversized
//! lines, half-written frames, mid-request disconnects, stalls past the
//! read deadline — or arms the deterministic fault layer
//! (`setdisc_util::faults`) at the service's chaos hooks, and asserts the
//! hardened edge degrades exactly as DESIGN.md §11 promises: structured
//! error replies, quarantined sessions, counters in `status`, and —
//! the core robustness claim — *sessions untouched by a fault stay
//! bit-identical to a direct in-process engine run*.
//!
//! Fault schedules are seeded from `SETDISC_FAULT_SEED` (default 42) so a
//! CI failure reproduces locally with the same variable. The fault plan
//! is process-global, so every test that arms one holds a shared lock.

use setdisc_core::discovery::{Answer, Session};
use setdisc_core::entity::{EntityId, SetId};
use setdisc_service::server::{EdgeLimits, TcpServer};
use setdisc_service::strategy::StrategySpec;
use setdisc_service::{Service, ServiceConfig, Snapshot};
use setdisc_util::faults;
use setdisc_util::report::{parse_json, JsonValue};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Serializes tests that touch the process-global fault plan (and keeps
/// unrelated tests from observing each other's injected faults).
static FAULTS: Mutex<()> = Mutex::new(());

fn fault_guard() -> MutexGuard<'static, ()> {
    let guard = FAULTS.lock().unwrap_or_else(|e| e.into_inner());
    faults::clear();
    guard
}

/// The chaos seed: `SETDISC_FAULT_SEED` (CI pins it) or 42.
fn seed() -> u64 {
    std::env::var("SETDISC_FAULT_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(42)
}

fn service_with(mut edge: EdgeLimits) -> Arc<Service> {
    // Tests end with clients still parked on open connections; the
    // production drain budget would turn every teardown into a 5 s wait.
    edge.drain_deadline = Duration::from_millis(250);
    let service = Arc::new(Service::new(ServiceConfig {
        edge,
        ..ServiceConfig::default()
    }));
    service.registry().install_fixture("figure1").unwrap();
    service
}

fn start(service: &Arc<Service>) -> TcpServer {
    TcpServer::bind(Arc::clone(service), "127.0.0.1:0").unwrap()
}

/// A raw line-protocol client that can also misbehave.
struct RawClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawClient {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).unwrap();
        // Short enough that storm rounds whose reply was killed by an
        // injected read fault abort quickly instead of waiting out a
        // long deadline.
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Self { stream, reader }
    }

    /// One request/response round trip (parsed, `ok` not asserted).
    fn call(&mut self, line: &str) -> JsonValue {
        writeln!(self.stream, "{line}").unwrap();
        parse_json(&self.read_line().expect("response line")).unwrap()
    }

    fn read_line(&mut self) -> Option<String> {
        let mut resp = String::new();
        match self.reader.read_line(&mut resp) {
            Ok(0) => None,
            Ok(_) => Some(resp.trim_end().to_string()),
            Err(e) => panic!("read: {e}"),
        }
    }

    /// True when the server has closed this connection (clean EOF, or a
    /// reset when the server closed with client bytes still unread).
    fn at_eof(&mut self) -> bool {
        let mut byte = [0u8; 1];
        matches!(self.reader.read(&mut byte), Ok(0) | Err(_))
    }
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> &'a str {
    v.get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing {key}: {v:?}"))
}

fn u64_field(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing {key}: {v:?}"))
}

/// Truthful membership answers for `target`.
fn answer_for(snapshot: &Snapshot, target: SetId, entity: EntityId) -> Answer {
    if snapshot.collection().set(target).contains(entity) {
        Answer::Yes
    } else {
        Answer::No
    }
}

/// Direct in-process reference: asked-entity sequence + final candidates.
fn reference_run(snapshot: &Snapshot, target: SetId) -> (Vec<EntityId>, Vec<SetId>) {
    let mut session = Session::new(snapshot.collection(), &[], StrategySpec::default().build());
    let mut asked = Vec::new();
    while let Some(entity) = session.next_question() {
        let answer = answer_for(snapshot, target, entity);
        asked.push(entity);
        session.answer(entity, answer);
    }
    (asked, session.outcome().candidates)
}

/// The same discovery over the wire; panics on any non-`ok` response.
fn wire_run(client: &mut RawClient, snapshot: &Snapshot, target: SetId) -> (Vec<EntityId>, u64) {
    let resp = client.call(r#"{"op":"create","collection":"figure1"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    let id = u64_field(&resp, "session");
    let mut asked = Vec::new();
    loop {
        let resp = client.call(&format!(r#"{{"op":"ask","session":{id}}}"#));
        assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
        if resp.get("done").and_then(JsonValue::as_bool) == Some(true) {
            client.call(&format!(r#"{{"op":"close","session":{id}}}"#));
            return (asked, u64_field(&resp, "candidates"));
        }
        let name = str_field(&resp, "entity").to_string();
        let entity = snapshot.resolve_entity(&name).unwrap();
        let answer = match answer_for(snapshot, target, entity) {
            Answer::Yes => "yes",
            Answer::No => "no",
            Answer::Unknown => "unknown",
        };
        asked.push(entity);
        client.call(&format!(
            r#"{{"op":"answer","session":{id},"entity":"{name}","answer":"{answer}"}}"#
        ));
    }
}

/// Asserts a full wire discovery is bit-identical to the direct engine.
fn assert_clean_discovery(client: &mut RawClient, snapshot: &Snapshot, target: SetId) {
    let (ref_asked, ref_outcome) = reference_run(snapshot, target);
    let (wire_asked, survivors) = wire_run(client, snapshot, target);
    assert_eq!(ref_asked, wire_asked, "question sequence diverged");
    assert_eq!(ref_outcome, vec![target]);
    assert_eq!(survivors, 1);
}

#[test]
fn oversized_line_is_refused_and_connection_closed() {
    let _guard = fault_guard();
    let service = service_with(EdgeLimits {
        max_line_bytes: 1024,
        ..EdgeLimits::default()
    });
    let server = start(&service);
    let mut client = RawClient::connect(server.addr());

    // A line just under the cap is a normal (if invalid) request…
    let almost = format!(r#"{{"op":"{}"}}"#, "x".repeat(900));
    let resp = client.call(&almost);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert!(
        resp.get("code").is_none(),
        "validation errors carry no code"
    );

    // …one past it is refused with a structured code, and since the frame
    // boundary is unknowable the connection is closed.
    let flood = "y".repeat(4096);
    writeln!(client.stream, "{flood}").unwrap();
    let resp = parse_json(&client.read_line().unwrap()).unwrap();
    assert_eq!(str_field(&resp, "code"), "too_large");
    assert!(client.at_eof(), "connection must close after too_large");
    assert_eq!(service.edge_stats().too_large.get(), 1);

    // The shed shows up in session-less status (additive field).
    let mut c2 = RawClient::connect(server.addr());
    let status = c2.call(r#"{"op":"status"}"#);
    assert_eq!(u64_field(&status, "too_large"), 1);
    server.shutdown();
}

#[test]
fn torn_clients_leak_nothing_and_later_sessions_stay_bit_identical() {
    let _guard = fault_guard();
    let service = service_with(EdgeLimits::default());
    let server = start(&service);
    let snapshot = service.registry().get("figure1").unwrap();

    // Client A creates a session, then dies mid-frame (half a request, no
    // newline, socket torn down).
    let mut torn = RawClient::connect(server.addr());
    let resp = torn.call(r#"{"op":"create","collection":"figure1"}"#);
    let torn_id = u64_field(&resp, "session");
    torn.stream.write_all(br#"{"op":"ask","ses"#).unwrap();
    drop(torn);

    // Client B disconnects between request and response read — the
    // response write hits a dead peer.
    let mut gone = RawClient::connect(server.addr());
    writeln!(gone.stream, r#"{{"op":"collections"}}"#).unwrap();
    drop(gone);

    // The session outlives its torn connection (sessions belong to the
    // table, not the transport): a fresh connection can resume and then
    // close it, and a full discovery on the same service is bit-identical
    // to the direct engine run.
    let mut fresh = RawClient::connect(server.addr());
    let resp = fresh.call(&format!(r#"{{"op":"ask","session":{torn_id}}}"#));
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    fresh.call(&format!(r#"{{"op":"close","session":{torn_id}}}"#));
    for target in [0u32, 3, 6] {
        assert_clean_discovery(&mut fresh, &snapshot, SetId(target));
    }
    assert_eq!(service.open_sessions(), 0, "no leaked sessions");
    server.shutdown();
}

#[test]
fn stall_past_read_deadline_is_dropped_with_code() {
    let _guard = fault_guard();
    let service = service_with(EdgeLimits {
        read_timeout: Some(Duration::from_millis(80)),
        ..EdgeLimits::default()
    });
    let server = start(&service);
    let mut client = RawClient::connect(server.addr());

    // Stall (send nothing) past the deadline.
    let resp = parse_json(&client.read_line().unwrap()).unwrap();
    assert_eq!(str_field(&resp, "code"), "deadline");
    assert!(u64_field(&resp, "retry_after") >= 1);
    assert!(client.at_eof(), "connection closed after deadline");
    assert!(service.edge_stats().deadline_drops.get() >= 1);
    server.shutdown();
}

#[test]
fn request_cap_recycles_the_connection() {
    let _guard = fault_guard();
    let service = service_with(EdgeLimits {
        max_requests_per_conn: 3,
        ..EdgeLimits::default()
    });
    let server = start(&service);
    let mut client = RawClient::connect(server.addr());
    for _ in 0..3 {
        let resp = client.call(r#"{"op":"collections"}"#);
        assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    }
    let resp = client.call(r#"{"op":"collections"}"#);
    assert_eq!(str_field(&resp, "code"), "overloaded");
    assert!(u64_field(&resp, "retry_after") >= 1);
    assert!(client.at_eof());

    // Reconnecting continues service (state is in the table, not the
    // connection).
    let mut again = RawClient::connect(server.addr());
    let resp = again.call(r#"{"op":"collections"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn connection_cap_sheds_with_retry_after() {
    let _guard = fault_guard();
    let service = service_with(EdgeLimits {
        max_connections: 1,
        ..EdgeLimits::default()
    });
    let server = start(&service);

    // Establish (and prove live with a round trip) the one allowed
    // connection.
    let mut held = RawClient::connect(server.addr());
    let resp = held.call(r#"{"op":"collections"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));

    // The next arrival is shed at accept time.
    let mut shed = RawClient::connect(server.addr());
    let resp = parse_json(&shed.read_line().unwrap()).unwrap();
    assert_eq!(str_field(&resp, "code"), "overloaded");
    assert!(u64_field(&resp, "retry_after") >= 1);
    assert!(shed.at_eof());

    // Freeing the held connection re-admits.
    drop(held);
    for _ in 0..100 {
        if server.live_connections() == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut admitted = RawClient::connect(server.addr());
    let resp = admitted.call(r#"{"op":"collections"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    server.shutdown();
}

#[test]
fn transient_accept_errors_are_retried_with_backoff() {
    let _guard = fault_guard();
    // The first three accepts fail (as if EMFILE/ECONNABORTED bursts);
    // the loop must log-and-retry, not die.
    faults::install_spec(&format!("seed={},server.accept=err:1:0:3", seed())).unwrap();
    let service = service_with(EdgeLimits::default());
    let server = start(&service);
    let mut client = RawClient::connect(server.addr());
    let resp = client.call(r#"{"op":"collections"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(service.edge_stats().accept_retries.get(), 3);
    faults::clear();
    server.shutdown();
}

#[test]
fn injected_panic_is_contained_quarantined_and_isolated() {
    let _guard = fault_guard();
    // Exactly one selection panics (limit 1); everything after runs clean.
    faults::install_spec(&format!("seed={},engine.select=panic:1:0:1", seed())).unwrap();
    let service = service_with(EdgeLimits::default());
    let snapshot = service.registry().get("figure1").unwrap();
    let server = start(&service);
    let mut client = RawClient::connect(server.addr());

    let resp = client.call(r#"{"op":"create","collection":"figure1"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    let id = u64_field(&resp, "session");

    // The poisoned ask: contained, coded, and the session is quarantined.
    let resp = client.call(&format!(r#"{{"op":"ask","session":{id}}}"#));
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert_eq!(str_field(&resp, "code"), "internal");
    assert!(str_field(&resp, "error").contains("quarantined"));
    assert_eq!(service.open_sessions(), 0, "offender removed");

    // The quarantined id is gone — a stale handle misses, never aliases.
    let resp = client.call(&format!(r#"{{"op":"ask","session":{id}}}"#));
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(false));
    assert!(resp.get("code").is_none(), "plain unknown-session error");

    // Counters surface in status; the shard mutex recovered (same-shard
    // sessions still work: ids advance through all 16 shards below).
    let status = client.call(r#"{"op":"status"}"#);
    assert_eq!(u64_field(&status, "panics"), 1);
    assert_eq!(u64_field(&status, "quarantined"), 1);

    // Sessions after the fault are bit-identical to the direct engine —
    // the service took a panic mid-selection and nothing was torn.
    for target in 0..7u32 {
        assert_clean_discovery(&mut client, &snapshot, SetId(target));
    }
    faults::clear();
    server.shutdown();
}

#[test]
fn seeded_io_fault_storm_never_corrupts_surviving_sessions() {
    let _guard = fault_guard();
    // A storm of socket-level faults: ~4% of reads and ~3% of writes
    // error out, killing connections at deterministic per-site indices
    // (a full figure1 discovery is ~20 I/O calls, so roughly half the
    // rounds die). Sessions on killed connections are resumable;
    // discoveries that run to completion must be bit-identical to the
    // direct engine.
    faults::install_spec(&format!(
        "seed={},server.read=err:0.04,server.write=err:0.03",
        seed()
    ))
    .unwrap();
    let service = service_with(EdgeLimits::default());
    let snapshot = service.registry().get("figure1").unwrap();
    let server = start(&service);

    // Silence panic backtraces for the storm rounds: a connection killed
    // by an injected fault surfaces as a client-side panic we catch and
    // count as an aborted round, not a failure.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut completed = 0u32;
    let mut results = Vec::new();
    for round in 0..30u32 {
        let target = SetId(round % 7);
        let mut client = RawClient::connect(server.addr());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            wire_run(&mut client, &snapshot, target)
        }));
        if let Ok((wire_asked, survivors)) = outcome {
            results.push((target, wire_asked, survivors));
            completed += 1;
        }
    }
    std::panic::set_hook(quiet);
    for (target, wire_asked, survivors) in results {
        let (ref_asked, ref_outcome) = reference_run(&snapshot, target);
        assert_eq!(ref_asked, wire_asked, "surviving session diverged");
        assert_eq!(ref_outcome, vec![target]);
        assert_eq!(survivors, 1);
    }
    assert!(
        completed > 0,
        "storm killed every single run — rates too hot"
    );

    // Disarm and prove the service is fully healthy afterwards.
    faults::clear();
    let mut client = RawClient::connect(server.addr());
    for target in 0..7u32 {
        assert_clean_discovery(&mut client, &snapshot, SetId(target));
    }
    server.shutdown();
}

#[test]
fn memory_pressure_walks_the_ladder_and_spares_established_sessions() {
    let _guard = fault_guard();
    // Arm the allocation chaos sites (DESIGN.md §13): the first cold load
    // is refused at the registry gate, the next one at the build gate —
    // one firing each, then real byte pressure takes over.
    faults::install_spec(&format!(
        "seed={},registry.load=alloc:1:0:1,snapshot.build=alloc:1:0:1",
        seed()
    ))
    .unwrap();
    let service = service_with(EdgeLimits::default());
    let registry = service.registry();
    registry.register_fixture("copyadd:20:0.5:11").unwrap();
    registry.register_fixture("copyadd:20:0.5:12").unwrap();
    let snapshot = registry.get("figure1").unwrap();
    let server = start(&service);
    let mut client = RawClient::connect(server.addr());

    // Injected pressure at the registry gate sheds the cold load with the
    // structured overloaded shape; the slot stays an unbuilt recipe.
    let resp = client.call(r#"{"op":"create","collection":"copyadd:20:0.5:11"}"#);
    assert_eq!(str_field(&resp, "code"), "overloaded");
    assert!(u64_field(&resp, "retry_after") >= 1);
    // The retry passes the registry gate and dies at the build gate.
    let resp = client.call(r#"{"op":"create","collection":"copyadd:20:0.5:11"}"#);
    assert_eq!(str_field(&resp, "code"), "overloaded");
    assert_eq!(registry.governor().sheds(), 2);

    // Both alloc faults are spent — materialize both cold fixtures, then
    // release them (closed sessions drop their leases).
    for spec in ["copyadd:20:0.5:11", "copyadd:20:0.5:12"] {
        let resp = client.call(&format!(r#"{{"op":"create","collection":"{spec}"}}"#));
        assert_eq!(
            resp.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "faults exhausted, load must succeed: {resp:?}"
        );
        let id = u64_field(&resp, "session");
        client.call(&format!(r#"{{"op":"close","session":{id}}}"#));
    }

    // Establish a figure1 session and take it mid-discovery: its lease is
    // what shields figure1 from the ladder below.
    let target = SetId(5);
    let (ref_asked, ref_outcome) = reference_run(&snapshot, target);
    let resp = client.call(r#"{"op":"create","collection":"figure1"}"#);
    let live = u64_field(&resp, "session");
    let mut asked = Vec::new();
    for _ in 0..2 {
        let resp = client.call(&format!(r#"{{"op":"ask","session":{live}}}"#));
        let name = str_field(&resp, "entity").to_string();
        let entity = snapshot.resolve_entity(&name).unwrap();
        let answer = match answer_for(&snapshot, target, entity) {
            Answer::Yes => "yes",
            Answer::No => "no",
            Answer::Unknown => "unknown",
        };
        asked.push(entity);
        client.call(&format!(
            r#"{{"op":"answer","session":{live},"entity":"{name}","answer":"{answer}"}}"#
        ));
    }

    // Starve the budget: the next create must walk the ladder in order —
    // every plan cache to its floor, then both cold copyadds unloaded
    // (figure1 is leased and survives) — and, the budget still being
    // unreachable, shed.
    registry.set_budget(1);
    let resp = client.call(r#"{"op":"create","collection":"figure1"}"#);
    assert_eq!(str_field(&resp, "code"), "overloaded");
    assert!(u64_field(&resp, "retry_after") >= 1);
    assert_eq!(registry.governor().unloads(), 2);
    let events = registry.governor().events();
    let first_unload = events
        .iter()
        .position(|e| e.starts_with("unload "))
        .unwrap();
    let shed_create = events.iter().position(|e| e == "shed create").unwrap();
    assert!(
        events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.starts_with("plan.shrink"))
            .all(|(i, _)| i < first_unload),
        "ladder order violated (shrinks after an unload): {events:?}"
    );
    assert!(
        first_unload < shed_create,
        "shed before unloads: {events:?}"
    );
    assert!(
        !events.iter().any(|e| e.starts_with("unload figure1")),
        "unloaded a leased snapshot: {events:?}"
    );
    for info in registry.list() {
        match info.name.as_str() {
            "figure1" => assert_eq!(info.state, "loaded"),
            _ => assert_eq!(info.state, "unloaded", "{}", info.name),
        }
    }

    // The established session drains to completion under standing
    // pressure, bit-identical to the direct engine run.
    loop {
        let resp = client.call(&format!(r#"{{"op":"ask","session":{live}}}"#));
        assert_eq!(
            resp.get("ok").and_then(JsonValue::as_bool),
            Some(true),
            "established session must keep serving: {resp:?}"
        );
        if resp.get("done").and_then(JsonValue::as_bool) == Some(true) {
            assert_eq!(u64_field(&resp, "candidates"), 1);
            client.call(&format!(r#"{{"op":"close","session":{live}}}"#));
            break;
        }
        let name = str_field(&resp, "entity").to_string();
        let entity = snapshot.resolve_entity(&name).unwrap();
        let answer = match answer_for(&snapshot, target, entity) {
            Answer::Yes => "yes",
            Answer::No => "no",
            Answer::Unknown => "unknown",
        };
        asked.push(entity);
        client.call(&format!(
            r#"{{"op":"answer","session":{live},"entity":"{name}","answer":"{answer}"}}"#
        ));
    }
    assert_eq!(ref_asked, asked, "pressured session diverged");
    assert_eq!(ref_outcome, vec![target]);

    // Lifting the budget restores full health — including rebuilding a
    // ladder-unloaded snapshot from its recipe.
    registry.set_budget(0);
    for target in 0..7u32 {
        assert_clean_discovery(&mut client, &snapshot, SetId(target));
    }
    let resp = client.call(r#"{"op":"create","collection":"copyadd:20:0.5:12"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    faults::clear();
    server.shutdown();
}

#[test]
fn chaos_armed_journal_replays_byte_identically() {
    let _guard = fault_guard();
    use setdisc_service::journal::{JournalMeta, ServiceJournal};
    use setdisc_service::replay::{build_service, replay_dir};

    // A pinned-seed fault spec: exactly one injected selection panic. The
    // journal's meta record carries the spec, so replay re-arms it and the
    // per-site seeded stream fires at the same dispatch ordinal — the
    // quarantine, the dead session id, and every clean exchange after it
    // must all reproduce byte-for-byte.
    let spec = format!("seed={},engine.select=panic:1:0:1", seed());
    let meta = JournalMeta {
        obs: false,
        faults: Some(spec),
        default_budget: 10_000,
        max_sessions: 100_000,
        plan_capacity: 1 << 18,
        memory: None,
        collections: vec!["fixture:figure1".into()],
    };
    let dir = std::env::temp_dir().join(format!("setdisc_chaos_journal_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Record: arm exactly what the meta claims, then drive a conversation
    // through the fault. Injected panics are expected here — silence the
    // default hook's backtraces for the duration.
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    meta.arm().unwrap();
    let mut service = build_service(&meta).unwrap();
    service.set_journal(ServiceJournal::open(&dir, &meta).unwrap());
    let resp = service.handle_line(r#"{"op":"create","collection":"figure1"}"#);
    assert!(resp.contains(r#""ok":true"#), "{resp}");
    // The one injected panic lands on the first ask and quarantines.
    let resp = service.handle_line(r#"{"op":"ask","session":1}"#);
    assert!(resp.contains("quarantined"), "{resp}");
    // A stale probe of the quarantined id, then a clean full discovery of
    // S2 = {a, d, e} on a fresh session.
    service.handle_line(r#"{"op":"ask","session":1}"#);
    let resp = service.handle_line(r#"{"op":"create","collection":"figure1"}"#);
    assert!(resp.contains(r#""session":2"#), "{resp}");
    let target = ["a", "d", "e"];
    loop {
        let resp = service.handle_line(r#"{"op":"ask","session":2}"#);
        if resp.contains(r#""done":true"#) {
            break;
        }
        let entity = resp
            .split(r#""entity":""#)
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .expect("ask carries an entity")
            .to_string();
        let answer = if target.contains(&entity.as_str()) {
            "yes"
        } else {
            "no"
        };
        service.handle_line(&format!(
            r#"{{"op":"answer","session":2,"entity":"{entity}","answer":"{answer}"}}"#
        ));
    }
    service.handle_line(r#"{"op":"status","session":2}"#);
    service.handle_line(r#"{"op":"close","session":2}"#);
    drop(service); // syncs the journal

    // Wipe the caller's fault state: replay must re-arm from the journal
    // alone and still reproduce the panic at the same ordinal.
    faults::clear();
    let report = replay_dir(&dir, true).unwrap();
    std::panic::set_hook(quiet);
    assert!(report.ok(), "{:#?}", report.diagnostics);
    assert!(report.exchanges >= 10);
    faults::clear();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn graceful_shutdown_drains_and_reports() {
    let _guard = fault_guard();
    let service = service_with(EdgeLimits {
        drain_deadline: Duration::from_millis(150),
        ..EdgeLimits::default()
    });
    let server = start(&service);

    // An idle connection parked inside its (long) read deadline cannot
    // drain; shutdown must give up at the deadline and say so.
    let _parked = RawClient::connect(server.addr());
    for _ in 0..200 {
        if server.live_connections() == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(server.live_connections(), 1, "accept never saw the client");
    assert!(!server.shutdown(), "parked connection cannot have drained");

    // A fresh server whose clients disconnect cleanly drains completely,
    // and a post-shutdown connect is refused (accept loop gone).
    let service = service_with(EdgeLimits::default());
    let server = start(&service);
    let addr = server.addr();
    let mut client = RawClient::connect(addr);
    let resp = client.call(r#"{"op":"collections"}"#);
    assert_eq!(resp.get("ok").and_then(JsonValue::as_bool), Some(true));
    drop(client);
    assert!(server.shutdown(), "clean clients drain fully");
}
