//! End-to-end service tests: many concurrent wire clients, every session's
//! question sequence and outcome asserted *bit-identical* to a direct
//! single-threaded `Session` run with the same collection, strategy and
//! initial examples.

use setdisc_core::discovery::{Answer, Session};
use setdisc_core::engine::Engine;
use setdisc_core::entity::{EntityId, SetId};
use setdisc_service::load::{Client, InProcessClient, SocketClient};
use setdisc_service::proto::{create_request, create_request_ext};
use setdisc_service::strategy::StrategySpec;
use setdisc_service::{Service, ServiceConfig, Snapshot};
use setdisc_util::report::{parse_json, JsonValue};
use std::sync::{Arc, Mutex};

/// A deterministic per-question answer plan: truthful membership in the
/// target, except the listed question indices answer Unknown.
struct Plan<'a> {
    snapshot: &'a Snapshot,
    target: SetId,
    unknown_at: &'a [usize],
}

impl Plan<'_> {
    fn answer_for(&self, entity: EntityId, index: usize) -> Answer {
        if self.unknown_at.contains(&index) {
            Answer::Unknown
        } else if self.snapshot.collection().set(self.target).contains(entity) {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

/// Reference run: the plan against a direct in-process `Session`, recording
/// the asked entity sequence and the final outcome.
fn reference_run(plan: &Plan<'_>) -> (Vec<EntityId>, Vec<SetId>) {
    let mut session = Session::new(
        plan.snapshot.collection(),
        &[],
        StrategySpec::default().build(),
    );
    let mut asked = Vec::new();
    while let Some(entity) = session.next_question() {
        let answer = plan.answer_for(entity, asked.len());
        asked.push(entity);
        session.answer(entity, answer);
    }
    (asked, session.outcome().candidates)
}

/// Wire run: the same plan through the protocol, any transport.
fn wire_run(client: &mut dyn Client, collection: &str, plan: &Plan<'_>) -> (Vec<EntityId>, usize) {
    let line = create_request(collection, &StrategySpec::default(), &[], None);
    let resp = call(client, &line);
    let id = field_u64(&resp, "session");
    let mut asked = Vec::new();
    let survivors;
    loop {
        let resp = call(client, &format!(r#"{{"op":"ask","session":{id}}}"#));
        if resp.get("done").and_then(JsonValue::as_bool) == Some(true) {
            survivors = field_u64(&resp, "candidates") as usize;
            break;
        }
        let name = resp
            .get("entity")
            .and_then(JsonValue::as_str)
            .expect("ask must name an entity")
            .to_string();
        let entity = plan.snapshot.resolve_entity(&name).expect("known entity");
        let answer = match plan.answer_for(entity, asked.len()) {
            Answer::Yes => "yes",
            Answer::No => "no",
            Answer::Unknown => "unknown",
        };
        asked.push(entity);
        call(
            client,
            &format!(r#"{{"op":"answer","session":{id},"entity":"{name}","answer":"{answer}"}}"#),
        );
    }
    call(client, &format!(r#"{{"op":"close","session":{id}}}"#));
    (asked, survivors)
}

fn call(client: &mut dyn Client, line: &str) -> JsonValue {
    let resp = client.call(line).expect("transport");
    let v = parse_json(&resp).expect("valid JSON response");
    assert_eq!(
        v.get("ok").and_then(JsonValue::as_bool),
        Some(true),
        "request {line} failed: {resp}"
    );
    v
}

fn field_u64(v: &JsonValue, key: &str) -> u64 {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .unwrap_or_else(|| panic!("missing {key}"))
}

/// Work queue shared by the client threads: (collection name, target,
/// unknown indices).
type Job = (String, SetId, Vec<usize>);

fn run_concurrently(service: &Arc<Service>, jobs: Vec<Job>, threads: usize) {
    let queue = Arc::new(Mutex::new(jobs));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(service);
            scope.spawn(move || {
                let mut client = InProcessClient {
                    service: Arc::clone(&service),
                };
                loop {
                    let job = queue.lock().unwrap().pop();
                    let Some((collection, target, unknown_at)) = job else {
                        break;
                    };
                    let snapshot = service.registry().get(&collection).unwrap();
                    let plan = Plan {
                        snapshot: &snapshot,
                        target,
                        unknown_at: &unknown_at,
                    };
                    let (ref_asked, ref_outcome) = reference_run(&plan);
                    let (wire_asked, wire_survivors) = wire_run(&mut client, &collection, &plan);
                    assert_eq!(
                        ref_asked, wire_asked,
                        "question sequence diverged for target {target} of {collection}"
                    );
                    assert_eq!(
                        ref_outcome.len(),
                        wire_survivors,
                        "outcome diverged for target {target} of {collection}"
                    );
                    if ref_outcome.len() == 1 {
                        assert_eq!(ref_outcome[0], target, "wrong set discovered");
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_wire_sessions_match_direct_sessions_bit_for_bit() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.registry().install_fixture("figure1").unwrap();
    service
        .registry()
        .install_fixture("copyadd:60:0.7:11")
        .unwrap();

    let mut jobs: Vec<Job> = Vec::new();
    // Every target of figure1, truthful.
    for t in 0..7 {
        jobs.push(("figure1".into(), SetId(t), vec![]));
    }
    // Every target of the synthetic collection, truthful.
    let n = service
        .registry()
        .get("copyadd:60:0.7:11")
        .unwrap()
        .collection()
        .len();
    for t in 0..n {
        jobs.push(("copyadd:60:0.7:11".into(), SetId(t as u32), vec![]));
    }
    // A few targets with "don't know" replies injected at fixed indices —
    // the §6 exclusion path must also be wire-identical.
    for t in 0..5 {
        jobs.push(("copyadd:60:0.7:11".into(), SetId(t), vec![1]));
        jobs.push(("figure1".into(), SetId(t % 7), vec![0, 2]));
    }

    run_concurrently(&service, jobs, 16);
    assert_eq!(service.open_sessions(), 0, "every session closed");
}

#[test]
fn parallel_lookahead_wire_sessions_match_single_threaded_direct_sessions() {
    // The PR's determinism claim at the service layer: a service whose k-LP
    // engines run the *parallel* selection loop (forced on via the
    // deployment tuning, with the dispatch gate wide open so every node
    // fans out) must produce wire transcripts bit-identical to a direct
    // Session running the *forced single-threaded* strategy.
    use setdisc_core::cost::AvgDepth;
    use setdisc_core::lookahead::KLp;
    use setdisc_service::strategy::LookaheadTuning;
    use setdisc_service::ServiceConfig;

    let service = Arc::new(Service::new(ServiceConfig {
        lookahead: LookaheadTuning {
            threads: 4,
            parallel_gate: Some((1, 0)),
        },
        ..ServiceConfig::default()
    }));
    let fixture = "copyadd:150:0.9:5";
    service.registry().install_fixture(fixture).unwrap();
    let snapshot = service.registry().get(fixture).unwrap();
    let n = snapshot.collection().len();

    // Direct reference with explicit threads=1 (not the default, which may
    // be parallel-capable on a multicore host).
    let sequential_reference = |plan: &Plan<'_>| -> (Vec<EntityId>, Vec<SetId>) {
        let strategy: Box<dyn setdisc_core::strategy::SelectionStrategy + Send> =
            Box::new(KLp::<AvgDepth>::new(2).with_threads(1));
        let mut session = Session::new(plan.snapshot.collection(), &[], strategy);
        let mut asked = Vec::new();
        while let Some(entity) = session.next_question() {
            let answer = plan.answer_for(entity, asked.len());
            asked.push(entity);
            session.answer(entity, answer);
        }
        (asked, session.outcome().candidates)
    };

    std::thread::scope(|scope| {
        // Every 8th target (plus an unknown-injection case) across 8
        // concurrent clients keeps the case fast while exercising real
        // interleaving.
        for t in (0..n as u32).step_by(8) {
            let service = Arc::clone(&service);
            let snapshot = Arc::clone(&snapshot);
            scope.spawn(move || {
                let mut client = InProcessClient { service };
                for unknown_at in [vec![], vec![1]] {
                    let plan = Plan {
                        snapshot: &snapshot,
                        target: SetId(t),
                        unknown_at: &unknown_at,
                    };
                    let (ref_asked, ref_outcome) = sequential_reference(&plan);
                    let (wire_asked, wire_survivors) = wire_run(&mut client, fixture, &plan);
                    assert_eq!(
                        ref_asked, wire_asked,
                        "parallel engine diverged for target {t} (unknowns {unknown_at:?})"
                    );
                    assert_eq!(
                        ref_outcome.len(),
                        wire_survivors,
                        "outcome size, target {t}"
                    );
                }
            });
        }
    });
}

#[test]
fn shared_plan_cache_sessions_match_cache_off_direct_sessions() {
    // The PR-5 tentpole at the service layer: every wire session shares the
    // snapshot's plan cache (on by default), including repeat visits to the
    // same targets (cache-warm paths) and don't-know injections (which must
    // bypass the cache). The reference is a *direct* Session with no cache
    // attached, so any cache-induced drift in entity choice or outcome
    // fails the bit-identity assertions inside `run_concurrently`.
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let fixture = "copyadd:60:0.7:11";
    service.registry().install_fixture(fixture).unwrap();
    let n = service.registry().get(fixture).unwrap().collection().len() as u32;

    let mut jobs: Vec<Job> = Vec::new();
    // Two truthful rounds over every target: round one fills the plan,
    // round two is served from it (the jobs interleave freely across 16
    // threads, so "rounds" really means every prefix is visited twice).
    for round in 0..2 {
        for t in 0..n {
            jobs.push((fixture.into(), SetId(t), vec![]));
        }
        // Don't-know paths ride along in both rounds.
        for t in 0..6 {
            jobs.push((fixture.into(), SetId(t), vec![round, 2]));
        }
    }
    run_concurrently(&service, jobs, 16);
    assert_eq!(service.open_sessions(), 0);

    let cache = service
        .registry()
        .get(fixture)
        .unwrap()
        .plan_cache()
        .expect("default config installs a plan cache on first create");
    let stats = cache.stats();
    assert!(stats.nodes > 0, "sessions recorded plan nodes: {stats:?}");
    assert!(
        stats.hits > 0,
        "repeat targets must be served from the shared plan: {stats:?}"
    );
}

/// §6/§7 job: a session that either lies (flagged unconfident) at a fixed
/// question index with `recover:true`, or asks multiple-choice screens of
/// a fixed width, verified bit-identical to a direct `Engine` run.
enum ModeJob {
    Noisy { target: SetId, lie_at: usize },
    Mcq { target: SetId, width: usize },
}

/// Direct reference for a lying session: a backtracking engine answering
/// truthfully except at `lie_at` (flipped, unconfident). Returns the asked
/// entity sequence, surviving candidates, and the backtrack count.
fn noisy_reference(
    snapshot: &Snapshot,
    target: SetId,
    lie_at: usize,
) -> (Vec<EntityId>, Vec<SetId>, u64) {
    let target_set = snapshot.collection().set(target);
    let mut engine = Engine::new(snapshot.collection(), &[], StrategySpec::default().build());
    engine.set_backtracking(true);
    let mut asked = Vec::new();
    while let Some(entity) = engine.next_question() {
        let truthful = target_set.contains(entity);
        let (member, confident) = if asked.len() == lie_at {
            (!truthful, false)
        } else {
            (truthful, true)
        };
        let answer = if member { Answer::Yes } else { Answer::No };
        asked.push(entity);
        engine.answer_full(entity, answer, confident);
    }
    let backtracks = engine.backtracks() as u64;
    (asked, engine.outcome().candidates, backtracks)
}

/// Direct reference for a multiple-choice session: truthful first-member
/// picks over width-`width` screens. Returns the flattened screen entity
/// sequence and the surviving candidates.
fn mcq_reference(snapshot: &Snapshot, target: SetId, width: usize) -> (Vec<EntityId>, Vec<SetId>) {
    let target_set = snapshot.collection().set(target);
    let mut engine = Engine::new(snapshot.collection(), &[], StrategySpec::default().build());
    let mut asked = Vec::new();
    while !engine.is_resolved() {
        let batch = engine.next_questions(width);
        if batch.is_empty() {
            break;
        }
        asked.extend(batch.iter().copied());
        let choice = batch
            .iter()
            .position(|&e| target_set.contains(e))
            .unwrap_or(batch.len());
        engine.answer_choice(&batch, choice, true);
    }
    (asked, engine.outcome().candidates)
}

/// Wire run of a lying session (`recover:true`); also asserts the final
/// `status` reports the reference's backtrack count.
fn wire_noisy_run(
    client: &mut dyn Client,
    collection: &str,
    snapshot: &Snapshot,
    target: SetId,
    lie_at: usize,
    expected_backtracks: u64,
) -> (Vec<EntityId>, usize) {
    let target_set = snapshot.collection().set(target);
    let line = create_request_ext(collection, &StrategySpec::default(), &[], None, None, true);
    let id = field_u64(&call(client, &line), "session");
    let mut asked = Vec::new();
    let survivors;
    loop {
        let resp = call(client, &format!(r#"{{"op":"ask","session":{id}}}"#));
        if resp.get("done").and_then(JsonValue::as_bool) == Some(true) {
            survivors = field_u64(&resp, "candidates") as usize;
            break;
        }
        let name = resp
            .get("entity")
            .and_then(JsonValue::as_str)
            .expect("ask must name an entity")
            .to_string();
        let entity = snapshot.resolve_entity(&name).expect("known entity");
        let truthful = target_set.contains(entity);
        let (member, confident) = if asked.len() == lie_at {
            (!truthful, false)
        } else {
            (truthful, true)
        };
        asked.push(entity);
        let answer = if member { "yes" } else { "no" };
        let line = if confident {
            format!(r#"{{"op":"answer","session":{id},"entity":"{name}","answer":"{answer}"}}"#)
        } else {
            format!(
                r#"{{"op":"answer","session":{id},"entity":"{name}","answer":"{answer}","confident":false}}"#
            )
        };
        call(client, &line);
    }
    let status = call(client, &format!(r#"{{"op":"status","session":{id}}}"#));
    let wire_backtracks = status
        .get("backtracks")
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    assert_eq!(
        wire_backtracks, expected_backtracks,
        "backtrack count diverged for target {target} (lie at {lie_at})"
    );
    call(client, &format!(r#"{{"op":"close","session":{id}}}"#));
    (asked, survivors)
}

/// Wire run of a multiple-choice session: truthful picks over `choices`
/// screens, flattening every screen into the asked sequence.
fn wire_mcq_run(
    client: &mut dyn Client,
    collection: &str,
    snapshot: &Snapshot,
    target: SetId,
    width: usize,
) -> (Vec<EntityId>, usize) {
    let target_set = snapshot.collection().set(target);
    let line = create_request(collection, &StrategySpec::default(), &[], None);
    let id = field_u64(&call(client, &line), "session");
    let mut asked = Vec::new();
    let survivors;
    loop {
        let resp = call(
            client,
            &format!(r#"{{"op":"ask","session":{id},"choices":{width}}}"#),
        );
        if resp.get("done").and_then(JsonValue::as_bool) == Some(true) {
            survivors = field_u64(&resp, "candidates") as usize;
            break;
        }
        let batch: Vec<EntityId> = match resp.get("entities").and_then(JsonValue::as_array) {
            Some(items) => items
                .iter()
                .map(|v| {
                    let name = v.as_str().expect("entity name");
                    snapshot.resolve_entity(name).expect("known entity")
                })
                .collect(),
            None => {
                let name = resp
                    .get("entity")
                    .and_then(JsonValue::as_str)
                    .expect("ask must name an entity");
                vec![snapshot.resolve_entity(name).expect("known entity")]
            }
        };
        asked.extend(batch.iter().copied());
        let choice = batch
            .iter()
            .position(|&e| target_set.contains(e))
            .unwrap_or(batch.len());
        call(
            client,
            &format!(r#"{{"op":"answer","session":{id},"choice":{choice}}}"#),
        );
    }
    call(client, &format!(r#"{{"op":"close","session":{id}}}"#));
    (asked, survivors)
}

#[test]
fn noisy_and_multiple_choice_wire_sessions_match_direct_engine_runs() {
    // §6 + §7 over the wire, concurrently: 16 threads drain a queue mixing
    // recover:true sessions with an unconfident lie at varying depths and
    // multiple-choice sessions of varying widths. Every session's asked
    // sequence, survivor count, and (for noisy jobs) backtrack count must
    // be bit-identical to a direct single-threaded Engine run.
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.registry().install_fixture("figure1").unwrap();
    service
        .registry()
        .install_fixture("copyadd:60:0.7:11")
        .unwrap();

    let mut jobs: Vec<(String, ModeJob)> = Vec::new();
    for t in 0..7u32 {
        jobs.push((
            "figure1".into(),
            ModeJob::Noisy {
                target: SetId(t),
                lie_at: (t as usize) % 3,
            },
        ));
        jobs.push((
            "figure1".into(),
            ModeJob::Mcq {
                target: SetId(t),
                width: 2 + (t as usize) % 3,
            },
        ));
    }
    let n = service
        .registry()
        .get("copyadd:60:0.7:11")
        .unwrap()
        .collection()
        .len() as u32;
    for t in (0..n).step_by(4) {
        jobs.push((
            "copyadd:60:0.7:11".into(),
            ModeJob::Noisy {
                target: SetId(t),
                lie_at: (t as usize) % 4,
            },
        ));
        jobs.push((
            "copyadd:60:0.7:11".into(),
            ModeJob::Mcq {
                target: SetId(t),
                width: 2 + (t as usize) % 3,
            },
        ));
    }

    let queue = Arc::new(Mutex::new(jobs));
    std::thread::scope(|scope| {
        for _ in 0..16 {
            let queue = Arc::clone(&queue);
            let service = Arc::clone(&service);
            scope.spawn(move || {
                let mut client = InProcessClient {
                    service: Arc::clone(&service),
                };
                loop {
                    let job = queue.lock().unwrap().pop();
                    let Some((collection, mode)) = job else { break };
                    let snapshot = service.registry().get(&collection).unwrap();
                    match mode {
                        ModeJob::Noisy { target, lie_at } => {
                            let (ref_asked, ref_outcome, ref_backtracks) =
                                noisy_reference(&snapshot, target, lie_at);
                            let (wire_asked, wire_survivors) = wire_noisy_run(
                                &mut client,
                                &collection,
                                &snapshot,
                                target,
                                lie_at,
                                ref_backtracks,
                            );
                            assert_eq!(
                                ref_asked, wire_asked,
                                "noisy sequence diverged for target {target} of {collection}"
                            );
                            assert_eq!(ref_outcome.len(), wire_survivors);
                        }
                        ModeJob::Mcq { target, width } => {
                            let (ref_asked, ref_outcome) = mcq_reference(&snapshot, target, width);
                            let (wire_asked, wire_survivors) =
                                wire_mcq_run(&mut client, &collection, &snapshot, target, width);
                            assert_eq!(
                                ref_asked, wire_asked,
                                "screen sequence diverged for target {target} of {collection}"
                            );
                            assert_eq!(ref_outcome.len(), wire_survivors);
                            if ref_outcome.len() == 1 {
                                assert_eq!(ref_outcome[0], target, "wrong set discovered");
                            }
                        }
                    }
                }
            });
        }
    });
    assert_eq!(service.open_sessions(), 0, "every session closed");
}

#[test]
fn socket_sessions_match_direct_sessions() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.registry().install_fixture("figure1").unwrap();
    let (addr, _handle) =
        setdisc_service::server::spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let snapshot = service.registry().get("figure1").unwrap();

    std::thread::scope(|scope| {
        for t in 0..7u32 {
            let snapshot = Arc::clone(&snapshot);
            scope.spawn(move || {
                let mut client = SocketClient::connect(addr).unwrap();
                let plan = Plan {
                    snapshot: &snapshot,
                    target: SetId(t),
                    unknown_at: &[],
                };
                let (ref_asked, ref_outcome) = reference_run(&plan);
                let (wire_asked, wire_survivors) = wire_run(&mut client, "figure1", &plan);
                assert_eq!(ref_asked, wire_asked);
                assert_eq!(ref_outcome, vec![SetId(t)]);
                assert_eq!(wire_survivors, 1);
            });
        }
    });
}

#[test]
fn sessions_interleave_without_cross_talk() {
    // Two sessions over the same snapshot advanced in lock-step from one
    // client: answers to one must not leak into the other.
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.registry().install_fixture("figure1").unwrap();
    let snapshot = service.registry().get("figure1").unwrap();
    let mut client = InProcessClient {
        service: Arc::clone(&service),
    };

    let plans = [
        Plan {
            snapshot: &snapshot,
            target: SetId(0),
            unknown_at: &[],
        },
        Plan {
            snapshot: &snapshot,
            target: SetId(5),
            unknown_at: &[],
        },
    ];
    let line = create_request("figure1", &StrategySpec::default(), &[], None);
    let ids = [
        field_u64(&call(&mut client, &line), "session"),
        field_u64(&call(&mut client, &line), "session"),
    ];
    let mut asked: [Vec<EntityId>; 2] = [Vec::new(), Vec::new()];
    let mut done = [false, false];
    while !(done[0] && done[1]) {
        for s in 0..2 {
            if done[s] {
                continue;
            }
            let id = ids[s];
            let resp = call(&mut client, &format!(r#"{{"op":"ask","session":{id}}}"#));
            if resp.get("done").and_then(JsonValue::as_bool) == Some(true) {
                let label = resp.get("discovered").and_then(JsonValue::as_str).unwrap();
                assert_eq!(label, snapshot.set_label(plans[s].target));
                done[s] = true;
                continue;
            }
            let name = resp
                .get("entity")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string();
            let entity = snapshot.resolve_entity(&name).unwrap();
            let answer = match plans[s].answer_for(entity, asked[s].len()) {
                Answer::Yes => "yes",
                _ => "no",
            };
            asked[s].push(entity);
            call(
                &mut client,
                &format!(
                    r#"{{"op":"answer","session":{id},"entity":"{name}","answer":"{answer}"}}"#
                ),
            );
        }
    }
    for (s, plan) in plans.iter().enumerate() {
        let (ref_asked, _) = reference_run(plan);
        assert_eq!(
            asked[s], ref_asked,
            "session {s} diverged under interleaving"
        );
    }
}

#[test]
fn session_traces_replay_bit_identical_to_a_direct_engine() {
    // The telemetry tentpole's correctness claim for traces: the ring is a
    // faithful transcript. Replaying a session's trace — asks checked
    // against a fresh direct engine's selections, answers applied as
    // recorded — must reproduce the exact question sequence, the exact
    // per-step candidate counts, and the exact outcome.
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service.registry().install_fixture("figure1").unwrap();
    let snapshot = service.registry().get("figure1").unwrap();
    let mut client = InProcessClient {
        service: Arc::clone(&service),
    };

    for t in 0..7u32 {
        let target = SetId(t);
        let plan = Plan {
            snapshot: &snapshot,
            target,
            unknown_at: &[],
        };
        // Drive a truthful wire session, retrieving the trace before close.
        let line = create_request("figure1", &StrategySpec::default(), &[], None);
        let resp = call(&mut client, &line);
        let id = field_u64(&resp, "session");
        let mut asked = 0usize;
        let survivors;
        loop {
            let resp = call(&mut client, &format!(r#"{{"op":"ask","session":{id}}}"#));
            if resp.get("done").and_then(JsonValue::as_bool) == Some(true) {
                survivors = field_u64(&resp, "candidates");
                break;
            }
            let name = resp
                .get("entity")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string();
            let entity = snapshot.resolve_entity(&name).unwrap();
            let answer = match plan.answer_for(entity, asked) {
                Answer::Yes => "yes",
                _ => "no",
            };
            asked += 1;
            call(
                &mut client,
                &format!(
                    r#"{{"op":"answer","session":{id},"entity":"{name}","answer":"{answer}"}}"#
                ),
            );
        }
        let trace = call(&mut client, &format!(r#"{{"op":"trace","session":{id}}}"#));
        call(&mut client, &format!(r#"{{"op":"close","session":{id}}}"#));

        assert_eq!(field_u64(&trace, "dropped"), 0, "short session never drops");
        let events = trace.get("events").and_then(JsonValue::as_array).unwrap();
        assert_eq!(events.len(), 2 * asked, "one ask + one answer per question");

        // Replay against a cache-free direct engine.
        let mut engine = Engine::new(snapshot.collection(), &[], StrategySpec::default().build());
        for ev in events {
            let name = ev.get("entity").and_then(JsonValue::as_str).unwrap();
            let entity = snapshot.resolve_entity(name).unwrap();
            match ev.get("kind").and_then(JsonValue::as_str).unwrap() {
                "ask" => {
                    assert_eq!(
                        field_u64(ev, "candidates"),
                        engine.candidate_count() as u64,
                        "view size at selection, target {t}"
                    );
                    let next = engine
                        .next_question()
                        .expect("direct engine has a question");
                    assert_eq!(next, entity, "traced ask diverged, target {t}");
                }
                "answer" => {
                    assert_eq!(field_u64(ev, "before"), engine.candidate_count() as u64);
                    let answer = match ev.get("answer").and_then(JsonValue::as_str).unwrap() {
                        "yes" => Answer::Yes,
                        "no" => Answer::No,
                        _ => Answer::Unknown,
                    };
                    engine.answer(entity, answer);
                    assert_eq!(
                        field_u64(ev, "after"),
                        engine.candidate_count() as u64,
                        "candidate delta, target {t}"
                    );
                    assert_eq!(field_u64(ev, "backtracks"), 0, "truthful run");
                }
                other => panic!("unknown trace kind {other:?}"),
            }
        }
        let outcome = engine.outcome();
        assert_eq!(
            outcome.candidates.len() as u64,
            survivors,
            "replayed outcome size, target {t}"
        );
        if let Some(discovered) = outcome.discovered() {
            assert_eq!(discovered, target, "replayed to the wrong set");
        }
    }
    assert_eq!(service.open_sessions(), 0, "every session closed");
}
