//! Memory-governance invariants of the service (DESIGN.md §13), driven
//! through the real wire dispatcher under randomized create/ask/close
//! churn with a deliberately starved byte budget: the degradation ladder
//! may shrink plan caches, unload cold snapshots, and shed new creates —
//! but it must never unload a snapshot with live sessions, and every
//! session the service admitted must keep serving until closed.

use proptest::prelude::*;
use setdisc_service::{Service, ServiceConfig};
use setdisc_util::report::{parse_json, JsonValue};

fn call(service: &Service, line: &str) -> JsonValue {
    parse_json(&service.handle_line(line)).unwrap()
}

fn ok(resp: &JsonValue) -> bool {
    resp.get("ok").and_then(JsonValue::as_bool) == Some(true)
}

/// The three collections under churn: one eager, two lazy recipes.
const NAMES: [&str; 3] = ["figure1", "copyadd:6:0.5:3", "copyadd:8:0.5:4"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn ladder_never_unloads_a_snapshot_with_live_sessions(
        raw_ops in prop::collection::vec(0u64..1_000_000, 1..100usize),
        budget_kb in 1usize..96,
    ) {
        let service = Service::new(ServiceConfig {
            memory: Some(budget_kb * 1024),
            ..ServiceConfig::default()
        });
        service.registry().install_fixture(NAMES[0]).unwrap();
        service.registry().register_fixture(NAMES[1]).unwrap();
        service.registry().register_fixture(NAMES[2]).unwrap();

        let mut open: Vec<(u64, &str)> = Vec::new();
        for raw in raw_ops {
            let x = (raw / 16) as usize;
            match raw % 16 {
                // Creates dominate, spread across all three collections;
                // a governed refusal must carry the structured shape.
                0..=5 => {
                    let name = NAMES[x % NAMES.len()];
                    let resp = call(
                        &service,
                        &format!(r#"{{"op":"create","collection":"{name}"}}"#),
                    );
                    if ok(&resp) {
                        let id = resp
                            .get("session")
                            .and_then(JsonValue::as_u64)
                            .expect("session id");
                        open.push((id, name));
                    } else {
                        prop_assert_eq!(
                            resp.get("code").and_then(JsonValue::as_str),
                            Some("overloaded"),
                            "governed refusal must be coded: {:?}",
                            resp
                        );
                    }
                }
                // Asks on an arbitrary open session: an admitted session
                // must keep serving no matter what the ladder did since.
                6..=10 => {
                    if let Some(&(id, _)) = open.get(x % open.len().max(1)) {
                        let resp =
                            call(&service, &format!(r#"{{"op":"ask","session":{id}}}"#));
                        prop_assert!(ok(&resp), "established session refused: {:?}", resp);
                    }
                }
                // Closes release the lease, making the snapshot fair game.
                _ => {
                    if !open.is_empty() {
                        let (id, _) = open.remove(x % open.len());
                        call(&service, &format!(r#"{{"op":"close","session":{id}}}"#));
                    }
                }
            }
            // The core invariant, after every single operation.
            for info in service.registry().list() {
                if info.live_sessions > 0 {
                    prop_assert_eq!(
                        info.state,
                        "loaded",
                        "snapshot {} has {} live sessions but was unloaded",
                        info.name,
                        info.live_sessions
                    );
                }
            }
        }
        // Leases drain exactly with the table: closing everything leaves
        // zero live sessions on every slot.
        for (id, _) in open.drain(..) {
            call(&service, &format!(r#"{{"op":"close","session":{id}}}"#));
        }
        for info in service.registry().list() {
            prop_assert_eq!(info.live_sessions, 0, "leaked lease on {}", info.name);
        }
    }
}
