//! Golden-transcript tests: each committed `.in` request script must
//! produce exactly its `.golden`, line for line. The same file pairs are
//! replayed against the real `serve` binary (stdio transport) by `ci.sh`;
//! these tests cover the dispatcher in-process so plain `cargo test`
//! catches protocol drift too.
//!
//! `wire_smoke` is the pre-§6/§7 transcript — it must stay byte-identical
//! with every session-mode extension compiled in (all new wire fields are
//! strictly additive). `wire_noisy` pins the extensions themselves:
//! `recover:true` backtracking, per-set priors (weighted strategy labels),
//! multiple-choice screens, and their validation errors.

use setdisc_service::{Service, ServiceConfig};

fn replay(input: &str, golden: &str, pair: &str) {
    replay_with(ServiceConfig::default(), input, golden, pair);
}

fn replay_with(config: ServiceConfig, input: &str, golden: &str, pair: &str) {
    let service = Service::new(config);
    service.registry().install_fixture("figure1").unwrap();
    let mut produced = String::new();
    for line in input.lines() {
        if line.trim().is_empty() {
            continue;
        }
        produced.push_str(&service.handle_line(line));
        produced.push('\n');
    }
    assert_eq!(
        produced, golden,
        "wire protocol behavior drifted from tests/{pair}.golden — \
         if the change is intentional, regenerate the golden file with\n  \
         cargo run -p setdisc-service --bin serve -- --stdio --fixture figure1 \
         < crates/service/tests/{pair}.in > crates/service/tests/{pair}.golden"
    );
}

#[test]
fn wire_protocol_matches_committed_golden_transcript() {
    replay(
        include_str!("wire_smoke.in"),
        include_str!("wire_smoke.golden"),
        "wire_smoke",
    );
}

#[test]
fn session_mode_extensions_match_committed_noisy_transcript() {
    replay(
        include_str!("wire_noisy.in"),
        include_str!("wire_noisy.golden"),
        "wire_noisy",
    );
}

/// With the memory governor armed at a generous budget, both transcripts
/// must stay byte-identical: governance only changes behavior under
/// pressure, never the happy-path wire (DESIGN.md §13).
#[test]
fn governed_service_replays_both_goldens_byte_identical() {
    let config = ServiceConfig {
        memory: Some(512 * 1024 * 1024),
        ..ServiceConfig::default()
    };
    replay_with(
        config.clone(),
        include_str!("wire_smoke.in"),
        include_str!("wire_smoke.golden"),
        "wire_smoke",
    );
    replay_with(
        config,
        include_str!("wire_noisy.in"),
        include_str!("wire_noisy.golden"),
        "wire_noisy",
    );
}
