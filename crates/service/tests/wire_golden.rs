//! Golden-transcript test: the committed `wire_smoke.in` request script
//! must produce exactly `wire_smoke.golden`, line for line. The same pair
//! of files is replayed against the real `serve` binary (stdio transport)
//! by `ci.sh`; this test covers the dispatcher in-process so plain
//! `cargo test` catches protocol drift too.

use setdisc_service::{Service, ServiceConfig};

const INPUT: &str = include_str!("wire_smoke.in");
const GOLDEN: &str = include_str!("wire_smoke.golden");

#[test]
fn wire_protocol_matches_committed_golden_transcript() {
    let service = Service::new(ServiceConfig::default());
    service.registry().install_fixture("figure1").unwrap();
    let mut produced = String::new();
    for line in INPUT.lines() {
        if line.trim().is_empty() {
            continue;
        }
        produced.push_str(&service.handle_line(line));
        produced.push('\n');
    }
    assert_eq!(
        produced, GOLDEN,
        "wire protocol behavior drifted from tests/wire_smoke.golden — \
         if the change is intentional, regenerate the golden file with\n  \
         cargo run -p setdisc-service --bin serve -- --stdio --fixture figure1 \
         < crates/service/tests/wire_smoke.in > crates/service/tests/wire_smoke.golden"
    );
}
