//! A concurrent multi-session discovery service over shared collection
//! snapshots.
//!
//! The paper's Algorithm 2 is inherently *online* — a user answers
//! membership questions one at a time, with arbitrary think time between
//! them. This crate hosts many such conversations at once:
//!
//! * [`snapshot`] — a [`snapshot::Registry`] of named, immutable
//!   [`snapshot::Snapshot`]s (collection + entity/set names behind an
//!   `Arc`), loaded from the `setdisc_core::io` text format or generated
//!   from the `setdisc-synth` fixtures. Every session clones an `Arc`, so a
//!   thousand sessions over one collection share one inverted index — and
//!   one `setdisc_plan::PlanCache`: sessions with deterministic strategies
//!   read and extend a shared question plan, so hot answer paths cost a
//!   hash probe instead of a lookahead search (bit-identical either way;
//!   see `setdisc-plan`). [`service::ServiceConfig`] sizes the cache and
//!   names the persist path; the `serve` binary's `--plan-cache` boots
//!   warm from a precomputed file.
//! * [`strategy`] — [`strategy::StrategySpec`], the parse/build bridge from
//!   wire-level strategy descriptions to boxed
//!   [`setdisc_core::strategy::SelectionStrategy`] values. The `discover`
//!   CLI uses the same spec, so terminal and service sessions are
//!   constructed by one code path.
//! * [`table`] — the [`table::SessionTable`]: a sharded map of live
//!   [`setdisc_core::engine::OwnedSession`]s with never-reused ids, question
//!   budgets, and idle eviction.
//! * [`proto`] — the line-delimited JSON wire protocol
//!   (`create` / `ask` / `answer` / `status` / `close` / `collections`),
//!   written with [`setdisc_util::report::JsonObject`] and read with
//!   [`setdisc_util::report::parse_json`].
//! * [`service`] — [`service::Service`], the transport-free request
//!   dispatcher tying the three together (`&Service` is `Sync`; call it
//!   from any number of threads).
//! * [`server`] — TCP and stdio transports for the `serve` binary.
//! * [`journal`] — the crash-tolerant session journal: every exchange
//!   [`service::Service::handle_line`] processes, appended to a rotating
//!   fsync-batched directory (`serve --journal DIR`), paired with
//! * [`replay`] — deterministic re-driving of a journal through a fresh
//!   in-process service, byte-diffing every response (the `replay`
//!   binary).
//! * [`load`] — the load harness: N simulated clients replayed against an
//!   in-process service or a real socket, reporting sessions/sec and
//!   p50/p99 per-question latency (the `bench_service` target emits
//!   `BENCH_service.json` from it).
//!
//! Because sessions are driven through the sans-IO engine, a conversation
//! over the wire asks *bit-identical* question sequences to an in-process
//! [`setdisc_core::discovery::Session`] with the same collection, strategy,
//! and initial examples — asserted end-to-end by this crate's tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod load;
pub mod proto;
pub mod replay;
pub mod server;
pub mod service;
pub mod snapshot;
pub mod strategy;
pub mod table;

pub use service::{Service, ServiceConfig};
pub use snapshot::{MemoryGovernor, Registry, Snapshot, SnapshotHandle, SnapshotInfo};
pub use strategy::StrategySpec;
