//! The session table: live discovery sessions behind sharded locks.
//!
//! Sessions are [`setdisc_core::engine::OwnedSession`]s over
//! [`SnapshotHandle`]s, so an entry is `'static` and `Send` and any worker
//! thread can resume any session. Ids are assigned from a global counter
//! and never reused (a stale id can only miss, never alias a newer
//! session); the id's low bits select the shard, so concurrent traffic on
//! different sessions contends only 1/`SHARDS` of the time. Every
//! successful access refreshes the entry's idle clock; [`SessionTable::
//! evict_idle`] sweeps entries whose clock exceeded the configured
//! timeout.

use crate::snapshot::{Snapshot, SnapshotHandle, SnapshotLease};
use crate::strategy::BoxedStrategy;
use setdisc_core::engine::Engine;
use setdisc_core::entity::EntityId;
use setdisc_util::FxHashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Locks a shard, recovering from poisoning. A panic inside a session
/// closure (a strategy bug, or an injected `engine.*` fault) poisons the
/// shard mutex; the map structure itself is never mid-mutation at that
/// point (the closure only holds `&mut SessionEntry`), so the lock is safe
/// to recover — only the *offending entry* may hold torn engine state,
/// and the service's panic containment removes exactly that entry
/// immediately after. Without recovery, one panic would wedge 1/16th of
/// all sessions forever.
fn lock_shard(
    shard: &Mutex<FxHashMap<u64, SessionEntry>>,
) -> MutexGuard<'_, FxHashMap<u64, SessionEntry>> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// The engine type the table stores: owned snapshot handle, boxed strategy.
pub type ServiceEngine = Engine<SnapshotHandle, BoxedStrategy>;

/// Per-session trace ring capacity. Past it the oldest events drop
/// (oldest-first); the drop count is reported with the ring so clients can
/// detect truncation.
pub const TRACE_CAPACITY: usize = 256;

/// Process-wide count of trace events dropped by the capacity bound,
/// across every ring that ever existed. A per-session `dropped` figure
/// dies with the session (close/evict); this survives, so scrapers can
/// alarm on truncation even when sessions churn.
static TRACE_DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Trace events dropped process-wide (all sessions, living and closed).
pub fn trace_dropped_total() -> u64 {
    TRACE_DROPPED_TOTAL.load(Ordering::Relaxed)
}

/// One structured event in a session's question trace.
#[derive(Clone, Debug)]
pub enum TraceStep {
    /// A fresh selection ran (re-asks of an outstanding question return it
    /// verbatim and are not re-recorded — selection is what costs and what
    /// the paper's Table 4 counts).
    Ask {
        /// Entity token selected (the first of the batch in §7 mode).
        entity: String,
        /// Candidate-set size at selection time.
        candidates: u64,
        /// Wall-clock selection time in µs (measured always — the ring is
        /// per-session state, not gated on `SETDISC_OBS`).
        select_us: u64,
        /// Table-4 informative count (0 when the selection was served from
        /// the plan cache or the strategy does not track it).
        informative: u32,
        /// Table-4 evaluated-after-pruning count (0 as above).
        evaluated: u32,
    },
    /// One answer assertion as applied to the engine (a §7 choice expands
    /// into its implied assertions, one event each, sharing the
    /// batch-level before/after counts).
    Answer {
        /// Entity token the assertion concerns.
        entity: String,
        /// The reply as recorded in the engine history (`yes`/`no`/
        /// `unknown`).
        answer: &'static str,
        /// Confidence flag as given on the wire.
        confident: bool,
        /// Candidates before the answer op.
        before: u64,
        /// Candidates after it.
        after: u64,
        /// Cumulative §6 backtracks after the op.
        backtracks: u64,
    },
    /// A provenance snapshot for an explain-armed selection: the compact
    /// why-this-question record (full detail lives in the `explain` op's
    /// response; the ring keeps only what fits a post-mortem).
    Explain {
        /// Entity token selected.
        entity: String,
        /// Candidate-set size at selection time.
        candidates: u64,
        /// Plan-cache disposition name (`hit_file`/`hit_online`/`miss`/
        /// `bypassed`/`unattached`).
        plan: &'static str,
        /// The selected split's Table-4 bound (0 on plan hits).
        bound: u64,
        /// Counting kernel the dispatch heuristic chose (`postings` or
        /// `elements`).
        kernel: &'static str,
        /// Measured wall-clock of one counting pass in ns.
        count_ns: u64,
    },
}

/// A bounded ring of [`TraceStep`]s with monotone sequence numbers, so a
/// truncated trace still shows *where* it was truncated.
#[derive(Debug, Default)]
pub struct TraceRing {
    events: std::collections::VecDeque<(u64, TraceStep)>,
    next: u64,
}

impl TraceRing {
    /// Appends one event, dropping the oldest at capacity.
    pub fn push(&mut self, step: TraceStep) {
        if self.events.len() == TRACE_CAPACITY {
            self.events.pop_front();
            TRACE_DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
        }
        self.events.push_back((self.next, step));
        self.next += 1;
    }

    /// The retained events, oldest first, with their sequence numbers.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TraceStep)> {
        self.events.iter()
    }

    /// Events evicted by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.next - self.events.len() as u64
    }
}

/// One live session and its service-level bookkeeping.
pub struct SessionEntry {
    /// The discovery state machine.
    pub engine: ServiceEngine,
    /// The snapshot the session runs over (for name resolution).
    pub snapshot: Arc<Snapshot>,
    /// Registry name the session was created against.
    pub collection_name: String,
    /// Display name of the strategy (for `status`).
    pub strategy_label: String,
    /// Maximum yes/no questions before `ask` reports `done:budget`.
    pub budget: u64,
    /// The outstanding question batch, if `ask` was called without an
    /// `answer` yet (makes `ask` idempotent without re-running selection).
    /// One entry for the classic single-question form; several for a §7
    /// multiple-choice screen, in rank order.
    pub pending: Vec<EntityId>,
    /// The bounded question trace, retrievable via the `trace` wire op.
    pub trace: TraceRing,
    /// Registry lease shielding the session's snapshot from the memory
    /// governor's unload rung; released on drop (close/evict/quarantine).
    lease: Option<SnapshotLease>,
    /// Admission-time byte estimate, fixed for the entry's lifetime (see
    /// [`SessionEntry::accounted_bytes`]).
    bytes: usize,
    last_touch: Instant,
}

impl SessionEntry {
    /// New entry with a fresh idle clock.
    pub fn new(
        engine: ServiceEngine,
        snapshot: Arc<Snapshot>,
        collection_name: String,
        strategy_label: String,
        budget: u64,
    ) -> Self {
        let bytes = std::mem::size_of::<Self>()
            + collection_name.len()
            + strategy_label.len()
            // The trace ring is reserved at its capacity bound up front:
            // a long-lived session will fill it, and a fixed figure keeps
            // admission deterministic.
            + TRACE_CAPACITY * std::mem::size_of::<(u64, TraceStep)>()
            // Engine candidate state scales with the collection; the
            // constant covers the engine's fixed-size bookkeeping.
            + snapshot.collection().len() * 8
            + 1024;
        Self {
            engine,
            snapshot,
            collection_name,
            strategy_label,
            budget,
            pending: Vec::new(),
            trace: TraceRing::default(),
            lease: None,
            bytes,
            last_touch: Instant::now(),
        }
    }

    /// Attaches the registry lease the entry holds for its lifetime.
    pub fn with_lease(mut self, lease: SnapshotLease) -> Self {
        self.lease = Some(lease);
        self
    }

    /// The bytes this entry counts against the memory budget: a
    /// deterministic admission-time estimate (struct, labels, trace ring
    /// at capacity, candidate state), *not* a live measurement — session
    /// entries are bounded by construction, so one fixed figure per entry
    /// keeps admission cheap and reproducible.
    pub fn accounted_bytes(&self) -> usize {
        self.bytes
    }
}

/// Sharded id → session map with a capacity cap and idle eviction.
pub struct SessionTable {
    shards: Vec<Mutex<FxHashMap<u64, SessionEntry>>>,
    next_id: AtomicU64,
    live: AtomicUsize,
    bytes: AtomicUsize,
    max_sessions: usize,
}

impl SessionTable {
    /// Empty table capped at `max_sessions` concurrent entries.
    pub fn new(max_sessions: usize) -> Self {
        Self {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            next_id: AtomicU64::new(1),
            live: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            max_sessions,
        }
    }

    fn shard(&self, id: u64) -> &Mutex<FxHashMap<u64, SessionEntry>> {
        &self.shards[(id % SHARDS as u64) as usize]
    }

    /// Inserts a session, returning its fresh id, or `Err` when the table
    /// is at capacity.
    pub fn insert(&self, entry: SessionEntry) -> Result<u64, String> {
        // Lock-free admission on the live counter: the check-then-add races
        // benignly with concurrent inserts — the cap can be overshot by at
        // most the number of racing creators, which is what a soft
        // admission limit is for. (Touching self.len() here would take all
        // the shard locks on every create.)
        if self.live.load(Ordering::Relaxed) >= self.max_sessions {
            return Err(format!(
                "session table full ({} live sessions)",
                self.max_sessions
            ));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(entry.bytes, Ordering::Relaxed);
        lock_shard(self.shard(id)).insert(id, entry);
        self.live.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Runs `f` on the session, refreshing its idle clock; `None` when the
    /// id is unknown (never created, closed, or evicted).
    pub fn with<R>(&self, id: u64, f: impl FnOnce(&mut SessionEntry) -> R) -> Option<R> {
        let mut shard = lock_shard(self.shard(id));
        let entry = shard.get_mut(&id)?;
        entry.last_touch = Instant::now();
        Some(f(entry))
    }

    /// Removes a session; true when it existed.
    pub fn remove(&self, id: u64) -> bool {
        match lock_shard(self.shard(id)).remove(&id) {
            Some(entry) => {
                self.live.fetch_sub(1, Ordering::Relaxed);
                self.bytes.fetch_sub(entry.bytes, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Number of live sessions (O(1): maintained counter, no locks).
    pub fn len(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }

    /// Accounted bytes of every live session (O(1): maintained on
    /// insert/remove/evict, never recomputed).
    pub fn accounted_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Evicts sessions idle longer than `max_idle`; returns the count.
    pub fn evict_idle(&self, max_idle: Duration) -> usize {
        let now = Instant::now();
        let mut evicted = 0;
        let mut freed = 0usize;
        for shard in &self.shards {
            let mut shard = lock_shard(shard);
            let before = shard.len();
            shard.retain(|_, e| {
                let keep = now.duration_since(e.last_touch) <= max_idle;
                if !keep {
                    freed += e.bytes;
                }
                keep
            });
            evicted += before - shard.len();
        }
        if evicted > 0 {
            self.live.fetch_sub(evicted, Ordering::Relaxed);
            self.bytes.fetch_sub(freed, Ordering::Relaxed);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::fixture;
    use crate::strategy::StrategySpec;

    fn entry() -> SessionEntry {
        let snap = fixture("figure1").unwrap();
        let spec = StrategySpec::default();
        let engine = Engine::new(SnapshotHandle(Arc::clone(&snap)), &[], spec.build());
        SessionEntry::new(engine, snap, "figure1".into(), spec.label(), 100)
    }

    #[test]
    fn ids_are_unique_and_never_reused() {
        let t = SessionTable::new(100);
        let a = t.insert(entry()).unwrap();
        let b = t.insert(entry()).unwrap();
        assert_ne!(a, b);
        assert!(t.remove(a));
        assert!(!t.remove(a), "double close misses");
        let c = t.insert(entry()).unwrap();
        assert_ne!(c, a, "slot ids are not recycled");
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn capacity_cap_rejects_creation() {
        let t = SessionTable::new(2);
        t.insert(entry()).unwrap();
        t.insert(entry()).unwrap();
        let err = t.insert(entry()).unwrap_err();
        assert!(err.contains("full"));
        // Closing one frees admission.
        assert!(t.remove(1));
        assert!(t.insert(entry()).is_ok());
    }

    #[test]
    fn with_touches_and_misses() {
        let t = SessionTable::new(8);
        let id = t.insert(entry()).unwrap();
        let n = t.with(id, |e| e.engine.candidate_count()).unwrap();
        assert_eq!(n, 7);
        assert!(t.with(id + 1, |_| ()).is_none());
    }

    #[test]
    fn byte_accounting_follows_insert_remove_and_eviction() {
        let t = SessionTable::new(8);
        assert_eq!(t.accounted_bytes(), 0);
        let a = t.insert(entry()).unwrap();
        let per = t.accounted_bytes();
        assert!(
            per > TRACE_CAPACITY * std::mem::size_of::<(u64, TraceStep)>(),
            "estimate covers at least the reserved trace ring"
        );
        let _b = t.insert(entry()).unwrap();
        assert_eq!(t.accounted_bytes(), 2 * per, "estimates are deterministic");
        assert!(t.remove(a));
        assert_eq!(t.accounted_bytes(), per);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(t.evict_idle(Duration::from_millis(1)), 1);
        assert_eq!(t.accounted_bytes(), 0);
    }

    #[test]
    fn idle_eviction_spares_touched_sessions() {
        let t = SessionTable::new(8);
        let old = t.insert(entry()).unwrap();
        let fresh = t.insert(entry()).unwrap();
        std::thread::sleep(Duration::from_millis(30));
        t.with(fresh, |_| ()).unwrap(); // refresh one clock
        let evicted = t.evict_idle(Duration::from_millis(15));
        assert_eq!(evicted, 1);
        assert!(t.with(old, |_| ()).is_none(), "idle session gone");
        assert!(t.with(fresh, |_| ()).is_some(), "touched session kept");
    }
}
