//! Load harness: N simulated clients replayed against a service.
//!
//! Each client drives complete discovery sessions through the wire
//! protocol — `create`, then `ask`/`answer` rounds with truthful answers
//! from a client-side copy of the snapshot, until the service reports
//! `done` — over either transport ([`InProcessClient`] calls
//! [`Service::handle_line`] directly; [`SocketClient`] speaks to a real
//! TCP endpoint). Every session's outcome is verified against the expected
//! target, so the harness doubles as an end-to-end correctness check while
//! it measures sessions/sec, questions/session, and p50/p99 per-question
//! (ask+answer round-trip) latency.
//!
//! [`run_open_many`] is the concurrency stress shape: open a large number
//! of sessions *first* (they all stay live in the table together), then
//! drive them all to completion — the "≥ 1k concurrent open sessions"
//! acceptance gate of the service subsystem.

use crate::proto::create_request_ext;
use crate::service::Service;
use crate::snapshot::Snapshot;
use crate::strategy::StrategySpec;
use setdisc_core::discovery::Answer;
use setdisc_core::engine::Engine;
use setdisc_core::entity::SetId;
use setdisc_util::obs::HistogramSnapshot;
use setdisc_util::report::{parse_json, JsonObject, JsonValue};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A protocol client: one request line in, one response line out.
pub trait Client: Send {
    /// Sends `line` and returns the response line (no trailing newline).
    fn call(&mut self, line: &str) -> io::Result<String>;
}

/// Zero-copy transport: calls the service directly on the caller's thread.
pub struct InProcessClient {
    /// The shared service.
    pub service: Arc<Service>,
}

impl Client for InProcessClient {
    fn call(&mut self, line: &str) -> io::Result<String> {
        Ok(self.service.handle_line(line))
    }
}

/// Real-socket transport over TCP.
pub struct SocketClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl SocketClient {
    /// Connects to a serving address.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }
}

impl Client for SocketClient {
    fn call(&mut self, line: &str) -> io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut resp = String::new();
        if self.reader.read_line(&mut resp)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }
}

/// Workload shape for one load run.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Registry name of the collection on the server (the client installs
    /// the same fixture locally to answer truthfully).
    pub collection: String,
    /// Strategy for every session.
    pub strategy: StrategySpec,
    /// Concurrent client threads.
    pub clients: usize,
    /// Sessions driven to completion per client.
    pub sessions_per_client: usize,
    /// Per-session question budget (`None` = service default).
    pub budget: Option<u64>,
    /// Per-set prior weights sent with every `create` (§6 weighted-AD
    /// sessions); `None` = classic unweighted sessions.
    pub prior: Option<Vec<u64>>,
    /// When true, sessions are created with `recover:true` and every
    /// client lies (flagged `confident:false`) on its second question;
    /// outcomes are verified against a direct backtracking engine run with
    /// the same lie, so recovery itself is on the measured path. Applies
    /// to the classic single-question form only.
    pub noisy: bool,
    /// Ask §7 multiple-choice batches of this width instead of single
    /// questions (`questions` then counts screens, not entities).
    pub choices: Option<usize>,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            collection: "figure1".into(),
            strategy: StrategySpec::default(),
            clients: 1,
            sessions_per_client: 1,
            budget: None,
            prior: None,
            noisy: false,
            choices: None,
        }
    }
}

/// Measured results of one load run.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Phase label (e.g. `"inproc_klp2"`).
    pub label: String,
    /// `"in-process"` or `"socket"`.
    pub transport: String,
    /// Client threads used.
    pub clients: usize,
    /// Sessions completed.
    pub sessions: u64,
    /// Yes/no questions asked across all sessions.
    pub questions: u64,
    /// Sessions whose outcome did not match the expected target, plus
    /// protocol-level errors. Zero in a healthy run.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Maximum sessions observed open simultaneously (meaningful for
    /// [`run_open_many`]; equals ~`clients` for the streaming shape).
    pub peak_open: u64,
    /// Completed sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Mean questions per session.
    pub questions_per_session: f64,
    /// Median ask+answer round-trip, microseconds. Reported as the log2
    /// bucket upper bound from the shared
    /// [`setdisc_util::obs::HistogramSnapshot`] — within one bucket of
    /// the exact order statistic.
    pub p50_question_us: f64,
    /// 99th-percentile ask+answer round-trip, microseconds (bucketed as
    /// above).
    pub p99_question_us: f64,
}

impl LoadReport {
    /// Flat JSON encoding for `BENCH_service.json`.
    pub fn to_json(&self) -> JsonObject {
        JsonObject::new()
            .str("phase", &self.label)
            .str("transport", &self.transport)
            .int("clients", self.clients as u64)
            .int("sessions", self.sessions)
            .int("questions", self.questions)
            .int("errors", self.errors)
            .num("elapsed_s", self.elapsed.as_secs_f64())
            .int("peak_open_sessions", self.peak_open)
            .num("sessions_per_sec", self.sessions_per_sec)
            .num("questions_per_session", self.questions_per_session)
            .num("p50_question_us", self.p50_question_us)
            .num("p99_question_us", self.p99_question_us)
    }
}

/// Per-worker tally merged into the report.
#[derive(Default)]
struct WorkerStats {
    sessions: u64,
    questions: u64,
    errors: u64,
    latency_us: HistogramSnapshot,
}

/// Replays `clients × sessions_per_client` complete sessions, streaming
/// (each client runs one session at a time). `snapshot` must describe the
/// same collection the server registered under `cfg.collection`.
pub fn run_load(
    label: &str,
    transport: &str,
    snapshot: &Snapshot,
    make_client: &(dyn Fn() -> io::Result<Box<dyn Client>> + Sync),
    cfg: &LoadConfig,
) -> LoadReport {
    let started = Instant::now();
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let mut client = match make_client() {
                        Ok(client) => client,
                        Err(_) => {
                            stats.errors += cfg.sessions_per_client as u64;
                            return stats;
                        }
                    };
                    for s in 0..cfg.sessions_per_client {
                        let target =
                            (c * cfg.sessions_per_client + s) % snapshot.collection().len();
                        drive_session(
                            &mut *client,
                            snapshot,
                            cfg,
                            SetId(target as u32),
                            &mut stats,
                        );
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    merge(
        label,
        transport,
        cfg.clients,
        started.elapsed(),
        cfg.clients as u64,
        stats,
    )
}

/// The concurrency stress shape: phase 1 opens `open_sessions` sessions
/// (all live simultaneously), phase 2 drives every one to completion.
/// In-process only — it reads the table's live count for `peak_open`.
pub fn run_open_many(
    label: &str,
    service: &Arc<Service>,
    snapshot: &Snapshot,
    cfg: &LoadConfig,
    open_sessions: usize,
) -> LoadReport {
    let started = Instant::now();
    let assigned = AtomicUsize::new(0);
    let opened: Mutex<Vec<(u64, SetId)>> = Mutex::new(Vec::with_capacity(open_sessions));

    // Phase 1: open everything.
    std::thread::scope(|scope| {
        for _ in 0..cfg.clients {
            scope.spawn(|| {
                let mut client = InProcessClient {
                    service: Arc::clone(service),
                };
                loop {
                    let i = assigned.fetch_add(1, Ordering::Relaxed);
                    if i >= open_sessions {
                        break;
                    }
                    let target = SetId((i % snapshot.collection().len()) as u32);
                    let line = create_line(cfg);
                    let resp = client.call(&line).expect("in-process call");
                    let id = response_field(&resp, "session");
                    opened
                        .lock()
                        .expect("open list lock")
                        .push((id.expect("create must succeed"), target));
                }
            });
        }
    });
    let peak_open = service.open_sessions() as u64;

    // Phase 2: drive all open sessions to completion.
    let opened = Arc::new(Mutex::new(opened.into_inner().expect("open list lock")));
    let stats: Vec<WorkerStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|_| {
                let opened = Arc::clone(&opened);
                scope.spawn(move || {
                    let mut stats = WorkerStats::default();
                    let mut client = InProcessClient {
                        service: Arc::clone(service),
                    };
                    loop {
                        let next = opened.lock().expect("open list lock").pop();
                        let Some((id, target)) = next else { break };
                        drive_open_session(&mut client, snapshot, cfg, id, target, &mut stats);
                    }
                    stats
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load worker panicked"))
            .collect()
    });
    merge(
        label,
        "in-process",
        cfg.clients,
        started.elapsed(),
        peak_open,
        stats,
    )
}

/// The `create` line every session of this workload opens with.
fn create_line(cfg: &LoadConfig) -> String {
    create_request_ext(
        &cfg.collection,
        &cfg.strategy,
        &[],
        cfg.budget,
        cfg.prior.as_deref(),
        cfg.noisy,
    )
}

/// Question index the noisy workload lies at (flagged `confident:false`).
const NOISY_LIE_AT: usize = 1;

/// What a noisy session should discover: a direct backtracking engine run
/// with the same strategy and the same unconfident lie. (A lie that never
/// produces a contradiction resolves to a consistent wrong set; the wire
/// session must land on exactly the same one, recovered or not.)
fn noisy_reference_label(snapshot: &Snapshot, cfg: &LoadConfig, target: SetId) -> Option<String> {
    let target_set = snapshot.collection().set(target);
    let mut engine = Engine::new(snapshot.collection(), &[], cfg.strategy.build());
    engine.set_backtracking(true);
    let mut asked = 0usize;
    while let Some(entity) = engine.next_question() {
        let truthful = target_set.contains(entity);
        let (member, confident) = if asked == NOISY_LIE_AT {
            (!truthful, false)
        } else {
            (truthful, true)
        };
        let answer = if member { Answer::Yes } else { Answer::No };
        engine.answer_full(entity, answer, confident);
        asked += 1;
    }
    engine
        .outcome()
        .discovered()
        .map(|id| snapshot.set_label(id))
}

/// Creates and drives one complete session, recording stats.
fn drive_session(
    client: &mut dyn Client,
    snapshot: &Snapshot,
    cfg: &LoadConfig,
    target: SetId,
    stats: &mut WorkerStats,
) {
    let Ok(resp) = client.call(&create_line(cfg)) else {
        stats.errors += 1;
        return;
    };
    let Some(id) = response_field(&resp, "session") else {
        stats.errors += 1;
        return;
    };
    drive_open_session(client, snapshot, cfg, id, target, stats);
}

/// Drives an already-created session to completion.
fn drive_open_session(
    client: &mut dyn Client,
    snapshot: &Snapshot,
    cfg: &LoadConfig,
    id: u64,
    target: SetId,
    stats: &mut WorkerStats,
) {
    let target_set = snapshot.collection().set(target);
    let expected = if cfg.noisy {
        noisy_reference_label(snapshot, cfg, target)
    } else {
        Some(snapshot.set_label(target))
    };
    let ask_line = match cfg.choices {
        Some(b) if b > 1 => format!(r#"{{"op":"ask","session":{id},"choices":{b}}}"#),
        _ => format!(r#"{{"op":"ask","session":{id}}}"#),
    };
    let mut asked = 0usize;
    let mut ok = false;
    loop {
        let round = Instant::now();
        let Ok(ask) = client.call(&ask_line) else {
            break;
        };
        let Ok(parsed) = parse_json(&ask) else { break };
        if parsed.get("ok").and_then(JsonValue::as_bool) != Some(true) {
            break;
        }
        if parsed.get("done").and_then(JsonValue::as_bool) == Some(true) {
            ok = parsed.get("discovered").and_then(JsonValue::as_str) == expected.as_deref();
            break;
        }
        let line = if cfg.choices.is_some_and(|b| b > 1) {
            // §7 screen: pick the first member of the target, or "none of
            // these" past the end.
            let batch: Vec<&str> = match parsed.get("entities").and_then(JsonValue::as_array) {
                Some(items) => items.iter().filter_map(JsonValue::as_str).collect(),
                None => parsed
                    .get("entity")
                    .and_then(JsonValue::as_str)
                    .into_iter()
                    .collect(),
            };
            if batch.is_empty() {
                break;
            }
            let choice = batch
                .iter()
                .position(|name| {
                    snapshot
                        .resolve_entity(name)
                        .is_some_and(|e| target_set.contains(e))
                })
                .unwrap_or(batch.len());
            format!(r#"{{"op":"answer","session":{id},"choice":{choice}}}"#)
        } else {
            let Some(entity) = parsed.get("entity").and_then(JsonValue::as_str) else {
                break;
            };
            let member = snapshot
                .resolve_entity(entity)
                .is_some_and(|e| target_set.contains(e));
            let (member, confident) = if cfg.noisy && asked == NOISY_LIE_AT {
                (!member, false)
            } else {
                (member, true)
            };
            let answer = if member { "yes" } else { "no" };
            if confident {
                format!(
                    r#"{{"op":"answer","session":{id},"entity":"{entity}","answer":"{answer}"}}"#
                )
            } else {
                format!(
                    r#"{{"op":"answer","session":{id},"entity":"{entity}","answer":"{answer}","confident":false}}"#
                )
            }
        };
        let Ok(resp) = client.call(&line) else { break };
        if !resp.contains("\"ok\":true") {
            break;
        }
        asked += 1;
        stats.questions += 1;
        stats
            .latency_us
            .record(round.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    }
    let _ = client.call(&format!(r#"{{"op":"close","session":{id}}}"#));
    stats.sessions += 1;
    if !ok {
        stats.errors += 1;
    }
}

/// Extracts a numeric field from a response line, requiring `"ok":true`.
fn response_field(resp: &str, key: &str) -> Option<u64> {
    let v = parse_json(resp).ok()?;
    if v.get("ok").and_then(JsonValue::as_bool) != Some(true) {
        return None;
    }
    v.get(key).and_then(JsonValue::as_u64)
}

fn merge(
    label: &str,
    transport: &str,
    clients: usize,
    elapsed: Duration,
    peak_open: u64,
    stats: Vec<WorkerStats>,
) -> LoadReport {
    let mut sessions = 0;
    let mut questions = 0;
    let mut errors = 0;
    // Percentiles come from the workspace's shared log2 histogram type
    // (the one `metrics` exposes), not private sorting code — so the load
    // harness and the telemetry surface can never disagree on what a
    // percentile means. Quantiles are bucket upper bounds, within one
    // log2 bucket of the exact order statistic (asserted in tests).
    let mut latency_us = HistogramSnapshot::default();
    for s in stats {
        sessions += s.sessions;
        questions += s.questions;
        errors += s.errors;
        latency_us.merge(&s.latency_us);
    }
    LoadReport {
        label: label.to_string(),
        transport: transport.to_string(),
        clients,
        sessions,
        questions,
        errors,
        elapsed,
        peak_open,
        sessions_per_sec: sessions as f64 / elapsed.as_secs_f64().max(1e-9),
        questions_per_session: questions as f64 / (sessions as f64).max(1.0),
        p50_question_us: latency_us.quantile(0.50) as f64,
        p99_question_us: latency_us.quantile(0.99) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn service_with(spec: &str) -> (Arc<Service>, Arc<Snapshot>) {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service.registry().install_fixture(spec).unwrap();
        let snapshot = service.registry().get(spec).unwrap();
        (service, snapshot)
    }

    fn klp_cfg(collection: &str, clients: usize, sessions: usize) -> LoadConfig {
        LoadConfig {
            collection: collection.into(),
            clients,
            sessions_per_client: sessions,
            ..LoadConfig::default()
        }
    }

    #[test]
    fn in_process_load_is_error_free() {
        let (service, snapshot) = service_with("figure1");
        let cfg = klp_cfg("figure1", 4, 5);
        let svc = Arc::clone(&service);
        let report = run_load(
            "test",
            "in-process",
            &snapshot,
            &move || {
                Ok(Box::new(InProcessClient {
                    service: Arc::clone(&svc),
                }) as Box<dyn Client>)
            },
            &cfg,
        );
        assert_eq!(report.sessions, 20);
        assert_eq!(report.errors, 0);
        assert!(report.questions > 0);
        assert!(report.p99_question_us >= report.p50_question_us);
        assert_eq!(service.open_sessions(), 0, "all sessions closed");
    }

    #[test]
    fn open_many_holds_sessions_concurrently() {
        let (service, snapshot) = service_with("figure1");
        let cfg = klp_cfg("figure1", 4, 0);
        let report = run_open_many("open", &service, &snapshot, &cfg, 64);
        assert_eq!(report.peak_open, 64, "all sessions live simultaneously");
        assert_eq!(report.sessions, 64);
        assert_eq!(report.errors, 0);
        assert_eq!(service.open_sessions(), 0);
    }

    #[test]
    fn noisy_weighted_and_batched_loads_verify() {
        let (service, snapshot) = service_with("copyadd:40:0.8:3");
        let n = snapshot.collection().len();
        let base = klp_cfg("copyadd:40:0.8:3", 2, 4);
        let shapes = [
            LoadConfig {
                noisy: true,
                ..base.clone()
            },
            LoadConfig {
                prior: Some((0..n).map(|i| 1 + (i % 3) as u64).collect()),
                ..base.clone()
            },
            LoadConfig {
                choices: Some(4),
                ..base
            },
        ];
        for cfg in shapes {
            let svc = Arc::clone(&service);
            let report = run_load(
                "mode-test",
                "in-process",
                &snapshot,
                &move || {
                    Ok(Box::new(InProcessClient {
                        service: Arc::clone(&svc),
                    }) as Box<dyn Client>)
                },
                &cfg,
            );
            assert_eq!(report.sessions, 8);
            assert_eq!(
                report.errors,
                0,
                "shape noisy={} prior={} choices={:?} must verify",
                cfg.noisy,
                cfg.prior.is_some(),
                cfg.choices
            );
        }
        assert_eq!(service.open_sessions(), 0);
    }

    #[test]
    fn histogram_percentiles_track_the_sorted_reference() {
        use setdisc_util::obs::bucket_of;
        // The percentile code this replaced: sort, then index the exact
        // order statistic. The shared histogram must land in the same
        // log2 bucket (±1 for the rounding conventions at bucket edges)
        // on a fixed-seed latency-shaped sample.
        let mut state = 0x2545_f491_4f6c_dd1du64; // fixed seed
        let mut next = move || {
            // xorshift64*: deterministic, spans several buckets the way
            // mixed fast/slow round-trips do.
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let mut sorted: Vec<u64> = Vec::new();
        let mut hist = HistogramSnapshot::default();
        for i in 0..10_000u64 {
            // Mostly-fast with a heavy tail: 1..128 µs typical, rare
            // multi-ms stragglers.
            let v = if i % 97 == 0 {
                1_000 + next() % 30_000
            } else {
                1 + next() % 128
            };
            sorted.push(v);
            hist.record(v);
        }
        sorted.sort_unstable();
        for q in [0.50, 0.90, 0.99] {
            let exact = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            let bucketed = hist.quantile(q);
            let (a, b) = (bucket_of(exact), bucket_of(bucketed));
            assert!(
                a.abs_diff(b) <= 1,
                "q={q}: exact {exact} (bucket {a}) vs histogram {bucketed} (bucket {b})"
            );
        }
        assert!(hist.quantile(0.99) >= hist.quantile(0.50), "monotone");
    }

    #[test]
    fn socket_load_round_trips() {
        let (service, snapshot) = service_with("figure1");
        let (addr, _h) = crate::server::spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let cfg = klp_cfg("figure1", 2, 3);
        let report = run_load(
            "socket-test",
            "socket",
            &snapshot,
            &move || Ok(Box::new(SocketClient::connect(addr)?) as Box<dyn Client>),
            &cfg,
        );
        assert_eq!(report.sessions, 6);
        assert_eq!(report.errors, 0);
    }
}
