//! Strategy specifications: the bridge from wire-level strategy
//! descriptions to boxed [`SelectionStrategy`] values.
//!
//! Both the service's `create` request and the `discover` CLI build their
//! engines through [`StrategySpec`], so a terminal session and a service
//! session configured the same way are *constructed* the same way — one
//! code path, bit-identical question sequences.

use setdisc_core::cost::{AvgDepth, Height};
use setdisc_core::lookahead::KLp;
use setdisc_core::strategy::{
    IndistinguishablePairs, InfoGain, Lb1, MostEven, RandomInformative, SelectionStrategy,
    WeightedMostEven,
};
use setdisc_core::weights::WeightTable;
use std::sync::Arc;

/// A boxed, table-storable selection strategy.
pub type BoxedStrategy = Box<dyn SelectionStrategy + Send>;

/// Deployment-level tuning for the parallel k-LP engine, applied to every
/// lookahead strategy the service builds. This is service configuration,
/// not a wire field: the parallel selection loop is bit-identical to the
/// sequential one (see `setdisc_core::lookahead`), so clients cannot — and
/// need not — observe it; operators size it to the machine via
/// [`crate::ServiceConfig`] or the `SETDISC_THREADS` environment knob.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub struct LookaheadTuning {
    /// Worker threads for the selection loop (`0` keeps the
    /// `setdisc_util::pool::configured_threads` default, `1` forces the
    /// sequential path).
    pub threads: usize,
    /// Optional `(min_survivors, min_view)` dispatch-gate override; `None`
    /// keeps the conservative library defaults.
    pub parallel_gate: Option<(usize, usize)>,
}

/// Cost metric selector (`ad` = average depth, `h` = height).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Average depth (AD), the paper's default.
    AvgDepth,
    /// Height (H), the worst-case metric.
    Height,
}

impl Metric {
    /// Parses `"ad"` / `"h"`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ad" => Ok(Metric::AvgDepth),
            "h" => Ok(Metric::Height),
            other => Err(format!("unknown metric {other:?} (want ad|h)")),
        }
    }
}

/// Which selection family to run.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum StrategyKind {
    /// k-LP (Algorithm 1) with the full candidate set.
    KLp,
    /// k-LPLE: beam of `q` most-even candidates at every level.
    KLpLe,
    /// k-LPLVE: beam of `q` at the selection level, one below.
    KLpLve,
    /// Most-even partitioning (§4.2.1).
    MostEven,
    /// Information gain (§4.2.2).
    InfoGain,
    /// Indistinguishable pairs (§4.2.3).
    IndistPairs,
    /// 1-step cost lower bound (§4.2.4).
    Lb1,
    /// Uniform random informative entity (ablation baseline).
    Random,
}

/// A fully-specified strategy configuration, parseable from wire fields and
/// buildable into a [`BoxedStrategy`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct StrategySpec {
    /// Selection family.
    pub kind: StrategyKind,
    /// Cost metric for the lookahead/bound families.
    pub metric: Metric,
    /// Lookahead depth for the k-LP families.
    pub k: u32,
    /// Beam width for the limited families.
    pub beam: usize,
    /// Seed for the random baseline.
    pub seed: u64,
}

impl Default for StrategySpec {
    fn default() -> Self {
        Self {
            kind: StrategyKind::KLp,
            metric: Metric::AvgDepth,
            k: 2,
            beam: 10,
            seed: 0,
        }
    }
}

impl StrategySpec {
    /// Parses the wire fields: a family name (`klp`, `klp-le`, `klp-lve`,
    /// `most-even`, `info-gain`, `indist-pairs`, `lb1`, `random`) plus
    /// optional metric / k / beam / seed overrides.
    pub fn parse(
        name: &str,
        metric: Option<&str>,
        k: Option<u64>,
        beam: Option<u64>,
        seed: Option<u64>,
    ) -> Result<Self, String> {
        let kind = match name {
            "klp" => StrategyKind::KLp,
            "klp-le" => StrategyKind::KLpLe,
            "klp-lve" => StrategyKind::KLpLve,
            "most-even" => StrategyKind::MostEven,
            "info-gain" => StrategyKind::InfoGain,
            "indist-pairs" => StrategyKind::IndistPairs,
            "lb1" => StrategyKind::Lb1,
            "random" => StrategyKind::Random,
            other => return Err(format!("unknown strategy {other:?}")),
        };
        let mut spec = Self {
            kind,
            ..Self::default()
        };
        if let Some(m) = metric {
            spec.metric = Metric::parse(m)?;
        }
        if let Some(k) = k {
            if k == 0 || k > 16 {
                return Err(format!("k={k} out of range (1..=16)"));
            }
            spec.k = k as u32;
        }
        if let Some(q) = beam {
            if q == 0 || q > 1_000_000 {
                return Err(format!("beam={q} out of range"));
            }
            spec.beam = q as usize;
        }
        if let Some(s) = seed {
            spec.seed = s;
        }
        Ok(spec)
    }

    /// Builds the configured strategy with default lookahead tuning.
    pub fn build(&self) -> BoxedStrategy {
        self.build_tuned(&LookaheadTuning::default())
    }

    /// Builds the configured strategy, applying `tuning` to the k-LP
    /// families (the greedy strategies have no parallel loop to tune).
    pub fn build_tuned(&self, tuning: &LookaheadTuning) -> BoxedStrategy {
        fn tune<M: setdisc_core::cost::CostModel>(
            mut klp: KLp<M>,
            tuning: &LookaheadTuning,
        ) -> KLp<M> {
            if tuning.threads != 0 {
                klp = klp.with_threads(tuning.threads);
            }
            if let Some((min_survivors, min_view)) = tuning.parallel_gate {
                klp = klp.with_parallel_gate(min_survivors, min_view);
            }
            klp
        }
        match (self.kind, self.metric) {
            (StrategyKind::KLp, Metric::AvgDepth) => {
                Box::new(tune(KLp::<AvgDepth>::new(self.k), tuning))
            }
            (StrategyKind::KLp, Metric::Height) => {
                Box::new(tune(KLp::<Height>::new(self.k), tuning))
            }
            (StrategyKind::KLpLe, Metric::AvgDepth) => {
                Box::new(tune(KLp::<AvgDepth>::limited(self.k, self.beam), tuning))
            }
            (StrategyKind::KLpLe, Metric::Height) => {
                Box::new(tune(KLp::<Height>::limited(self.k, self.beam), tuning))
            }
            (StrategyKind::KLpLve, Metric::AvgDepth) => Box::new(tune(
                KLp::<AvgDepth>::limited_variable(self.k, self.beam),
                tuning,
            )),
            (StrategyKind::KLpLve, Metric::Height) => Box::new(tune(
                KLp::<Height>::limited_variable(self.k, self.beam),
                tuning,
            )),
            (StrategyKind::MostEven, _) => Box::new(MostEven::new()),
            (StrategyKind::InfoGain, _) => Box::new(InfoGain::new()),
            (StrategyKind::IndistPairs, _) => Box::new(IndistinguishablePairs::new()),
            (StrategyKind::Lb1, Metric::AvgDepth) => Box::new(Lb1::<AvgDepth>::new()),
            (StrategyKind::Lb1, Metric::Height) => Box::new(Lb1::<Height>::new()),
            (StrategyKind::Random, _) => Box::new(RandomInformative::new(self.seed)),
        }
    }

    /// Builds the configured strategy under a per-set prior (§6 weighted
    /// AD). Only the families whose weighted math is implemented qualify:
    /// the k-LP lookaheads under the AD metric (weighted total depth) and
    /// most-even (weighted balance). Everything else is an error the wire
    /// layer reports verbatim.
    pub fn build_weighted(
        &self,
        tuning: &LookaheadTuning,
        weights: Arc<WeightTable>,
    ) -> Result<BoxedStrategy, String> {
        fn tune<M: setdisc_core::cost::CostModel>(
            mut klp: KLp<M>,
            tuning: &LookaheadTuning,
        ) -> KLp<M> {
            if tuning.threads != 0 {
                klp = klp.with_threads(tuning.threads);
            }
            if let Some((min_survivors, min_view)) = tuning.parallel_gate {
                klp = klp.with_parallel_gate(min_survivors, min_view);
            }
            klp
        }
        match (self.kind, self.metric) {
            (StrategyKind::KLp, Metric::AvgDepth) => Ok(Box::new(
                tune(KLp::<AvgDepth>::new(self.k), tuning).with_prior(weights),
            )),
            (StrategyKind::KLpLe, Metric::AvgDepth) => Ok(Box::new(
                tune(KLp::<AvgDepth>::limited(self.k, self.beam), tuning).with_prior(weights),
            )),
            (StrategyKind::KLpLve, Metric::AvgDepth) => Ok(Box::new(
                tune(KLp::<AvgDepth>::limited_variable(self.k, self.beam), tuning)
                    .with_prior(weights),
            )),
            (StrategyKind::MostEven, _) => Ok(Box::new(WeightedMostEven::new(weights))),
            _ => Err(format!(
                "strategy {} does not support a prior \
                 (want klp|klp-le|klp-lve with metric ad, or most-even)",
                self.label()
            )),
        }
    }

    /// The display name [`Self::build_weighted`] would produce, mirroring
    /// [`Self::label`].
    pub fn weighted_label(&self, weights: &WeightTable) -> String {
        let fp = weights.fp();
        match self.kind {
            StrategyKind::KLp => format!("k-LP(k={},AD,w:{fp:016x})", self.k),
            StrategyKind::KLpLe => format!("k-LPLE(k={},q={},AD,w:{fp:016x})", self.k, self.beam),
            StrategyKind::KLpLve => format!("k-LPLVE(k={},q={},AD,w:{fp:016x})", self.k, self.beam),
            StrategyKind::MostEven => format!("MostEven(w:{fp:016x})"),
            _ => self.label(),
        }
    }

    /// The configured strategy's display name (e.g. `"k-LP(k=2,AD)"`) —
    /// derived from the fields, without constructing the strategy, so the
    /// service's create path builds each strategy exactly once. Agreement
    /// with the built strategy's `name()` is asserted by tests.
    pub fn label(&self) -> String {
        let m = match self.metric {
            Metric::AvgDepth => "AD",
            Metric::Height => "H",
        };
        match self.kind {
            StrategyKind::KLp => format!("k-LP(k={},{m})", self.k),
            StrategyKind::KLpLe => format!("k-LPLE(k={},q={},{m})", self.k, self.beam),
            StrategyKind::KLpLve => format!("k-LPLVE(k={},q={},{m})", self.k, self.beam),
            StrategyKind::MostEven => "MostEven".into(),
            StrategyKind::InfoGain => "InfoGain".into(),
            StrategyKind::IndistPairs => "IndistPairs".into(),
            StrategyKind::Lb1 => format!("LB1({m})"),
            StrategyKind::Random => "Random".into(),
        }
    }

    /// The plan-cache key of this configuration, or `None` for strategies
    /// whose selections must not be shared across sessions (the random
    /// baseline advances per-session RNG state). Metric-free families map
    /// the metric tag to 0 so equivalent configurations share one plan; the
    /// beam tag is 0 for the unlimited family for the same reason.
    pub fn plan_key(&self) -> Option<setdisc_plan::StrategyKey> {
        let family = match self.kind {
            StrategyKind::KLp => 0,
            StrategyKind::KLpLe => 1,
            StrategyKind::KLpLve => 2,
            StrategyKind::MostEven => 3,
            StrategyKind::InfoGain => 4,
            StrategyKind::IndistPairs => 5,
            StrategyKind::Lb1 => 6,
            StrategyKind::Random => return None,
        };
        let metric_sensitive = matches!(
            self.kind,
            StrategyKind::KLp | StrategyKind::KLpLe | StrategyKind::KLpLve | StrategyKind::Lb1
        );
        let metric = match (metric_sensitive, self.metric) {
            (false, _) | (true, Metric::AvgDepth) => 0,
            (true, Metric::Height) => 1,
        };
        let (k, beam) = match self.kind {
            StrategyKind::KLp => (self.k, 0),
            StrategyKind::KLpLe | StrategyKind::KLpLve => (self.k, self.beam as u32),
            _ => (0, 0),
        };
        Some(setdisc_plan::StrategyKey {
            family,
            metric,
            k,
            beam,
            weight_fp: 0,
        })
    }

    /// The plan-cache key of this configuration under `weights`, or `None`
    /// when the configuration has no key or no weighted build (weighted
    /// plans must never be shared with the unweighted strategy, and vice
    /// versa — the prior's fingerprint keeps the key spaces disjoint).
    pub fn weighted_plan_key(&self, weights: &WeightTable) -> Option<setdisc_plan::StrategyKey> {
        let weighted_buildable = matches!(
            (self.kind, self.metric),
            (StrategyKind::KLp, Metric::AvgDepth)
                | (StrategyKind::KLpLe, Metric::AvgDepth)
                | (StrategyKind::KLpLve, Metric::AvgDepth)
                | (StrategyKind::MostEven, _)
        );
        if !weighted_buildable {
            return None;
        }
        self.plan_key().map(|key| setdisc_plan::StrategyKey {
            weight_fp: weights.fp(),
            ..key
        })
    }

    /// The wire-level family name this spec round-trips through
    /// ([`Self::parse`] of this name restores [`Self::kind`]).
    pub fn family_name(&self) -> &'static str {
        match self.kind {
            StrategyKind::KLp => "klp",
            StrategyKind::KLpLe => "klp-le",
            StrategyKind::KLpLve => "klp-lve",
            StrategyKind::MostEven => "most-even",
            StrategyKind::InfoGain => "info-gain",
            StrategyKind::IndistPairs => "indist-pairs",
            StrategyKind::Lb1 => "lb1",
            StrategyKind::Random => "random",
        }
    }

    /// The wire-level metric name (`"ad"` / `"h"`).
    pub fn metric_name(&self) -> &'static str {
        match self.metric {
            Metric::AvgDepth => "ad",
            Metric::Height => "h",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_label_cover_families() {
        let spec = StrategySpec::parse("klp", Some("ad"), Some(2), None, None).unwrap();
        assert_eq!(spec.label(), "k-LP(k=2,AD)");
        let spec = StrategySpec::parse("klp-le", Some("h"), Some(3), Some(10), None).unwrap();
        assert_eq!(spec.label(), "k-LPLE(k=3,q=10,H)");
        let spec = StrategySpec::parse("most-even", None, None, None, None).unwrap();
        assert_eq!(spec.label(), "MostEven");
        let spec = StrategySpec::parse("random", None, None, None, Some(7)).unwrap();
        assert_eq!(spec.label(), "Random");
        let spec = StrategySpec::parse("lb1", Some("h"), None, None, None).unwrap();
        assert_eq!(spec.label(), "LB1(H)");
    }

    #[test]
    fn parse_rejects_bad_fields() {
        assert!(StrategySpec::parse("nope", None, None, None, None).is_err());
        assert!(StrategySpec::parse("klp", Some("zz"), None, None, None).is_err());
        assert!(StrategySpec::parse("klp", None, Some(0), None, None).is_err());
        assert!(StrategySpec::parse("klp-le", None, None, Some(0), None).is_err());
    }

    #[test]
    fn label_agrees_with_built_strategy_name() {
        for kind in [
            "klp",
            "klp-le",
            "klp-lve",
            "most-even",
            "info-gain",
            "indist-pairs",
            "lb1",
            "random",
        ] {
            for metric in ["ad", "h"] {
                let spec =
                    StrategySpec::parse(kind, Some(metric), Some(3), Some(7), Some(1)).unwrap();
                assert_eq!(spec.label(), spec.build().name(), "{kind}/{metric}");
            }
        }
    }

    #[test]
    fn plan_keys_separate_configurations_and_exclude_random() {
        let mut seen = std::collections::HashSet::new();
        for kind in ["klp", "klp-le", "klp-lve", "most-even", "lb1"] {
            for metric in ["ad", "h"] {
                for k in [1u64, 2] {
                    let spec =
                        StrategySpec::parse(kind, Some(metric), Some(k), Some(5), None).unwrap();
                    seen.insert(spec.plan_key().expect("deterministic strategies have keys"));
                }
            }
        }
        // klp/klp-le/klp-lve × 2 metrics × 2 depths = 12, lb1 × 2 metrics,
        // most-even collapses metric and k → 1 key. Total distinct = 15.
        assert_eq!(seen.len(), 15);
        // Metric-free families share one plan across metric spellings.
        let a = StrategySpec::parse("info-gain", Some("ad"), None, None, None).unwrap();
        let b = StrategySpec::parse("info-gain", Some("h"), None, None, None).unwrap();
        assert_eq!(a.plan_key(), b.plan_key());
        // The random baseline must never share plans.
        let r = StrategySpec::parse("random", None, None, None, Some(3)).unwrap();
        assert_eq!(r.plan_key(), None);
    }

    #[test]
    fn weighted_builds_label_and_key_agree() {
        let weights = Arc::new(WeightTable::new(&[5, 1, 1, 1, 1, 1, 1]).unwrap());
        let tuning = LookaheadTuning::default();
        for kind in ["klp", "klp-le", "klp-lve", "most-even"] {
            let spec = StrategySpec::parse(kind, Some("ad"), Some(2), Some(5), None).unwrap();
            let built = spec
                .build_weighted(&tuning, Arc::clone(&weights))
                .unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(built.name(), spec.weighted_label(&weights), "{kind}");
            let wkey = spec.weighted_plan_key(&weights).expect(kind);
            assert_eq!(wkey.weight_fp, weights.fp());
            assert_eq!(
                setdisc_plan::StrategyKey {
                    weight_fp: 0,
                    ..wkey
                },
                spec.plan_key().unwrap(),
                "weighted key differs from unweighted only in the prior"
            );
        }
        // Height-metric lookahead and the other greedy families refuse.
        for (kind, metric) in [
            ("klp", "h"),
            ("info-gain", "ad"),
            ("lb1", "ad"),
            ("random", "ad"),
        ] {
            let spec = StrategySpec::parse(kind, Some(metric), None, None, None).unwrap();
            let err = spec
                .build_weighted(&tuning, Arc::clone(&weights))
                .err()
                .unwrap_or_else(|| panic!("{kind}/{metric} should refuse a prior"));
            assert!(err.contains("does not support a prior"), "{err}");
            assert_eq!(spec.weighted_plan_key(&weights), None, "{kind}/{metric}");
        }
    }

    #[test]
    fn built_strategies_select_on_a_view() {
        let snap = crate::snapshot::fixture("figure1").unwrap();
        let view = snap.collection().full_view();
        for name in [
            "klp",
            "klp-le",
            "klp-lve",
            "most-even",
            "info-gain",
            "indist-pairs",
            "lb1",
            "random",
        ] {
            let mut s = StrategySpec::parse(name, None, None, None, None)
                .unwrap()
                .build();
            assert!(s.select(&view).is_some(), "{name}");
        }
    }
}
