//! Deterministic replay of a `serve --journal` directory.
//!
//! ```text
//! replay [--quiet] JOURNAL_DIR
//! ```
//!
//! Reads the journal, rebuilds the service each run's meta record
//! describes (collection recipes, limits, `SETDISC_FAULTS` spec, obs
//! arming), re-drives every recorded request through a fresh in-process
//! service, and byte-diffs every response against the recorded one.
//! Prints a summary (and the first mismatching exchanges unless
//! `--quiet`); exits 0 when every response reproduced byte-identically,
//! 1 on any mismatch, 2 on usage or an unreadable journal.
//!
//! The process arms fault injection and telemetry *from the journal*, not
//! from the environment — a replay is a reconstruction of the recorded
//! run, so `SETDISC_FAULTS`/`SETDISC_OBS` in the caller's environment are
//! deliberately ignored.

use setdisc_service::replay::replay_dir;
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: replay [--quiet] JOURNAL_DIR");
    std::process::exit(2);
}

fn main() {
    let mut quiet = false;
    let mut dir: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ if dir.is_none() => dir = Some(PathBuf::from(arg)),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    let report = match replay_dir(&dir, true) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("replay: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "replayed {} exchanges across {} run(s): {} mismatch(es)",
        report.exchanges, report.runs, report.mismatches
    );
    if !quiet {
        for diag in &report.diagnostics {
            eprintln!("{diag}");
        }
        let shown = report.diagnostics.len() as u64;
        if report.mismatches > shown {
            eprintln!("... and {} more", report.mismatches - shown);
        }
    }
    std::process::exit(if report.ok() { 0 } else { 1 });
}
