//! The discovery service binary.
//!
//! ```text
//! serve [--stdio | --tcp ADDR] [--fixture SPEC]... [--load NAME=PATH]...
//!       [--max-sessions N] [--budget N] [--idle-secs S]
//! ```
//!
//! Speaks the line-delimited JSON protocol of `setdisc_service::proto` over
//! stdin/stdout (default) or a TCP listener. `--tcp 127.0.0.1:0` binds an
//! ephemeral port; the bound address is printed as `listening on ADDR` so
//! scripts can scrape it. Collections come from `--fixture` specs
//! (`figure1`, `copyadd:<n>:<alpha>:<seed>`) and/or `--load name=path`
//! text-format files.

use setdisc_service::server::{serve_stdio, serve_tcp, spawn_idle_sweeper};
use setdisc_service::{Service, ServiceConfig};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--stdio | --tcp ADDR] [--fixture SPEC]... [--load NAME=PATH]...\n\
         \x20            [--max-sessions N] [--budget N] [--idle-secs S]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut tcp: Option<String> = None;
    let mut stdio = false;
    let mut fixtures: Vec<String> = Vec::new();
    let mut loads: Vec<(String, String)> = Vec::new();
    let mut config = ServiceConfig::default();
    let mut idle_secs: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--fixture" => fixtures.push(args.next().unwrap_or_else(|| usage())),
            "--load" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.split_once('=') {
                    Some((name, path)) => loads.push((name.to_string(), path.to_string())),
                    None => usage(),
                }
            }
            "--max-sessions" => {
                config.max_sessions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--budget" => {
                config.default_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--idle-secs" => {
                idle_secs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            _ => usage(),
        }
    }
    if stdio && tcp.is_some() {
        usage();
    }
    if fixtures.is_empty() && loads.is_empty() {
        fixtures.push("figure1".to_string());
    }
    config.idle_timeout = idle_secs.map(Duration::from_secs);

    let service = Arc::new(Service::new(config));
    for spec in &fixtures {
        if let Err(e) = service.registry().install_fixture(spec) {
            fail(&e);
        }
    }
    for (name, path) in &loads {
        if let Err(e) = service
            .registry()
            .load_file(name, std::path::Path::new(path))
        {
            fail(&e);
        }
    }

    if let Some(period) = config.idle_timeout {
        // Sweep at the timeout granularity (at least once a second).
        let period = period
            .min(Duration::from_secs(1))
            .max(Duration::from_millis(100));
        spawn_idle_sweeper(Arc::clone(&service), period);
    }

    match tcp {
        Some(bind) => {
            let listener =
                TcpListener::bind(&bind).unwrap_or_else(|e| fail(&format!("bind {bind}: {e}")));
            let addr = listener
                .local_addr()
                .unwrap_or_else(|e| fail(&format!("local_addr: {e}")));
            println!("listening on {addr}");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            serve_tcp(service, listener);
        }
        None => {
            if let Err(e) = serve_stdio(&service) {
                fail(&format!("stdio: {e}"));
            }
        }
    }
}
