//! The discovery service binary.
//!
//! ```text
//! serve [--stdio | --tcp ADDR] [--fixture SPEC]... [--load NAME=PATH]...
//!       [--max-sessions N] [--budget N] [--idle-secs S]
//!       [--plan-cache PATH] [--plan-capacity N]
//! ```
//!
//! Speaks the line-delimited JSON protocol of `setdisc_service::proto` over
//! stdin/stdout (default) or a TCP listener. `--tcp 127.0.0.1:0` binds an
//! ephemeral port; the bound address is printed as `listening on ADDR` so
//! scripts can scrape it. Collections come from `--fixture` specs
//! (`figure1`, `copyadd:<n>:<alpha>:<seed>`) and/or `--load name=path`
//! text-format files.
//!
//! `--plan-cache PATH` boots warm: if `PATH` exists it must be a plan file
//! (see `setdisc_plan::file`) matching one registered collection, whose
//! snapshot then serves every cached selection from the first request; on
//! clean stdio shutdown (EOF) the learned plan is written back to `PATH`,
//! so repeated runs keep improving their prefix coverage. `--plan-capacity`
//! bounds the resident node count; `0` disables plan caching entirely, in
//! which case a `--plan-cache` file is neither loaded nor written.

use setdisc_service::server::{serve_stdio, serve_tcp, spawn_idle_sweeper};
use setdisc_service::{Service, ServiceConfig};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--stdio | --tcp ADDR] [--fixture SPEC]... [--load NAME=PATH]...\n\
         \x20            [--max-sessions N] [--budget N] [--idle-secs S]\n\
         \x20            [--plan-cache PATH] [--plan-capacity N]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut tcp: Option<String> = None;
    let mut stdio = false;
    let mut fixtures: Vec<String> = Vec::new();
    let mut loads: Vec<(String, String)> = Vec::new();
    let mut config = ServiceConfig::default();
    let mut idle_secs: Option<u64> = None;
    let mut plan_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--fixture" => fixtures.push(args.next().unwrap_or_else(|| usage())),
            "--load" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.split_once('=') {
                    Some((name, path)) => loads.push((name.to_string(), path.to_string())),
                    None => usage(),
                }
            }
            "--max-sessions" => {
                config.max_sessions = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--budget" => {
                config.default_budget = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--idle-secs" => {
                idle_secs = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--plan-cache" => {
                plan_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--plan-capacity" => {
                config.plan_cache_capacity = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if stdio && tcp.is_some() {
        usage();
    }
    if fixtures.is_empty() && loads.is_empty() {
        fixtures.push("figure1".to_string());
    }
    config.idle_timeout = idle_secs.map(Duration::from_secs);
    if config.plan_cache_capacity == 0 {
        // Caching disabled: neither load nor persist a plan.
        plan_path = None;
    }
    config.plan_persist = plan_path.clone();
    let idle_timeout = config.idle_timeout;
    let plan_capacity = config.plan_cache_capacity;

    let service = Arc::new(Service::new(config));
    for spec in &fixtures {
        if let Err(e) = service.registry().install_fixture(spec) {
            fail(&e);
        }
    }
    for (name, path) in &loads {
        if let Err(e) = service
            .registry()
            .load_file(name, std::path::Path::new(path))
        {
            fail(&e);
        }
    }

    // Warm boot: attach a persisted plan to the collection it was built
    // for, keeping the configured capacity as the growth headroom (a
    // cache bounded to exactly its payload would evict its own prefix on
    // the first new node). A missing file is not an error — the plan is
    // learned from traffic and written there on shutdown.
    if let Some(path) = plan_path.as_deref().filter(|p| p.exists()) {
        let cache = match setdisc_plan::load_plan(path, plan_capacity) {
            Ok(cache) => Arc::new(cache),
            Err(e) => fail(&format!("load plan {}: {e}", path.display())),
        };
        let owner = service
            .registry()
            .snapshots()
            .into_iter()
            .find(|snap| cache.matches(snap.collection()));
        match owner {
            Some(snap) => {
                let nodes = cache.len();
                if let Err(e) = snap.install_plan_cache(cache) {
                    fail(&e);
                }
                eprintln!(
                    "loaded plan cache: {nodes} nodes for {:?} from {}",
                    snap.name(),
                    path.display()
                );
            }
            None => fail(&format!(
                "plan file {} matches no registered collection",
                path.display()
            )),
        }
    }

    if let Some(period) = idle_timeout {
        // Sweep at the timeout granularity (at least once a second).
        let period = period
            .min(Duration::from_secs(1))
            .max(Duration::from_millis(100));
        spawn_idle_sweeper(Arc::clone(&service), period);
    }

    match tcp {
        Some(bind) => {
            let listener =
                TcpListener::bind(&bind).unwrap_or_else(|e| fail(&format!("bind {bind}: {e}")));
            let addr = listener
                .local_addr()
                .unwrap_or_else(|e| fail(&format!("local_addr: {e}")));
            println!("listening on {addr}");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            serve_tcp(service, listener);
        }
        None => {
            if let Err(e) = serve_stdio(&service) {
                fail(&format!("stdio: {e}"));
            }
            // Clean EOF shutdown: persist what the sessions learned.
            match service.persist_plans() {
                Ok(Some((name, nodes))) => {
                    eprintln!("persisted plan cache: {nodes} nodes for {name:?}")
                }
                Ok(None) => {}
                Err(e) => fail(&e),
            }
        }
    }
}
