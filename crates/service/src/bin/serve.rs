//! The discovery service binary.
//!
//! ```text
//! serve [--stdio | --tcp ADDR] [--fixture SPEC]... [--register SPEC]...
//!       [--load NAME=PATH]...
//!       [--max-sessions N] [--budget N] [--idle-timeout S]
//!       [--memory-budget-mb N]
//!       [--plan-cache PATH] [--plan-capacity N] [--checkpoint-ms MS]
//!       [--max-conns N] [--max-line-bytes N] [--max-requests-per-conn N]
//!       [--io-timeout-ms MS] [--stdin-shutdown] [--metrics]
//!       [--journal DIR]
//! ```
//!
//! Speaks the line-delimited JSON protocol of `setdisc_service::proto` over
//! stdin/stdout (default) or a TCP listener. `--tcp 127.0.0.1:0` binds an
//! ephemeral port; the bound address is printed as `listening on ADDR` so
//! scripts can scrape it. Collections come from `--fixture` specs
//! (`figure1`, `copyadd:<n>:<alpha>:<seed>`) and/or `--load name=path`
//! text-format files — both built eagerly at boot — or from `--register`
//! specs, which only record the rebuild recipe: a registered fixture costs
//! no memory until the first `create` names it (DESIGN.md §13).
//!
//! `--memory-budget-mb N` arms the memory governor with a global byte
//! budget over loaded collections, plan caches, and session entries.
//! Over budget, a deterministic degradation ladder engages in order:
//! plan caches shrink toward their per-collection floors, cold snapshots
//! without live sessions unload (rebuildable from their recipes), and
//! finally new `create`s are shed with the structured `overloaded` +
//! `retry_after` shape. Established sessions are never touched.
//!
//! `--plan-cache PATH` boots warm: if `PATH` exists it must be a plan file
//! (see `setdisc_plan::file`) matching one registered collection, whose
//! snapshot then serves every cached selection from the first request. A
//! corrupt or mismatched file is never fatal — it is set aside (renamed to
//! `PATH.corrupt`) or ignored with a warning and the service boots cold.
//! The learned plan is written back (atomically) by a periodic
//! checkpointer (`--checkpoint-ms`, default 30000; `0` disables), on clean
//! stdio shutdown (EOF), and on a `--stdin-shutdown` TCP drain, so a crash
//! loses at most one checkpoint interval of learning and never the last
//! good file. `--plan-capacity` bounds the resident node count; `0`
//! disables plan caching entirely, in which case a `--plan-cache` file is
//! neither loaded nor written.
//!
//! Edge hardening (DESIGN.md §11): sessions idle past `--idle-timeout`
//! (default 900 s, `0` disables; `--idle-secs` is a legacy alias) are
//! swept; request lines over `--max-line-bytes` are refused with a
//! `too_large` error; connections are capped globally (`--max-conns`,
//! shed with `overloaded` + `retry_after`), per-connection
//! (`--max-requests-per-conn`), and in time (`--io-timeout-ms` read
//! deadline). `--stdin-shutdown` makes a TCP server treat stdin EOF as a
//! drain request: stop accepting, let in-flight requests finish, persist
//! the plan cache, exit. Fault injection for chaos testing is armed via
//! the `SETDISC_FAULTS` environment variable (see `setdisc_util::faults`).
//!
//! Crash tolerance (DESIGN.md §14): `--journal DIR` appends every wire
//! request/response pair the dispatcher handles to a rotating,
//! fsync-batched JSONL journal in `DIR`, led by a meta record pinning the
//! collection recipes, service limits, fault spec, and telemetry arming.
//! The `replay` binary re-drives a journal through a fresh in-process
//! service and byte-diffs every response. Restarting into the same
//! directory appends a new run (fresh segment, fresh meta); a crash
//! mid-append loses at most the unsynced batch tail, never a torn
//! half-record.
//!
//! Telemetry (DESIGN.md §12): `--metrics` arms the hot-path span timers
//! (equivalent to `SETDISC_OBS=1`), so the session-less
//! `{"op":"metrics"}` wire op reports populated site histograms alongside
//! the always-on edge counters, plan-cache statistics, and Prometheus
//! text rendering (`"format":"prometheus"`). The op itself is always
//! available; without arming, site histograms simply read zero.

use setdisc_service::server::{
    serve_stdio, spawn_idle_sweeper, spawn_plan_checkpointer, TcpServer,
};
use setdisc_service::{Service, ServiceConfig};
use setdisc_util::obs;
use std::io::Read as _;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: serve [--stdio | --tcp ADDR] [--fixture SPEC]... [--register SPEC]...\n\
         \x20            [--load NAME=PATH]...\n\
         \x20            [--max-sessions N] [--budget N] [--idle-timeout S]\n\
         \x20            [--memory-budget-mb N]\n\
         \x20            [--plan-cache PATH] [--plan-capacity N] [--checkpoint-ms MS]\n\
         \x20            [--max-conns N] [--max-line-bytes N] [--max-requests-per-conn N]\n\
         \x20            [--io-timeout-ms MS] [--stdin-shutdown] [--metrics]\n\
         \x20            [--journal DIR]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(1);
}

/// Parses the next argument as a `T`, or exits with usage.
fn parse_next<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>) -> T {
    args.next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| usage())
}

fn main() {
    setdisc_util::faults::init_from_env();
    obs::init_from_env();

    let mut tcp: Option<String> = None;
    let mut stdio = false;
    let mut fixtures: Vec<String> = Vec::new();
    let mut registers: Vec<String> = Vec::new();
    let mut loads: Vec<(String, String)> = Vec::new();
    let mut config = ServiceConfig::default();
    let mut idle_secs: u64 = 900;
    let mut plan_path: Option<PathBuf> = None;
    let mut checkpoint_ms: u64 = 30_000;
    let mut stdin_shutdown = false;
    let mut journal_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--stdin-shutdown" => stdin_shutdown = true,
            "--metrics" => obs::arm(true),
            "--tcp" => tcp = Some(args.next().unwrap_or_else(|| usage())),
            "--fixture" => fixtures.push(args.next().unwrap_or_else(|| usage())),
            "--register" => registers.push(args.next().unwrap_or_else(|| usage())),
            "--load" => {
                let spec = args.next().unwrap_or_else(|| usage());
                match spec.split_once('=') {
                    Some((name, path)) => loads.push((name.to_string(), path.to_string())),
                    None => usage(),
                }
            }
            "--max-sessions" => config.max_sessions = parse_next(&mut args),
            "--budget" => config.default_budget = parse_next(&mut args),
            "--memory-budget-mb" => {
                let mb: usize = parse_next(&mut args);
                config.memory = (mb > 0).then_some(mb * 1024 * 1024);
            }
            "--idle-timeout" | "--idle-secs" => idle_secs = parse_next(&mut args),
            "--plan-cache" => {
                plan_path = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--journal" => {
                journal_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| usage())));
            }
            "--plan-capacity" => config.plan_cache_capacity = parse_next(&mut args),
            "--checkpoint-ms" => checkpoint_ms = parse_next(&mut args),
            "--max-conns" => config.edge.max_connections = parse_next(&mut args),
            "--max-line-bytes" => config.edge.max_line_bytes = parse_next(&mut args),
            "--max-requests-per-conn" => config.edge.max_requests_per_conn = parse_next(&mut args),
            "--io-timeout-ms" => {
                let ms: u64 = parse_next(&mut args);
                config.edge.read_timeout = (ms > 0).then(|| Duration::from_millis(ms));
            }
            _ => usage(),
        }
    }
    if stdio && tcp.is_some() {
        usage();
    }
    if fixtures.is_empty() && loads.is_empty() && registers.is_empty() {
        fixtures.push("figure1".to_string());
    }
    config.idle_timeout = (idle_secs > 0).then(|| Duration::from_secs(idle_secs));
    if config.plan_cache_capacity == 0 {
        // Caching disabled: neither load nor persist a plan.
        plan_path = None;
    }
    config.plan_persist = plan_path.clone();
    let idle_timeout = config.idle_timeout;
    let plan_capacity = config.plan_cache_capacity;

    let mut service = Service::new(config);
    for spec in &fixtures {
        if let Err(e) = service.registry().install_fixture(spec) {
            fail(&e);
        }
    }
    for (name, path) in &loads {
        if let Err(e) = service
            .registry()
            .load_file(name, std::path::Path::new(path))
        {
            fail(&e);
        }
    }
    for spec in &registers {
        // Recipe only — validated now, built on first `create`.
        if let Err(e) = service.registry().register_fixture(spec) {
            fail(&e);
        }
    }
    if let Some(dir) = &journal_dir {
        // The meta record pins the recipes in application order, so the
        // replay binary rebuilds collections exactly as this boot did.
        let recipes = fixtures
            .iter()
            .map(|s| format!("fixture:{s}"))
            .chain(loads.iter().map(|(n, p)| format!("load:{n}={p}")))
            .chain(registers.iter().map(|s| format!("register:{s}")))
            .collect();
        let meta = setdisc_service::journal::JournalMeta::capture(service.config(), recipes);
        match setdisc_service::journal::ServiceJournal::open(dir, &meta) {
            Ok(journal) => service.set_journal(journal),
            Err(e) => fail(&format!("open journal {}: {e}", dir.display())),
        }
    }
    let service = Arc::new(service);

    // Warm boot: attach a persisted plan to the collection it was built
    // for, keeping the configured capacity as the growth headroom (a
    // cache bounded to exactly its payload would evict its own prefix on
    // the first new node). A missing file is not an error — the plan is
    // learned from traffic and written there on shutdown. Neither is a
    // corrupt or mismatched one: a stale cache must never keep the
    // service from booting, so it is set aside and the boot goes cold.
    if let Some(path) = plan_path.as_deref().filter(|p| p.exists()) {
        match setdisc_plan::load_plan(path, plan_capacity) {
            Ok(cache) => {
                let cache = Arc::new(cache);
                let owner = service
                    .registry()
                    .snapshots()
                    .into_iter()
                    .find(|snap| cache.matches(snap.collection()));
                match owner {
                    Some(snap) => {
                        let nodes = cache.len();
                        if let Err(e) = snap.install_plan_cache(cache) {
                            fail(&e);
                        }
                        obs::info(&format!(
                            "loaded plan cache: {nodes} nodes for {:?} from {}",
                            snap.name(),
                            path.display()
                        ));
                    }
                    None => obs::warn(&format!(
                        "plan file {} matches no registered collection; booting cold \
                         (file left in place)",
                        path.display()
                    )),
                }
            }
            Err(e) => {
                let aside = PathBuf::from(format!("{}.corrupt", path.display()));
                obs::warn(&format!(
                    "plan file {} is unreadable ({e}); set aside as {} and booting cold",
                    path.display(),
                    aside.display()
                ));
                if let Err(e) = std::fs::rename(path, &aside) {
                    obs::warn(&format!("could not set aside corrupt plan file: {e}"));
                }
            }
        }
    }

    if let Some(period) = idle_timeout {
        // Sweep at the timeout granularity (at least once a second).
        let period = period
            .min(Duration::from_secs(1))
            .max(Duration::from_millis(100));
        spawn_idle_sweeper(Arc::clone(&service), period);
    }
    if plan_path.is_some() && checkpoint_ms > 0 {
        spawn_plan_checkpointer(Arc::clone(&service), Duration::from_millis(checkpoint_ms));
    }

    match tcp {
        Some(bind) => {
            let listener =
                TcpListener::bind(&bind).unwrap_or_else(|e| fail(&format!("bind {bind}: {e}")));
            let addr = listener
                .local_addr()
                .unwrap_or_else(|e| fail(&format!("local_addr: {e}")));
            println!("listening on {addr}");
            use std::io::Write as _;
            std::io::stdout().flush().ok();
            let server = TcpServer::start(Arc::clone(&service), listener)
                .unwrap_or_else(|e| fail(&format!("start accept loop: {e}")));
            if stdin_shutdown {
                // Treat stdin EOF as a drain request — the TCP twin of the
                // stdio loop's clean-shutdown path. (Opt-in: services
                // backgrounded with stdin on /dev/null would otherwise
                // drain immediately.)
                let mut sink = [0u8; 4096];
                let mut stdin = std::io::stdin().lock();
                while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
                let drained = server.shutdown();
                obs::info(&format!(
                    "drain {} — persisting and exiting",
                    if drained {
                        "complete"
                    } else {
                        "deadline expired (stragglers abandoned)"
                    }
                ));
                persist_on_exit(&service);
            } else {
                server.join();
            }
        }
        None => {
            if let Err(e) = serve_stdio(&service) {
                fail(&format!("stdio: {e}"));
            }
            // Clean EOF shutdown: persist what the sessions learned.
            persist_on_exit(&service);
        }
    }
}

/// Final plan persist (and journal sync) on a clean shutdown path.
fn persist_on_exit(service: &Service) {
    if let Some(journal) = service.journal() {
        if let Err(e) = journal.sync() {
            obs::warn(&format!("final journal sync failed: {e}"));
        }
    }
    match service.persist_plans() {
        Ok(Some((name, nodes))) => {
            obs::info(&format!("persisted plan cache: {nodes} nodes for {name:?}"));
        }
        Ok(None) => {}
        Err(e) => fail(&e),
    }
}
