//! CI reconciliation harness for the telemetry surface (DESIGN.md §12).
//!
//! ```text
//! metrics_check [--sessions N]
//! ```
//!
//! Arms the span timers (the in-process equivalent of `serve --metrics`),
//! starts a live TCP server on an ephemeral port, replays `N` truthful
//! discovery sessions over real sockets, scrapes the session-less
//! `{"op":"metrics"}` op before and after, and asserts the three
//! properties a scrape pipeline depends on:
//!
//! 1. the Prometheus text rendering parses against the minimal exposition
//!    grammar (`# TYPE` comments; `name{label="value"} number` samples);
//! 2. the `engine.select` event count grew by exactly the number of
//!    questions asked (one fresh selection per answered question on a
//!    truthful complete run — re-asks and resolved sessions select
//!    nothing);
//! 3. the plan hit/miss/node totals in `metrics` equal the ones `status`
//!    reports, and the JSON and Prometheus forms agree with each other.
//!
//! Exits 0 with a one-line summary on success; panics (non-zero) with the
//! failing assertion otherwise. Deterministic modulo timing values, so it
//! is safe as a CI gate.

use setdisc_core::entity::SetId;
use setdisc_service::load::{Client, SocketClient};
use setdisc_service::server::TcpServer;
use setdisc_service::{Service, ServiceConfig};
use setdisc_util::report::{parse_json, JsonValue};
use setdisc_util::{obs, FxHashMap};
use std::net::TcpListener;
use std::sync::Arc;

fn field<'a>(v: &'a JsonValue, key: &str) -> &'a JsonValue {
    v.get(key).unwrap_or_else(|| panic!("missing {key}: {v:?}"))
}

fn call(client: &mut SocketClient, line: &str) -> JsonValue {
    let resp = client.call(line).expect("transport");
    let v = parse_json(&resp).expect("valid JSON response");
    assert_eq!(
        field(&v, "ok").as_bool(),
        Some(true),
        "request {line} failed: {resp}"
    );
    v
}

/// Site event counts and plan counters from one `metrics` scrape.
struct Scrape {
    sites: FxHashMap<String, u64>,
    plan_hits: u64,
    plan_misses: u64,
    plan_nodes: u64,
}

fn scrape(client: &mut SocketClient) -> Scrape {
    let resp = call(client, r#"{"op":"metrics"}"#);
    let mut sites = FxHashMap::default();
    for s in field(&resp, "sites").as_array().expect("sites array") {
        sites.insert(
            field(s, "site").as_str().expect("site name").to_string(),
            field(s, "count").as_u64().expect("site count"),
        );
    }
    let collections = field(&resp, "collections").as_array().expect("collections");
    let c = collections.first().expect("one collection");
    // Plan counters appear once the collection has a cache attached (the
    // service installs it on first use); an absent field reads as zero.
    let plan = |key: &str| c.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    Scrape {
        sites,
        plan_hits: plan("plan_hits"),
        plan_misses: plan("plan_misses"),
        plan_nodes: plan("plan_nodes"),
    }
}

/// Validates one Prometheus exposition against the minimal grammar and
/// returns the parsed samples as `full-name-with-labels -> value`.
fn parse_prometheus(text: &str) -> FxHashMap<String, f64> {
    let mut samples = FxHashMap::default();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE "), "bad comment line: {line}");
            let mut words = line["# TYPE ".len()..].split(' ');
            let (name, kind) = (words.next().unwrap_or(""), words.next().unwrap_or(""));
            assert!(!name.is_empty(), "TYPE without a metric name: {line}");
            assert!(
                matches!(kind, "counter" | "gauge"),
                "TYPE must be counter|gauge: {line}"
            );
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample must be `name value`: {line}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("bad sample value: {line}"));
        let bare = match name.split_once('{') {
            Some((metric, labels)) => {
                let body = labels
                    .strip_suffix('}')
                    .unwrap_or_else(|| panic!("unclosed label set: {line}"));
                let (key, val) = body
                    .split_once("=\"")
                    .unwrap_or_else(|| panic!("label must be key=\"value\": {line}"));
                assert!(val.ends_with('"'), "unterminated label value: {line}");
                assert!(
                    key.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                    "bad label key: {line}"
                );
                metric
            }
            None => name,
        };
        assert!(
            bare.starts_with("setdisc_")
                && bare
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "bad metric name: {line}"
        );
        samples.insert(name.to_string(), value);
    }
    samples
}

/// Runs one truthful session against `target`, returning questions asked.
fn run_session(
    client: &mut SocketClient,
    snapshot: &setdisc_service::Snapshot,
    target: SetId,
) -> u64 {
    let resp = call(client, r#"{"op":"create","collection":"figure1"}"#);
    let id = field(&resp, "session").as_u64().expect("session id");
    let members = snapshot.collection().set(target);
    let mut questions = 0;
    loop {
        let resp = call(client, &format!(r#"{{"op":"ask","session":{id}}}"#));
        if field(&resp, "done").as_bool() == Some(true) {
            break;
        }
        let name = field(&resp, "entity").as_str().expect("entity").to_string();
        let entity = snapshot.resolve_entity(&name).expect("known entity");
        let answer = if members.contains(entity) {
            "yes"
        } else {
            "no"
        };
        call(
            client,
            &format!(r#"{{"op":"answer","session":{id},"entity":"{name}","answer":"{answer}"}}"#),
        );
        questions += 1;
    }
    call(client, &format!(r#"{{"op":"close","session":{id}}}"#));
    questions
}

fn main() {
    let mut sessions: u32 = 7;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: metrics_check [--sessions N]");
                    std::process::exit(2);
                })
            }
            _ => {
                eprintln!("usage: metrics_check [--sessions N]");
                std::process::exit(2);
            }
        }
    }

    // The in-process twin of `serve --metrics`: arm the spans, register
    // the reference fixture, listen on an ephemeral port.
    obs::arm(true);
    let service = Arc::new(Service::new(ServiceConfig::default()));
    service
        .registry()
        .install_fixture("figure1")
        .expect("fixture");
    let snapshot = setdisc_service::snapshot::fixture("figure1").expect("fixture snapshot");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");
    let server = TcpServer::start(Arc::clone(&service), listener).expect("accept loop");
    let mut client = SocketClient::connect(addr).expect("connect");

    let before = scrape(&mut client);
    let n_sets = snapshot.collection().len() as u32;
    let mut questions = 0;
    for i in 0..sessions {
        questions += run_session(&mut client, &snapshot, SetId(i % n_sets));
    }
    let after = scrape(&mut client);

    // (2) Selection accounting: every answered question cost exactly one
    // fresh selection, whether it came from the plan cache or lookahead.
    let selected = after.sites["engine.select"] - before.sites["engine.select"];
    assert_eq!(
        selected, questions,
        "engine.select grew by {selected}, but {questions} questions were asked"
    );
    assert_eq!(
        after.sites["plan.hit"] + after.sites["plan.miss"],
        after.sites["engine.select"],
        "every selection is a plan hit or a plan miss"
    );

    // (3) One storage location: `status` and `metrics` read the same plan
    // counters, so two back-to-back quiescent reads must agree exactly.
    let status = call(&mut client, r#"{"op":"status"}"#);
    let c = &field(&status, "collections")
        .as_array()
        .expect("collections")[0];
    assert_eq!(field(c, "plan_hits").as_u64(), Some(after.plan_hits));
    assert_eq!(field(c, "plan_misses").as_u64(), Some(after.plan_misses));
    assert_eq!(field(c, "plan_nodes").as_u64(), Some(after.plan_nodes));
    assert!(
        after.plan_hits > before.plan_hits,
        "repeated truthful sessions must hit the shared plan"
    );

    // (1) The Prometheus form parses, and agrees with the JSON form.
    let resp = call(&mut client, r#"{"op":"metrics","format":"prometheus"}"#);
    let samples = parse_prometheus(field(&resp, "text").as_str().expect("text"));
    let events = samples["setdisc_site_events_total{site=\"engine.select\"}"];
    assert_eq!(events as u64, after.sites["engine.select"]);
    assert_eq!(
        samples["setdisc_plan_hits_total{collection=\"figure1\"}"] as u64,
        after.plan_hits
    );
    assert!(samples.len() > 20, "expected a full exposition");

    server.shutdown();
    println!(
        "metrics_check: ok ({sessions} sessions, {questions} questions, \
         {selected} selections, {} plan hits, {} samples)",
        after.plan_hits,
        samples.len()
    );
}
