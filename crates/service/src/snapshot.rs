//! Named, immutable collection snapshots shared across sessions.
//!
//! A [`Snapshot`] bundles a pre-indexed [`Collection`] with its entity and
//! set names; a [`Registry`] maps snapshot names to `Arc<Snapshot>`s.
//! Snapshots are strictly immutable after construction — sessions hold
//! [`SnapshotHandle`] clones, so the service never copies set data and a
//! collection can be swapped in the registry without disturbing sessions
//! already running over the old version. The derived indexes the bitmap
//! kernels rely on — the `EntityPostings` bitmaps, per-set fingerprint and
//! size tables — are built once inside the [`Collection`] and therefore
//! shared by every session over the snapshot: a thousand concurrent
//! sessions split against one postings index.

use setdisc_core::entity::{EntityId, SetId};
use setdisc_core::io::{parse_collection, NamedCollection};
use setdisc_core::Collection;
use setdisc_plan::PlanCache;
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};
use setdisc_util::FxHashMap;
use std::ops::Deref;
use std::sync::{Arc, OnceLock, RwLock};

/// An immutable named collection: the unit sessions snapshot.
///
/// Besides the shared indexes the collection itself carries, a snapshot can
/// hold one shared [`PlanCache`] — installed explicitly from a persisted
/// plan file, or created lazily by the service on the first cacheable
/// session — so every session over the snapshot reads and extends the same
/// question plan.
pub struct Snapshot {
    name: String,
    named: NamedCollection,
    plan: OnceLock<Arc<PlanCache>>,
}

impl Snapshot {
    /// Snapshot from a parsed [`NamedCollection`].
    pub fn new(name: impl Into<String>, named: NamedCollection) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            named,
            plan: OnceLock::new(),
        })
    }

    /// Snapshot from a bare [`Collection`] (synthetic fixtures): entities
    /// render as `e<id>` and sets as `S<id>`.
    pub fn from_collection(name: impl Into<String>, collection: Collection) -> Arc<Self> {
        Self::new(
            name,
            NamedCollection {
                collection,
                entities: setdisc_core::EntityInterner::new(),
                set_names: Vec::new(),
                duplicates_dropped: 0,
            },
        )
    }

    /// Snapshot parsed from the `setdisc_core::io` text format.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Arc<Self>, String> {
        let named = parse_collection(text).map_err(|e| e.to_string())?;
        Ok(Self::new(name, named))
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared collection.
    pub fn collection(&self) -> &Collection {
        &self.named.collection
    }

    /// Human label for a set id (`S<id>` when the source had no names).
    pub fn set_label(&self, id: SetId) -> String {
        self.named
            .set_names
            .get(id.0 as usize)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Human label for an entity id (`e<id>` when unnamed).
    pub fn entity_label(&self, id: EntityId) -> String {
        self.named.entities.display(id)
    }

    /// Resolves an entity token. Named collections (anything parsed from
    /// text) resolve strictly through the interner — an unknown token is an
    /// error, never a silent numeric guess. Only unnamed collections
    /// (synthetic fixtures with an empty interner) accept the `e<id>`
    /// notation their labels render as, validated against the universe.
    pub fn resolve_entity(&self, token: &str) -> Option<EntityId> {
        if !self.named.entities.is_empty() {
            return self.named.entities.get(token);
        }
        let num = token.strip_prefix('e')?.parse::<u32>().ok()?;
        (num < self.named.collection.universe()).then_some(EntityId(num))
    }

    /// The shared plan cache, if one is installed.
    pub fn plan_cache(&self) -> Option<Arc<PlanCache>> {
        self.plan.get().cloned()
    }

    /// Installs a pre-built (typically persisted-and-reloaded) plan cache.
    /// Fails when the cache was built for a different collection, or when a
    /// cache is already installed — sessions may be serving from it, and a
    /// snapshot's cache, like its collection, never changes once observed.
    pub fn install_plan_cache(&self, cache: Arc<PlanCache>) -> Result<(), String> {
        if !cache.matches(self.collection()) {
            return Err(format!(
                "plan cache was built for a different collection than {:?}",
                self.name
            ));
        }
        self.plan
            .set(cache)
            .map_err(|_| format!("snapshot {:?} already has a plan cache", self.name))
    }

    /// The shared plan cache, creating an empty one bounded to `capacity`
    /// nodes on first use (the service's lazy default when no persisted
    /// plan was loaded).
    pub fn plan_cache_or_init(&self, capacity: usize) -> Arc<PlanCache> {
        Arc::clone(
            self.plan
                .get_or_init(|| Arc::new(PlanCache::for_collection(self.collection(), capacity))),
        )
    }
}

/// A cheap owning handle to a snapshot's collection — the
/// [`setdisc_core::engine::CollectionRef`] the service's sessions are built
/// over (deref target is the [`Collection`], clone is an `Arc` bump).
#[derive(Clone)]
pub struct SnapshotHandle(pub Arc<Snapshot>);

impl Deref for SnapshotHandle {
    type Target = Collection;

    fn deref(&self) -> &Collection {
        self.0.collection()
    }
}

/// Thread-safe name → snapshot map.
#[derive(Default)]
pub struct Registry {
    map: RwLock<FxHashMap<String, Arc<Snapshot>>>,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a snapshot under its own name. Sessions
    /// already holding the old snapshot keep running over it.
    pub fn insert(&self, snapshot: Arc<Snapshot>) {
        self.map
            .write()
            .expect("registry lock poisoned")
            .insert(snapshot.name().to_string(), snapshot);
    }

    /// Looks up a snapshot by name.
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.map
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Every registered snapshot, name-sorted (the service-status path —
    /// shape *and* plan-cache statistics come from the snapshots
    /// themselves).
    pub fn snapshots(&self) -> Vec<Arc<Snapshot>> {
        let mut out: Vec<Arc<Snapshot>> = self
            .map
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect();
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }

    /// Registered names with basic shape statistics, name-sorted.
    pub fn list(&self) -> Vec<(String, usize, usize)> {
        let mut out: Vec<(String, usize, usize)> = self
            .map
            .read()
            .expect("registry lock poisoned")
            .values()
            .map(|s| {
                (
                    s.name().to_string(),
                    s.collection().len(),
                    s.collection().distinct_entities(),
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Loads a text-format collection file under `name`.
    pub fn load_file(&self, name: &str, path: &std::path::Path) -> Result<(), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        self.insert(Snapshot::parse(name, &text)?);
        Ok(())
    }

    /// Installs a built-in fixture and returns its registry name.
    ///
    /// Specs: `figure1` (the paper's 7-set example) or
    /// `copyadd:<n_sets>:<overlap>:<seed>` (the §5.2.2 copy-add generator
    /// with set sizes 20–30). Fixture generation is deterministic, so a
    /// load-harness client can install the same spec locally and know the
    /// server's set contents without transferring them.
    pub fn install_fixture(&self, spec: &str) -> Result<String, String> {
        let snapshot = fixture(spec)?;
        let name = snapshot.name().to_string();
        self.insert(snapshot);
        Ok(name)
    }
}

/// Builds a fixture snapshot from a spec string (see
/// [`Registry::install_fixture`]).
pub fn fixture(spec: &str) -> Result<Arc<Snapshot>, String> {
    if spec == "figure1" {
        return Snapshot::parse("figure1", FIGURE1_TEXT);
    }
    if let Some(rest) = spec.strip_prefix("copyadd:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [n, alpha, seed] = parts.as_slice() else {
            return Err(format!(
                "bad copyadd spec {spec:?} (want copyadd:<n>:<alpha>:<seed>)"
            ));
        };
        let n_sets: usize = n.parse().map_err(|_| format!("bad set count {n:?}"))?;
        let overlap: f64 = alpha
            .parse()
            .map_err(|_| format!("bad overlap {alpha:?}"))?;
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
        if n_sets < 2 || !(0.0..1.0).contains(&overlap) {
            return Err(format!("copyadd spec {spec:?} out of range"));
        }
        let collection = generate_copy_add(&CopyAddConfig {
            n_sets,
            size_range: (20, 30),
            overlap,
            seed,
        });
        return Ok(Snapshot::from_collection(spec, collection));
    }
    Err(format!(
        "unknown fixture {spec:?} (want figure1 or copyadd:<n>:<alpha>:<seed>)"
    ))
}

/// Figure 1 of the paper in the text format (entities a..k).
const FIGURE1_TEXT: &str = "\
S1: a b c d
S2: a d e
S3: a b c d f
S4: a b c g h
S5: a b h i
S6: a b j k
S7: a b g
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_fixture_matches_paper_shape() {
        let r = Registry::new();
        let name = r.install_fixture("figure1").unwrap();
        let snap = r.get(&name).unwrap();
        assert_eq!(snap.collection().len(), 7);
        assert_eq!(snap.collection().distinct_entities(), 11);
        assert_eq!(snap.set_label(SetId(0)), "S1");
        let d = snap.resolve_entity("d").unwrap();
        assert_eq!(snap.collection().sets_containing(d).len(), 3);
        assert_eq!(snap.entity_label(d), "d");
        // Named collections must not fall back to numeric guessing: "e2"
        // is not an interned name here, even though EntityId(2) exists.
        assert_eq!(snap.resolve_entity("e2"), None);
        assert_eq!(snap.resolve_entity("zzz"), None);
    }

    #[test]
    fn copyadd_fixture_is_deterministic() {
        let a = fixture("copyadd:40:0.8:3").unwrap();
        let b = fixture("copyadd:40:0.8:3").unwrap();
        assert_eq!(a.collection().len(), b.collection().len());
        for (id, set) in a.collection().iter() {
            assert_eq!(set.fingerprint(), b.collection().set(id).fingerprint());
        }
        // Unnamed entities resolve through the e<id> notation.
        assert_eq!(a.resolve_entity("e0"), Some(EntityId(0)));
        assert_eq!(a.resolve_entity("e999999"), None);
        assert_eq!(a.entity_label(EntityId(0)), "e0");
    }

    #[test]
    fn bad_fixture_specs_error() {
        for bad in [
            "nope",
            "copyadd:1:0.5:0",
            "copyadd:10:1.5:0",
            "copyadd:10:0.5",
            "copyadd:x:0.5:0",
        ] {
            assert!(fixture(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn registry_replacement_keeps_old_arcs_alive() {
        let r = Registry::new();
        r.install_fixture("figure1").unwrap();
        let old = r.get("figure1").unwrap();
        // Replace under the same name with a different collection.
        r.insert(Snapshot::parse("figure1", "x: p q\ny: q r\n").unwrap());
        let new = r.get("figure1").unwrap();
        assert_eq!(old.collection().len(), 7, "old snapshot untouched");
        assert_eq!(new.collection().len(), 2);
        assert_eq!(r.list().len(), 1);
    }

    #[test]
    fn plan_cache_installs_once_and_validates_collection() {
        let snap = fixture("figure1").unwrap();
        assert!(snap.plan_cache().is_none());
        let lazy = snap.plan_cache_or_init(128);
        assert!(Arc::ptr_eq(&lazy, &snap.plan_cache_or_init(999)));
        // A second install is rejected — the lazy cache is already live.
        let fresh = Arc::new(PlanCache::for_collection(snap.collection(), 64));
        assert!(snap.install_plan_cache(fresh).is_err());
        // A cache for a different collection never attaches.
        let other = fixture("copyadd:10:0.5:1").unwrap();
        let mismatched = Arc::new(PlanCache::for_collection(other.collection(), 64));
        let snap2 = fixture("figure1").unwrap();
        assert!(snap2.install_plan_cache(mismatched).is_err());
        let matching = Arc::new(PlanCache::for_collection(snap2.collection(), 64));
        snap2.install_plan_cache(Arc::clone(&matching)).unwrap();
        assert!(Arc::ptr_eq(&snap2.plan_cache().unwrap(), &matching));
        assert!(Arc::ptr_eq(&snap2.plan_cache_or_init(128), &matching));
    }

    #[test]
    fn registry_snapshots_are_name_sorted() {
        let r = Registry::new();
        r.install_fixture("figure1").unwrap();
        r.install_fixture("copyadd:10:0.5:1").unwrap();
        let snaps = r.snapshots();
        assert_eq!(
            snaps.iter().map(|s| s.name()).collect::<Vec<_>>(),
            vec!["copyadd:10:0.5:1", "figure1"]
        );
    }

    #[test]
    fn handle_derefs_to_collection() {
        let snap = fixture("figure1").unwrap();
        let handle = SnapshotHandle(Arc::clone(&snap));
        assert_eq!(handle.len(), 7);
        let again = handle.clone();
        assert_eq!(again.universe(), snap.collection().universe());
    }

    #[test]
    fn postings_index_is_shared_not_rebuilt() {
        // Every handle clone must see the same postings index instance —
        // the words slice of a dense entity resolves to the same memory.
        let snap = fixture("copyadd:80:0.8:3").unwrap();
        let a = SnapshotHandle(Arc::clone(&snap));
        let b = a.clone();
        let e = (0..a.universe())
            .map(EntityId)
            .find(|&e| a.postings().dense(e).is_some())
            .expect("a dense entity exists at n=80");
        assert_eq!(
            a.postings().dense(e).unwrap().words().as_ptr(),
            b.postings().dense(e).unwrap().words().as_ptr(),
            "postings bitmaps shared through the Arc"
        );
    }
}
