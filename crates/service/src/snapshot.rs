//! Named, immutable collection snapshots shared across sessions — and the
//! memory governance that decides which of them stay resident.
//!
//! A [`Snapshot`] bundles a pre-indexed [`Collection`] with its entity and
//! set names; a [`Registry`] maps snapshot names to *slots*. A slot may be
//! `registered` (a rebuild recipe only — fixture spec or file path, no
//! bytes resident), `loaded` (snapshot built and shared), or `unloaded`
//! (previously loaded, evicted by the governor, rebuildable on demand).
//! Snapshots are strictly immutable after construction — sessions hold
//! [`SnapshotHandle`] clones, so the service never copies set data and a
//! collection can be swapped or unloaded in the registry without
//! disturbing sessions already running over the old version. The derived
//! indexes the bitmap kernels rely on — the `EntityPostings` bitmaps,
//! per-set fingerprint and size tables — are built once inside the
//! [`Collection`] and therefore shared by every session over the snapshot:
//! a thousand concurrent sessions split against one postings index.
//!
//! The [`MemoryGovernor`] (DESIGN.md §13) enforces a global byte budget
//! over everything the registry accounts: loaded collections, their plan
//! caches, and the session bytes the service reports into
//! [`Registry::admit`]. Under pressure a deterministic degradation ladder
//! engages in documented order — shrink plan caches toward their
//! per-collection floors, unload cold snapshots (never one with live
//! session leases), and finally shed the new `create` — so the service
//! degrades and sheds instead of being OOM-killed, and established
//! sessions are never touched.

use setdisc_core::entity::{EntityId, SetId};
use setdisc_core::io::{parse_collection, NamedCollection};
use setdisc_core::Collection;
use setdisc_plan::PlanCache;
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};
use setdisc_util::mem::HeapSize as _;
use setdisc_util::{faults, obs, FxHashMap};
use std::collections::VecDeque;
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// An immutable named collection: the unit sessions snapshot.
///
/// Besides the shared indexes the collection itself carries, a snapshot can
/// hold one shared [`PlanCache`] — installed explicitly from a persisted
/// plan file, or created lazily by the service on the first cacheable
/// session — so every session over the snapshot reads and extends the same
/// question plan.
pub struct Snapshot {
    name: String,
    named: NamedCollection,
    plan: OnceLock<Arc<PlanCache>>,
}

impl Snapshot {
    /// Snapshot from a parsed [`NamedCollection`].
    pub fn new(name: impl Into<String>, named: NamedCollection) -> Arc<Self> {
        Arc::new(Self {
            name: name.into(),
            named,
            plan: OnceLock::new(),
        })
    }

    /// Snapshot from a bare [`Collection`] (synthetic fixtures): entities
    /// render as `e<id>` and sets as `S<id>`.
    pub fn from_collection(name: impl Into<String>, collection: Collection) -> Arc<Self> {
        Self::new(
            name,
            NamedCollection {
                collection,
                entities: setdisc_core::EntityInterner::new(),
                set_names: Vec::new(),
                duplicates_dropped: 0,
            },
        )
    }

    /// Snapshot parsed from the `setdisc_core::io` text format.
    pub fn parse(name: impl Into<String>, text: &str) -> Result<Arc<Self>, String> {
        let named = parse_collection(text).map_err(|e| e.to_string())?;
        Ok(Self::new(name, named))
    }

    /// The registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared collection.
    pub fn collection(&self) -> &Collection {
        &self.named.collection
    }

    /// Accounted heap bytes of the collection side: sets, inverted index,
    /// postings bitmaps, fingerprint/size tables, and every label
    /// (deterministic and exact per `util::mem`).
    pub fn collection_bytes(&self) -> usize {
        self.name.capacity() + self.named.heap_bytes()
    }

    /// Accounted heap bytes of the installed plan cache (0 when none).
    pub fn plan_bytes(&self) -> usize {
        self.plan.get().map_or(0, |c| c.heap_bytes())
    }

    /// Human label for a set id (`S<id>` when the source had no names).
    pub fn set_label(&self, id: SetId) -> String {
        self.named
            .set_names
            .get(id.0 as usize)
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Human label for an entity id (`e<id>` when unnamed).
    pub fn entity_label(&self, id: EntityId) -> String {
        self.named.entities.display(id)
    }

    /// Resolves an entity token. Named collections (anything parsed from
    /// text) resolve strictly through the interner — an unknown token is an
    /// error, never a silent numeric guess. Only unnamed collections
    /// (synthetic fixtures with an empty interner) accept the `e<id>`
    /// notation their labels render as, validated against the universe.
    pub fn resolve_entity(&self, token: &str) -> Option<EntityId> {
        if !self.named.entities.is_empty() {
            return self.named.entities.get(token);
        }
        let num = token.strip_prefix('e')?.parse::<u32>().ok()?;
        (num < self.named.collection.universe()).then_some(EntityId(num))
    }

    /// The shared plan cache, if one is installed.
    pub fn plan_cache(&self) -> Option<Arc<PlanCache>> {
        self.plan.get().cloned()
    }

    /// Installs a pre-built (typically persisted-and-reloaded) plan cache.
    /// Fails when the cache was built for a different collection, or when a
    /// cache is already installed — sessions may be serving from it, and a
    /// snapshot's cache, like its collection, never changes once observed.
    pub fn install_plan_cache(&self, cache: Arc<PlanCache>) -> Result<(), String> {
        if !cache.matches(self.collection()) {
            return Err(format!(
                "plan cache was built for a different collection than {:?}",
                self.name
            ));
        }
        self.plan
            .set(cache)
            .map_err(|_| format!("snapshot {:?} already has a plan cache", self.name))
    }

    /// The shared plan cache, creating an empty one bounded to `capacity`
    /// nodes on first use (the service's lazy default when no persisted
    /// plan was loaded).
    pub fn plan_cache_or_init(&self, capacity: usize) -> Arc<PlanCache> {
        Arc::clone(
            self.plan
                .get_or_init(|| Arc::new(PlanCache::for_collection(self.collection(), capacity))),
        )
    }
}

/// A cheap owning handle to a snapshot's collection — the
/// [`setdisc_core::engine::CollectionRef`] the service's sessions are built
/// over (deref target is the [`Collection`], clone is an `Arc` bump).
#[derive(Clone)]
pub struct SnapshotHandle(pub Arc<Snapshot>);

impl Deref for SnapshotHandle {
    type Target = Collection;

    fn deref(&self) -> &Collection {
        self.0.collection()
    }
}

/// A live-session lease on a registry slot. Held by every session entry;
/// while any lease is outstanding, the degradation ladder will not unload
/// the slot's snapshot, so a session's shared plan cache and postings
/// index stay resident until it drains. Dropping the entry (close, idle
/// eviction, quarantine, contradiction) releases the lease automatically.
pub struct SnapshotLease {
    count: Arc<AtomicUsize>,
}

impl SnapshotLease {
    fn take(count: &Arc<AtomicUsize>) -> Self {
        count.fetch_add(1, Ordering::Relaxed);
        Self {
            count: Arc::clone(count),
        }
    }
}

impl Drop for SnapshotLease {
    fn drop(&mut self) {
        self.count.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Why [`Registry::acquire`] could not hand out a snapshot.
#[derive(Debug, PartialEq, Eq)]
pub enum AcquireError {
    /// Memory pressure (an armed `registry.load` / `snapshot.build` fault,
    /// standing in for a failed allocation) refused materialization; the
    /// caller should shed with the structured `overloaded` shape.
    Pressure(String),
    /// The slot's rebuild source failed (I/O or parse error).
    Build(String),
}

/// One row of [`Registry::list`]: name, shape, and governance state.
/// Shape is the last built shape — `(0, 0)` for a slot that was registered
/// but never materialized.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    /// Registry name.
    pub name: String,
    /// Number of sets (0 when never built).
    pub sets: usize,
    /// Distinct entities (0 when never built).
    pub entities: usize,
    /// `registered`, `loaded`, or `unloaded`.
    pub state: &'static str,
    /// Accounted collection bytes currently resident (0 unless loaded).
    pub bytes: usize,
    /// Accounted plan-cache bytes currently resident (0 unless loaded and
    /// a cache exists).
    pub plan_bytes: usize,
    /// Outstanding session leases (sessions created over the loaded
    /// snapshot and not yet closed or evicted).
    pub live_sessions: usize,
}

/// Bounded governor event log capacity (oldest dropped first).
const EVENT_CAPACITY: usize = 64;

/// The per-collection plan-cache floor the ladder shrinks toward: one
/// resident node per cache shard, the structural minimum
/// [`PlanCache::shrink_to`] clamps to. Shrinking below it would leave
/// some shards permanently empty without freeing anything.
const PLAN_CACHE_FLOOR: usize = 16;

/// Byte-budget enforcement state: the budget itself, counters for each
/// rung of the degradation ladder, and a bounded event log the chaos
/// suite asserts ladder *order* against.
///
/// A budget of 0 disables governance entirely (the seed behavior).
/// Counters are statistics, not synchronization.
pub struct MemoryGovernor {
    budget: AtomicUsize,
    plan_shrinks: AtomicU64,
    unloads: AtomicU64,
    sheds: AtomicU64,
    events: Mutex<VecDeque<String>>,
}

impl MemoryGovernor {
    fn new() -> Self {
        Self {
            budget: AtomicUsize::new(0),
            plan_shrinks: AtomicU64::new(0),
            unloads: AtomicU64::new(0),
            sheds: AtomicU64::new(0),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// The global byte budget (0 = ungoverned).
    pub fn budget(&self) -> usize {
        self.budget.load(Ordering::Relaxed)
    }

    /// Sets the global byte budget (0 disables governance).
    pub fn set_budget(&self, bytes: usize) {
        self.budget.store(bytes, Ordering::Relaxed);
    }

    /// Plan-cache shrink steps the ladder has taken.
    pub fn plan_shrinks(&self) -> u64 {
        self.plan_shrinks.load(Ordering::Relaxed)
    }

    /// Snapshots the ladder has unloaded.
    pub fn unloads(&self) -> u64 {
        self.unloads.load(Ordering::Relaxed)
    }

    /// Creates shed because the ladder could not reach the budget (or a
    /// load was refused under injected allocation pressure).
    pub fn sheds(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// The retained event log, oldest first (bounded; for tests and
    /// postmortems, not a stable wire surface).
    pub fn events(&self) -> Vec<String> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    fn note(&self, event: String) {
        let mut log = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if log.len() == EVENT_CAPACITY {
            log.pop_front();
        }
        log.push_back(event);
    }
}

/// How a registry slot rebuilds its snapshot after an unload.
enum SlotSource {
    /// Built-in fixture spec — deterministic, rebuildable at any time.
    Fixture(String),
    /// Text-format collection file, re-read on materialization.
    File(std::path::PathBuf),
    /// Directly inserted snapshot: no rebuild recipe, never unloaded.
    Direct,
}

/// One named registry entry: rebuild source, resident snapshot (if any),
/// cached shape, byte accounting, lease count, and last-use stamp.
struct Slot {
    source: SlotSource,
    built: Option<Arc<Snapshot>>,
    shape: Option<(usize, usize)>,
    bytes: usize,
    leases: Arc<AtomicUsize>,
    last_use: u64,
    was_loaded: bool,
}

impl Slot {
    fn state(&self) -> &'static str {
        if self.built.is_some() {
            "loaded"
        } else if self.was_loaded {
            "unloaded"
        } else {
            "registered"
        }
    }

    fn plan_bytes(&self) -> usize {
        self.built.as_ref().map_or(0, |b| b.plan_bytes())
    }
}

/// Thread-safe name → snapshot-slot map with memory governance.
pub struct Registry {
    slots: RwLock<FxHashMap<String, Slot>>,
    clock: AtomicU64,
    governor: MemoryGovernor,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// Empty, ungoverned registry (budget 0 = unlimited).
    pub fn new() -> Self {
        Self {
            slots: RwLock::new(FxHashMap::default()),
            clock: AtomicU64::new(0),
            governor: MemoryGovernor::new(),
        }
    }

    /// The memory governor (budget, ladder counters, event log).
    pub fn governor(&self) -> &MemoryGovernor {
        &self.governor
    }

    /// Sets the global byte budget (0 disables governance).
    pub fn set_budget(&self, bytes: usize) {
        self.governor.set_budget(bytes);
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    fn write_slots(&self) -> std::sync::RwLockWriteGuard<'_, FxHashMap<String, Slot>> {
        self.slots.write().expect("registry lock poisoned")
    }

    fn read_slots(&self) -> std::sync::RwLockReadGuard<'_, FxHashMap<String, Slot>> {
        self.slots.read().expect("registry lock poisoned")
    }

    /// Inserts a loaded snapshot under its own name. Name collisions
    /// *replace* the previous slot — the explicit, logged policy (a
    /// redeploy overwrites, it does not error) — and sessions already
    /// holding the old snapshot keep running over it undisturbed; their
    /// leases belong to the replaced slot and expire with them. Directly
    /// inserted snapshots carry no rebuild recipe, so the degradation
    /// ladder never unloads them.
    pub fn insert(&self, snapshot: Arc<Snapshot>) {
        self.insert_slot(snapshot, SlotSource::Direct);
    }

    fn insert_slot(&self, snapshot: Arc<Snapshot>, source: SlotSource) {
        let name = snapshot.name().to_string();
        let shape = (
            snapshot.collection().len(),
            snapshot.collection().distinct_entities(),
        );
        let slot = Slot {
            source,
            bytes: snapshot.collection_bytes(),
            built: Some(snapshot),
            shape: Some(shape),
            leases: Arc::new(AtomicUsize::new(0)),
            last_use: self.tick(),
            was_loaded: true,
        };
        if let Some(old) = self.write_slots().insert(name.clone(), slot) {
            obs::warn(&format!(
                "registry: replaced snapshot {name:?} ({} live sessions keep the old version)",
                old.leases.load(Ordering::Relaxed)
            ));
        }
    }

    /// Registers a fixture spec *without building it* (the spec is
    /// validated, nothing is allocated): the slot starts `registered` and
    /// is materialized lazily by the first `create` that names it.
    /// Returns the registry name (the spec itself). Replaces any previous
    /// slot under the same name, logged as in [`Registry::insert`].
    pub fn register_fixture(&self, spec: &str) -> Result<String, String> {
        parse_fixture_spec(spec)?;
        self.register_slot(spec.to_string(), SlotSource::Fixture(spec.to_string()));
        Ok(spec.to_string())
    }

    /// Registers a collection file *without reading it* beyond an
    /// existence check; parsed lazily on the first `create`. Replaces any
    /// previous slot under the same name, logged.
    pub fn register_file(&self, name: &str, path: &std::path::Path) -> Result<(), String> {
        std::fs::metadata(path).map_err(|e| format!("cannot stat {}: {e}", path.display()))?;
        self.register_slot(name.to_string(), SlotSource::File(path.to_path_buf()));
        Ok(())
    }

    fn register_slot(&self, name: String, source: SlotSource) {
        let slot = Slot {
            source,
            built: None,
            shape: None,
            bytes: 0,
            leases: Arc::new(AtomicUsize::new(0)),
            last_use: self.tick(),
            was_loaded: false,
        };
        if self.write_slots().insert(name.clone(), slot).is_some() {
            obs::warn(&format!(
                "registry: replaced snapshot {name:?} with a lazy registration"
            ));
        }
    }

    /// Looks up a *loaded* snapshot by name (no materialization — the
    /// read-only path `status` and the plan tooling use; `create` goes
    /// through [`Registry::acquire`]).
    pub fn get(&self, name: &str) -> Option<Arc<Snapshot>> {
        self.read_slots().get(name).and_then(|s| s.built.clone())
    }

    /// The snapshot for a `create`: materializes a `registered`/`unloaded`
    /// slot from its source and takes a session lease that shields the
    /// slot from the degradation ladder until the lease drops. The armed
    /// chaos sites fire here: `registry.load` gates admission of the load
    /// itself, `snapshot.build` the build allocation — either refusal
    /// surfaces as [`AcquireError::Pressure`] and the slot stays unbuilt.
    ///
    /// `Ok(None)` means the name is unknown. Materialization holds the
    /// registry lock (a deliberate simplification: one cold load at a
    /// time; warm acquires on other collections queue behind it).
    pub fn acquire(
        &self,
        name: &str,
    ) -> Result<Option<(Arc<Snapshot>, SnapshotLease)>, AcquireError> {
        let stamp = self.tick();
        let mut slots = self.write_slots();
        let Some(slot) = slots.get_mut(name) else {
            return Ok(None);
        };
        slot.last_use = stamp;
        if slot.built.is_none() {
            if faults::alloc_pressure("registry.load") {
                self.governor.sheds.fetch_add(1, Ordering::Relaxed);
                self.governor.note(format!("shed load {name}"));
                return Err(AcquireError::Pressure(format!(
                    "memory pressure: collection {name:?} cannot be loaded right now"
                )));
            }
            let snapshot = match build_slot(name, &slot.source) {
                Ok(s) => s,
                Err(e) => {
                    if matches!(e, AcquireError::Pressure(_)) {
                        self.governor.sheds.fetch_add(1, Ordering::Relaxed);
                        self.governor.note(format!("shed build {name}"));
                    }
                    return Err(e);
                }
            };
            slot.bytes = snapshot.collection_bytes();
            slot.shape = Some((
                snapshot.collection().len(),
                snapshot.collection().distinct_entities(),
            ));
            slot.was_loaded = true;
            slot.built = Some(snapshot);
        }
        let snapshot = Arc::clone(slot.built.as_ref().expect("just built"));
        let lease = SnapshotLease::take(&slot.leases);
        Ok(Some((snapshot, lease)))
    }

    /// Materializes a slot without keeping a lease (the `serve` binary's
    /// warm plan boot uses this to build snapshots it wants to attach a
    /// persisted plan cache to).
    pub fn materialize(&self, name: &str) -> Result<(), String> {
        match self.acquire(name) {
            Ok(Some(_)) => Ok(()),
            Ok(None) => Err(format!("unknown collection {name:?}")),
            Err(AcquireError::Pressure(e)) | Err(AcquireError::Build(e)) => Err(e),
        }
    }

    /// Admission check for a new session: `session_bytes` is the session
    /// table's accounted total *including* the candidate entry. Within
    /// budget (or ungoverned) this returns true untouched; over budget
    /// the degradation ladder runs — plan-cache shrinks, then
    /// cold-snapshot unloads — and only if the budget is still
    /// unreachable does it return false (counted as a shed; the caller
    /// replies `overloaded`).
    pub fn admit(&self, session_bytes: usize) -> bool {
        let budget = self.governor.budget();
        if budget == 0 || self.run_ladder(session_bytes, budget) {
            return true;
        }
        self.governor.sheds.fetch_add(1, Ordering::Relaxed);
        self.governor.note("shed create".to_string());
        false
    }

    /// Post-shed cleanup: re-walks the ladder without counting a shed, so
    /// a refused create's freshly materialized snapshot (now lease-free)
    /// is released promptly instead of squatting over the budget until
    /// the next create.
    pub fn reclaim(&self, session_bytes: usize) {
        let budget = self.governor.budget();
        if budget != 0 {
            let _ = self.run_ladder(session_bytes, budget);
        }
    }

    /// The degradation ladder. Rung 1: halve plan-cache capacities (bytes
    /// follow via eviction) toward [`PLAN_CACHE_FLOOR`], name-sorted,
    /// until under budget or every cache is at its floor. Rung 2: unload
    /// cold snapshots — coldest last-use first, name tie-break — skipping
    /// leased slots (live sessions) and direct inserts (no rebuild
    /// recipe). Returns false when both rungs are exhausted and the total
    /// still exceeds the budget.
    fn run_ladder(&self, session_bytes: usize, budget: usize) -> bool {
        fn total(slots: &FxHashMap<String, Slot>, session_bytes: usize) -> usize {
            slots
                .values()
                .map(|s| s.bytes + s.plan_bytes())
                .sum::<usize>()
                + session_bytes
        }
        let mut slots = self.write_slots();
        if total(&slots, session_bytes) <= budget {
            return true;
        }
        loop {
            let mut names: Vec<String> = slots
                .iter()
                .filter(|(_, s)| {
                    s.built
                        .as_ref()
                        .and_then(|b| b.plan_cache())
                        .is_some_and(|c| c.capacity() > PLAN_CACHE_FLOOR)
                })
                .map(|(n, _)| n.clone())
                .collect();
            if names.is_empty() {
                break;
            }
            names.sort();
            for name in names {
                let Some(cache) = slots
                    .get(&name)
                    .and_then(|s| s.built.as_ref())
                    .and_then(|b| b.plan_cache())
                else {
                    continue;
                };
                let cap = cache.capacity();
                if cap <= PLAN_CACHE_FLOOR {
                    continue;
                }
                let target = (cap / 2).max(PLAN_CACHE_FLOOR);
                cache.shrink_to(target);
                self.governor.plan_shrinks.fetch_add(1, Ordering::Relaxed);
                self.governor
                    .note(format!("plan.shrink {name} {cap}->{target}"));
                if total(&slots, session_bytes) <= budget {
                    return true;
                }
            }
        }
        while let Some(name) = slots
            .iter()
            .filter(|(_, s)| {
                s.built.is_some()
                    && s.leases.load(Ordering::Relaxed) == 0
                    && !matches!(s.source, SlotSource::Direct)
            })
            .min_by(|a, b| a.1.last_use.cmp(&b.1.last_use).then_with(|| a.0.cmp(b.0)))
            .map(|(n, _)| n.clone())
        {
            let slot = slots.get_mut(&name).expect("selected above");
            let freed = slot.bytes + slot.plan_bytes();
            slot.built = None;
            slot.bytes = 0;
            self.governor.unloads.fetch_add(1, Ordering::Relaxed);
            self.governor.note(format!("unload {name} {freed}"));
            if total(&slots, session_bytes) <= budget {
                return true;
            }
        }
        false
    }

    /// Accounted bytes of every loaded collection.
    pub fn collections_bytes(&self) -> usize {
        self.read_slots().values().map(|s| s.bytes).sum()
    }

    /// Accounted bytes of every loaded snapshot's plan cache.
    pub fn plan_cache_bytes(&self) -> usize {
        self.read_slots().values().map(Slot::plan_bytes).sum()
    }

    /// Every *loaded* snapshot, name-sorted (the service-status path —
    /// shape *and* plan-cache statistics come from the snapshots
    /// themselves; registered/unloaded slots have neither resident).
    pub fn snapshots(&self) -> Vec<Arc<Snapshot>> {
        let mut out: Vec<Arc<Snapshot>> = self
            .read_slots()
            .values()
            .filter_map(|s| s.built.clone())
            .collect();
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }

    /// Every slot with shape, governance state, and byte accounting,
    /// name-sorted.
    pub fn list(&self) -> Vec<SnapshotInfo> {
        let slots = self.read_slots();
        let mut out: Vec<SnapshotInfo> = slots
            .iter()
            .map(|(name, slot)| {
                let (sets, entities) = slot.shape.unwrap_or((0, 0));
                SnapshotInfo {
                    name: name.clone(),
                    sets,
                    entities,
                    state: slot.state(),
                    bytes: slot.bytes,
                    plan_bytes: slot.plan_bytes(),
                    live_sessions: slot.leases.load(Ordering::Relaxed),
                }
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Loads a text-format collection file under `name` (eagerly; the
    /// slot is unload-eligible and re-reads the file on rematerialize).
    pub fn load_file(&self, name: &str, path: &std::path::Path) -> Result<(), String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        self.insert_slot(Snapshot::parse(name, &text)?, SlotSource::File(path.into()));
        Ok(())
    }

    /// Installs a built-in fixture eagerly and returns its registry name.
    /// The slot keeps its spec as the rebuild source, so the governor may
    /// unload it when cold and rebuild it deterministically on demand.
    ///
    /// Specs: `figure1` (the paper's 7-set example) or
    /// `copyadd:<n_sets>:<overlap>:<seed>` (the §5.2.2 copy-add generator
    /// with set sizes 20–30). Fixture generation is deterministic, so a
    /// load-harness client can install the same spec locally and know the
    /// server's set contents without transferring them.
    pub fn install_fixture(&self, spec: &str) -> Result<String, String> {
        let snapshot = fixture(spec)?;
        let name = snapshot.name().to_string();
        self.insert_slot(snapshot, SlotSource::Fixture(spec.to_string()));
        Ok(name)
    }
}

/// Materializes a slot from its rebuild source, passing the
/// `snapshot.build` chaos gate first.
fn build_slot(name: &str, source: &SlotSource) -> Result<Arc<Snapshot>, AcquireError> {
    if faults::alloc_pressure("snapshot.build") {
        return Err(AcquireError::Pressure(format!(
            "memory pressure: building collection {name:?} was aborted"
        )));
    }
    match source {
        SlotSource::Fixture(spec) => fixture(spec).map_err(AcquireError::Build),
        SlotSource::File(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| AcquireError::Build(format!("cannot read {}: {e}", path.display())))?;
            Snapshot::parse(name, &text).map_err(AcquireError::Build)
        }
        SlotSource::Direct => Err(AcquireError::Build(format!(
            "snapshot {name:?} has no rebuild source"
        ))),
    }
}

/// A parsed fixture spec (validation without construction — what lazy
/// registration checks up front).
enum FixtureSpec {
    Figure1,
    CopyAdd {
        n_sets: usize,
        overlap: f64,
        seed: u64,
    },
}

fn parse_fixture_spec(spec: &str) -> Result<FixtureSpec, String> {
    if spec == "figure1" {
        return Ok(FixtureSpec::Figure1);
    }
    if let Some(rest) = spec.strip_prefix("copyadd:") {
        let parts: Vec<&str> = rest.split(':').collect();
        let [n, alpha, seed] = parts.as_slice() else {
            return Err(format!(
                "bad copyadd spec {spec:?} (want copyadd:<n>:<alpha>:<seed>)"
            ));
        };
        let n_sets: usize = n.parse().map_err(|_| format!("bad set count {n:?}"))?;
        let overlap: f64 = alpha
            .parse()
            .map_err(|_| format!("bad overlap {alpha:?}"))?;
        let seed: u64 = seed.parse().map_err(|_| format!("bad seed {seed:?}"))?;
        if n_sets < 2 || !(0.0..1.0).contains(&overlap) {
            return Err(format!("copyadd spec {spec:?} out of range"));
        }
        return Ok(FixtureSpec::CopyAdd {
            n_sets,
            overlap,
            seed,
        });
    }
    Err(format!(
        "unknown fixture {spec:?} (want figure1 or copyadd:<n>:<alpha>:<seed>)"
    ))
}

/// Builds a fixture snapshot from a spec string (see
/// [`Registry::install_fixture`]).
pub fn fixture(spec: &str) -> Result<Arc<Snapshot>, String> {
    match parse_fixture_spec(spec)? {
        FixtureSpec::Figure1 => Snapshot::parse("figure1", FIGURE1_TEXT),
        FixtureSpec::CopyAdd {
            n_sets,
            overlap,
            seed,
        } => {
            let collection = generate_copy_add(&CopyAddConfig {
                n_sets,
                size_range: (20, 30),
                overlap,
                seed,
            });
            Ok(Snapshot::from_collection(spec, collection))
        }
    }
}

/// Figure 1 of the paper in the text format (entities a..k).
const FIGURE1_TEXT: &str = "\
S1: a b c d
S2: a d e
S3: a b c d f
S4: a b c g h
S5: a b h i
S6: a b j k
S7: a b g
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_fixture_matches_paper_shape() {
        let r = Registry::new();
        let name = r.install_fixture("figure1").unwrap();
        let snap = r.get(&name).unwrap();
        assert_eq!(snap.collection().len(), 7);
        assert_eq!(snap.collection().distinct_entities(), 11);
        assert_eq!(snap.set_label(SetId(0)), "S1");
        let d = snap.resolve_entity("d").unwrap();
        assert_eq!(snap.collection().sets_containing(d).len(), 3);
        assert_eq!(snap.entity_label(d), "d");
        // Named collections must not fall back to numeric guessing: "e2"
        // is not an interned name here, even though EntityId(2) exists.
        assert_eq!(snap.resolve_entity("e2"), None);
        assert_eq!(snap.resolve_entity("zzz"), None);
    }

    #[test]
    fn copyadd_fixture_is_deterministic() {
        let a = fixture("copyadd:40:0.8:3").unwrap();
        let b = fixture("copyadd:40:0.8:3").unwrap();
        assert_eq!(a.collection().len(), b.collection().len());
        for (id, set) in a.collection().iter() {
            assert_eq!(set.fingerprint(), b.collection().set(id).fingerprint());
        }
        // Unnamed entities resolve through the e<id> notation.
        assert_eq!(a.resolve_entity("e0"), Some(EntityId(0)));
        assert_eq!(a.resolve_entity("e999999"), None);
        assert_eq!(a.entity_label(EntityId(0)), "e0");
    }

    #[test]
    fn bad_fixture_specs_error() {
        for bad in [
            "nope",
            "copyadd:1:0.5:0",
            "copyadd:10:1.5:0",
            "copyadd:10:0.5",
            "copyadd:x:0.5:0",
        ] {
            assert!(fixture(bad).is_err(), "{bad}");
            assert!(Registry::new().register_fixture(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn registry_replacement_keeps_old_arcs_alive() {
        let r = Registry::new();
        r.install_fixture("figure1").unwrap();
        let old = r.get("figure1").unwrap();
        // A lease on the old snapshot must not bleed into the new slot.
        let (_snap, old_lease) = r.acquire("figure1").unwrap().unwrap();
        // Replace under the same name with a different collection — the
        // pinned collision policy: replace (with a log line), never error.
        r.insert(Snapshot::parse("figure1", "x: p q\ny: q r\n").unwrap());
        let new = r.get("figure1").unwrap();
        assert_eq!(old.collection().len(), 7, "old snapshot untouched");
        assert_eq!(new.collection().len(), 2);
        assert_eq!(r.list().len(), 1);
        assert_eq!(
            r.list()[0].live_sessions,
            0,
            "old leases do not count against the replacement"
        );
        drop(old_lease);
    }

    #[test]
    fn lazy_registration_materializes_on_first_acquire() {
        let r = Registry::new();
        r.register_fixture("copyadd:10:0.5:1").unwrap();
        let info = &r.list()[0];
        assert_eq!(info.state, "registered");
        assert_eq!((info.sets, info.entities), (0, 0), "shape unknown");
        assert_eq!(info.bytes, 0, "nothing resident");
        assert!(r.get("copyadd:10:0.5:1").is_none(), "get never builds");
        assert!(r.snapshots().is_empty(), "status sees loaded slots only");

        let (snap, lease) = r.acquire("copyadd:10:0.5:1").unwrap().unwrap();
        assert_eq!(snap.collection().len(), 10);
        let info = &r.list()[0];
        assert_eq!(info.state, "loaded");
        assert_eq!(info.sets, 10);
        assert!(info.bytes > 0);
        assert_eq!(info.live_sessions, 1);
        drop(lease);
        assert_eq!(r.list()[0].live_sessions, 0);
        // Unknown names are a clean miss, not an error.
        assert!(matches!(r.acquire("nope"), Ok(None)));
    }

    #[test]
    fn register_file_defers_the_read_and_rebuilds_after_unload() {
        let dir = std::env::temp_dir().join(format!("setdisc_reg_file_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.txt");
        std::fs::remove_file(&path).ok();
        assert!(
            Registry::new().register_file("tiny", &path).is_err(),
            "missing file refused at registration"
        );
        std::fs::write(&path, "a: x y\nb: y z\n").unwrap();
        let r = Registry::new();
        r.register_file("tiny", &path).unwrap();
        assert_eq!(r.list()[0].state, "registered");
        let (snap, lease) = r.acquire("tiny").unwrap().unwrap();
        assert_eq!(snap.collection().len(), 2);
        drop(lease);
        // Force an unload through the governor, then rematerialize.
        r.set_budget(1);
        assert!(r.admit(0), "unloading the cold file slot meets the budget");
        assert_eq!(r.list()[0].state, "unloaded");
        r.set_budget(0);
        let (again, _lease) = r.acquire("tiny").unwrap().unwrap();
        assert_eq!(again.collection().len(), 2, "rebuilt from the file");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ladder_spares_leased_snapshots_and_sheds_when_exhausted() {
        let r = Registry::new();
        r.install_fixture("figure1").unwrap();
        let bytes = r.collections_bytes();
        assert!(bytes > 0);
        r.set_budget(bytes / 2);
        // With a live lease the only unload candidate is protected: the
        // ladder is exhausted and the create is shed.
        let (_snap, lease) = r.acquire("figure1").unwrap().unwrap();
        assert!(!r.admit(0));
        assert_eq!(r.governor().sheds(), 1);
        assert_eq!(r.governor().unloads(), 0);
        assert_eq!(r.list()[0].state, "loaded", "leased snapshot survives");
        // Lease released: the same pressure unloads the cold snapshot
        // instead of shedding.
        drop(lease);
        assert!(r.admit(0));
        assert_eq!(r.governor().unloads(), 1);
        assert_eq!(r.list()[0].state, "unloaded");
        assert_eq!(r.collections_bytes(), 0);
        // Rematerialization is deterministic.
        let (snap, _lease) = r.acquire("figure1").unwrap().unwrap();
        assert_eq!(snap.collection().len(), 7);
    }

    #[test]
    fn direct_inserts_are_never_unloaded() {
        let r = Registry::new();
        r.insert(Snapshot::parse("direct", "x: p q\ny: q r\n").unwrap());
        r.set_budget(1);
        assert!(!r.admit(0), "nothing unloadable: over-budget sheds");
        assert_eq!(r.list()[0].state, "loaded");
        assert_eq!(r.governor().unloads(), 0);
    }

    #[test]
    fn ladder_shrinks_plans_before_unloading() {
        use setdisc_plan::{PlanKey, PlanNode, StrategyKey};
        use setdisc_util::Fingerprint;
        let r = Registry::new();
        r.install_fixture("figure1").unwrap();
        let snap = r.get("figure1").unwrap();
        let cache = snap.plan_cache_or_init(1 << 12);
        let strategy = StrategyKey {
            family: 0,
            metric: 0,
            k: 2,
            beam: 0,
            weight_fp: 0,
        };
        for i in 0..512u64 {
            cache.insert(
                PlanKey {
                    strategy,
                    fp: Fingerprint::of(i),
                    len: 7,
                },
                PlanNode {
                    entity: EntityId((i % 11) as u32),
                    bound: 17,
                    informative: 5,
                    evaluated: 2,
                    yes: (Fingerprint::of(1), 3),
                    no: (Fingerprint::of(2), 4),
                },
            );
        }
        // Budget admits the collection and ~60% of the plan bytes: rung 1
        // (shrink toward the floor) must fire and suffice, rung 2 must
        // not — the snapshot itself stays loaded.
        r.set_budget(r.collections_bytes() + r.plan_cache_bytes() * 6 / 10);
        let (_s, _lease) = r.acquire("figure1").unwrap().unwrap();
        assert!(r.admit(0));
        assert!(r.governor().plan_shrinks() > 0, "rung 1 engaged");
        assert_eq!(r.governor().unloads(), 0, "rung 2 never reached");
        assert!(cache.capacity() < 1 << 12, "capacity actually lowered");
        assert_eq!(r.list()[0].state, "loaded");
        let events = r.governor().events();
        assert!(
            events.iter().all(|e| e.starts_with("plan.shrink")),
            "{events:?}"
        );
    }

    #[test]
    fn plan_cache_installs_once_and_validates_collection() {
        let snap = fixture("figure1").unwrap();
        assert!(snap.plan_cache().is_none());
        assert_eq!(snap.plan_bytes(), 0);
        let lazy = snap.plan_cache_or_init(128);
        assert!(Arc::ptr_eq(&lazy, &snap.plan_cache_or_init(999)));
        // A second install is rejected — the lazy cache is already live.
        let fresh = Arc::new(PlanCache::for_collection(snap.collection(), 64));
        assert!(snap.install_plan_cache(fresh).is_err());
        // A cache for a different collection never attaches.
        let other = fixture("copyadd:10:0.5:1").unwrap();
        let mismatched = Arc::new(PlanCache::for_collection(other.collection(), 64));
        let snap2 = fixture("figure1").unwrap();
        assert!(snap2.install_plan_cache(mismatched).is_err());
        let matching = Arc::new(PlanCache::for_collection(snap2.collection(), 64));
        snap2.install_plan_cache(Arc::clone(&matching)).unwrap();
        assert!(Arc::ptr_eq(&snap2.plan_cache().unwrap(), &matching));
        assert!(Arc::ptr_eq(&snap2.plan_cache_or_init(128), &matching));
    }

    #[test]
    fn registry_snapshots_are_name_sorted() {
        let r = Registry::new();
        r.install_fixture("figure1").unwrap();
        r.install_fixture("copyadd:10:0.5:1").unwrap();
        let snaps = r.snapshots();
        assert_eq!(
            snaps.iter().map(|s| s.name()).collect::<Vec<_>>(),
            vec!["copyadd:10:0.5:1", "figure1"]
        );
    }

    #[test]
    fn handle_derefs_to_collection() {
        let snap = fixture("figure1").unwrap();
        let handle = SnapshotHandle(Arc::clone(&snap));
        assert_eq!(handle.len(), 7);
        let again = handle.clone();
        assert_eq!(again.universe(), snap.collection().universe());
    }

    #[test]
    fn collection_bytes_are_deterministic_and_cover_the_payload() {
        let a = fixture("copyadd:40:0.8:3").unwrap();
        let b = fixture("copyadd:40:0.8:3").unwrap();
        assert_eq!(a.collection_bytes(), b.collection_bytes());
        let elements: usize = a.collection().iter().map(|(_, s)| s.len()).sum();
        assert!(
            a.collection_bytes() >= elements * 4,
            "accounting must at least cover the raw element storage"
        );
    }

    #[test]
    fn postings_index_is_shared_not_rebuilt() {
        // Every handle clone must see the same postings index instance —
        // the words slice of a dense entity resolves to the same memory.
        let snap = fixture("copyadd:80:0.8:3").unwrap();
        let a = SnapshotHandle(Arc::clone(&snap));
        let b = a.clone();
        let e = (0..a.universe())
            .map(EntityId)
            .find(|&e| a.postings().dense(e).is_some())
            .expect("a dense entity exists at n=80");
        assert_eq!(
            a.postings().dense(e).unwrap().words().as_ptr(),
            b.postings().dense(e).unwrap().words().as_ptr(),
            "postings bitmaps shared through the Arc"
        );
    }
}
