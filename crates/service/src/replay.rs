//! Deterministic replay of a session journal.
//!
//! [`replay_dir`] reads a journal directory written by
//! [`crate::journal::ServiceJournal`], rebuilds the service the journal's
//! meta record describes — same collection recipes, same limits, same
//! fault spec, same obs arming — and re-drives every recorded request
//! through a fresh in-process [`crate::Service`], byte-diffing each
//! response against the recorded one.
//!
//! Determinism rests on three pinned properties: session ids are assigned
//! from a fresh counter in dispatch order (never reused), selection is
//! bit-identical across runs for a fixed collection/strategy/seed (the
//! engine is sans-IO; the plan cache is a perf knob that cannot change
//! answers), and fault streams are seeded per site, so the same spec trips
//! the same dispatch ordinals. A journal of ops whose responses embed
//! wall-clock measurements (`trace` with its `select_us`, armed `metrics`
//! histograms) will of course diff there — the CI record→replay stage
//! journals only deterministic transcripts. The one deliberate carve-out
//! is the provenance record's `count_ns` (the *measured* counting-pass
//! time next to the predicted cost): every other explain field is pinned
//! by the determinism contract, so the diff masks that field to `0` on
//! both sides instead of excluding explain from replay wholesale.
//!
//! A resumed journal directory (server restarted into the same `--journal`
//! dir) holds several meta records, one per run. Each meta re-arms and
//! **rebuilds the service from scratch** — a restart loses live sessions,
//! and the replay faithfully reproduces exactly that.

use crate::journal::{Exchange, JournalMeta};
use crate::{Service, ServiceConfig};
use setdisc_util::journal::read_dir;
use std::path::Path;

/// The outcome of a replay: totals plus the first few mismatches, already
/// rendered for the terminal.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Meta records encountered (one per server run in the directory).
    pub runs: u64,
    /// Exchanges re-driven.
    pub exchanges: u64,
    /// Exchanges whose replayed response differed from the recorded one.
    pub mismatches: u64,
    /// Human-readable diagnostics for the first mismatches (capped).
    pub diagnostics: Vec<String>,
}

impl ReplayReport {
    /// True when every recorded response was reproduced byte-identically.
    pub fn ok(&self) -> bool {
        self.mismatches == 0
    }
}

/// How many mismatch diagnostics to keep (the count is always exact).
const MAX_DIAGNOSTICS: usize = 8;

/// Masks the one measured-wall-clock field a deterministic response can
/// carry — the provenance record's `"count_ns":N` — to `0`, so explain
/// responses byte-diff on their deterministic content only.
fn mask_count_ns(resp: &str) -> std::borrow::Cow<'_, str> {
    const KEY: &str = "\"count_ns\":";
    if !resp.contains(KEY) {
        return std::borrow::Cow::Borrowed(resp);
    }
    let mut out = String::with_capacity(resp.len());
    let mut rest = resp;
    while let Some(pos) = rest.find(KEY) {
        out.push_str(&rest[..pos + KEY.len()]);
        out.push('0');
        rest = rest[pos + KEY.len()..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    std::borrow::Cow::Owned(out)
}

/// Builds the service a meta record describes: limits from the meta,
/// collections from its recipes. Fault/obs arming is the caller's step
/// ([`JournalMeta::arm`]) — kept separate so tests can replay without
/// touching process-global state.
pub fn build_service(meta: &JournalMeta) -> Result<Service, String> {
    let config = ServiceConfig {
        max_sessions: meta.max_sessions,
        default_budget: meta.default_budget,
        plan_cache_capacity: meta.plan_capacity,
        memory: meta.memory,
        ..ServiceConfig::default()
    };
    let service = Service::new(config);
    for recipe in &meta.collections {
        let (kind, spec) = recipe
            .split_once(':')
            .ok_or_else(|| format!("malformed collection recipe {recipe:?}"))?;
        match kind {
            "fixture" => {
                service.registry().install_fixture(spec)?;
            }
            "register" => {
                service.registry().register_fixture(spec)?;
            }
            "load" => {
                let (name, path) = spec
                    .split_once('=')
                    .ok_or_else(|| format!("malformed load recipe {recipe:?}"))?;
                service.registry().load_file(name, Path::new(path))?;
            }
            other => return Err(format!("unknown collection recipe kind {other:?}")),
        }
    }
    Ok(service)
}

/// Replays a journal directory. `arm` controls whether each run's meta
/// record re-installs its fault spec and obs switch (process-global; the
/// replay binary arms, in-process tests that must not disturb their
/// process pass `false` only when the journal was recorded unarmed).
pub fn replay_dir(dir: &Path, arm: bool) -> Result<ReplayReport, String> {
    let lines = read_dir(dir).map_err(|e| format!("read journal {}: {e}", dir.display()))?;
    if lines.is_empty() {
        return Err(format!("journal {} is empty", dir.display()));
    }
    let mut report = ReplayReport::default();
    let mut service: Option<Service> = None;
    for line in &lines {
        if let Ok(meta) = JournalMeta::parse(line) {
            // A new run: rebuild the world exactly as that run booted it.
            if arm {
                meta.arm()?;
            }
            service = Some(build_service(&meta)?);
            report.runs += 1;
            continue;
        }
        let exchange = Exchange::parse(line)?;
        let service = service
            .as_ref()
            .ok_or("journal has exchanges before any meta record")?;
        let got = service.handle_line(&exchange.req);
        report.exchanges += 1;
        if mask_count_ns(&got) != mask_count_ns(&exchange.resp) {
            report.mismatches += 1;
            if report.diagnostics.len() < MAX_DIAGNOSTICS {
                report.diagnostics.push(format!(
                    "seq {}:\n  req:      {}\n  recorded: {}\n  replayed: {}",
                    exchange.seq, exchange.req, exchange.resp, got
                ));
            }
        }
    }
    if report.runs == 0 {
        return Err("journal contains no meta record".into());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::ServiceJournal;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("setdisc_replay_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// Journals a full truthful conversation, then replays it.
    #[test]
    fn journaled_conversation_replays_byte_identically() {
        let dir = temp_dir("conv");
        let meta = JournalMeta {
            obs: false,
            faults: None,
            default_budget: 10_000,
            max_sessions: 100_000,
            plan_capacity: 1 << 18,
            memory: None,
            collections: vec!["fixture:figure1".into()],
        };
        let mut service = build_service(&meta).unwrap();
        service.set_journal(ServiceJournal::open(&dir, &meta).unwrap());
        // Drive a full discovery of S2 = {a, d, e} plus every other op
        // shape, including a parse error and an unknown session.
        let target = ["a", "d", "e"];
        let drive = |line: &str| -> String { service.handle_line(line) };
        drive(r#"{"op":"collections"}"#);
        drive(r#"{"op":"create","collection":"figure1"}"#);
        loop {
            let resp = drive(r#"{"op":"ask","session":1}"#);
            if resp.contains("\"done\":true") {
                break;
            }
            let entity = resp
                .split("\"entity\":\"")
                .nth(1)
                .unwrap()
                .split('"')
                .next()
                .unwrap()
                .to_string();
            let ans = if target.contains(&entity.as_str()) {
                "yes"
            } else {
                "no"
            };
            drive(&format!(
                r#"{{"op":"answer","session":1,"entity":"{entity}","answer":"{ans}"}}"#
            ));
        }
        drive(r#"{"op":"status","session":1}"#);
        drive(r#"{"op":"status"}"#);
        drive("garbage");
        drive(r#"{"op":"ask","session":99}"#);
        drive(r#"{"op":"close","session":1}"#);
        drop(service); // syncs the journal
        let report = replay_dir(&dir, false).unwrap();
        assert!(report.ok(), "{:#?}", report.diagnostics);
        assert_eq!(report.runs, 1);
        assert!(report.exchanges >= 8);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A restarted server appends a second meta record; replay rebuilds
    /// from scratch at that point, reproducing the session loss.
    #[test]
    fn multi_run_journal_replays_each_run_fresh() {
        let dir = temp_dir("restart");
        let meta = JournalMeta {
            obs: false,
            faults: None,
            default_budget: 10_000,
            max_sessions: 100_000,
            plan_capacity: 1 << 18,
            memory: None,
            collections: vec!["fixture:figure1".into()],
        };
        for _ in 0..2 {
            let mut service = build_service(&meta).unwrap();
            service.set_journal(ServiceJournal::open(&dir, &meta).unwrap());
            service.handle_line(r#"{"op":"create","collection":"figure1"}"#);
            service.handle_line(r#"{"op":"ask","session":1}"#);
            // Session 1 of the *first* run is gone after the restart: the
            // second run's create gets id 1 again from its fresh counter.
        }
        let report = replay_dir(&dir, false).unwrap();
        assert!(report.ok(), "{:#?}", report.diagnostics);
        assert_eq!(report.runs, 2);
        assert_eq!(report.exchanges, 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A mismatch is detected and reported, not silently tolerated.
    #[test]
    fn tampered_journal_fails_the_byte_diff() {
        let dir = temp_dir("tamper");
        let meta = JournalMeta {
            obs: false,
            faults: None,
            default_budget: 10_000,
            max_sessions: 100_000,
            plan_capacity: 1 << 18,
            memory: None,
            collections: vec!["fixture:figure1".into()],
        };
        let mut service = build_service(&meta).unwrap();
        service.set_journal(ServiceJournal::open(&dir, &meta).unwrap());
        service.handle_line(r#"{"op":"create","collection":"figure1"}"#);
        drop(service);
        // Tamper: rewrite the recorded candidate count (the response is a
        // JSON string inside the record, so its quotes are escaped).
        let seg = setdisc_util::journal::segment_paths(&dir)
            .unwrap()
            .pop()
            .unwrap();
        let text = std::fs::read_to_string(&seg).unwrap();
        let tampered = text.replace(r#"\"candidates\":7"#, r#"\"candidates\":8"#);
        assert_ne!(tampered, text, "tamper pattern must hit");
        std::fs::write(&seg, tampered).unwrap();
        let report = replay_dir(&dir, false).unwrap();
        assert_eq!(report.mismatches, 1);
        assert!(!report.ok());
        assert_eq!(report.diagnostics.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A journal forced across many segment rotations replays exactly like
    /// a single-segment one — rotation never splits a record.
    #[test]
    fn rotation_boundary_replays_clean() {
        let dir = temp_dir("rotate");
        let meta = JournalMeta {
            obs: false,
            faults: None,
            default_budget: 10_000,
            max_sessions: 100_000,
            plan_capacity: 1 << 18,
            memory: None,
            collections: vec!["fixture:figure1".into()],
        };
        let mut service = build_service(&meta).unwrap();
        // A 256-byte threshold rotates roughly every exchange record.
        service.set_journal(ServiceJournal::open_with_rotation(&dir, &meta, 256).unwrap());
        service.handle_line(r#"{"op":"create","collection":"figure1"}"#);
        let mut driven = 1u64;
        loop {
            let resp = service.handle_line(r#"{"op":"ask","session":1}"#);
            driven += 1;
            if resp.contains(r#""done":true"#) {
                break;
            }
            let entity = resp
                .split(r#""entity":""#)
                .nth(1)
                .and_then(|rest| rest.split('"').next())
                .expect("ask carries an entity")
                .to_string();
            service.handle_line(&format!(
                r#"{{"op":"answer","session":1,"entity":"{entity}","answer":"no"}}"#
            ));
            driven += 1;
        }
        drop(service);
        let segments = setdisc_util::journal::segment_paths(&dir).unwrap();
        assert!(segments.len() >= 3, "expected rotations, got {segments:?}");
        let report = replay_dir(&dir, false).unwrap();
        assert!(report.ok(), "{:#?}", report.diagnostics);
        assert_eq!(report.exchanges, driven);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Explain responses embed the measured counting-pass time; the diff
    /// masks that one field, so an explain-armed journal replays clean
    /// while every deterministic provenance field still participates.
    #[test]
    fn explain_armed_journal_replays_with_count_ns_masked() {
        assert_eq!(
            mask_count_ns(r#"a"count_ns":12345,"b":1"#),
            r#"a"count_ns":0,"b":1"#
        );
        assert!(matches!(
            mask_count_ns("no timing here"),
            std::borrow::Cow::Borrowed(_)
        ));
        let dir = temp_dir("explain");
        let meta = JournalMeta {
            obs: false,
            faults: None,
            default_budget: 10_000,
            max_sessions: 100_000,
            plan_capacity: 1 << 18,
            memory: None,
            collections: vec!["fixture:figure1".into()],
        };
        let mut service = build_service(&meta).unwrap();
        service.set_journal(ServiceJournal::open(&dir, &meta).unwrap());
        service.handle_line(r#"{"op":"create","collection":"figure1","explain":true}"#);
        service.handle_line(r#"{"op":"ask","session":1}"#);
        let resp = service.handle_line(r#"{"op":"explain","session":1}"#);
        assert!(resp.contains(r#""count_ns":"#), "provenance was recorded");
        drop(service);
        let report = replay_dir(&dir, false).unwrap();
        assert!(report.ok(), "{:#?}", report.diagnostics);
        assert_eq!(report.exchanges, 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Torn tails (a crash mid-append) drop whole exchanges, never half of
    /// one — the surviving prefix still replays clean.
    #[test]
    fn torn_tail_drops_whole_exchanges_and_prefix_replays() {
        let dir = temp_dir("torn");
        let meta = JournalMeta {
            obs: false,
            faults: None,
            default_budget: 10_000,
            max_sessions: 100_000,
            plan_capacity: 1 << 18,
            memory: None,
            collections: vec!["fixture:figure1".into()],
        };
        let mut service = build_service(&meta).unwrap();
        service.set_journal(ServiceJournal::open(&dir, &meta).unwrap());
        service.handle_line(r#"{"op":"create","collection":"figure1"}"#);
        service.handle_line(r#"{"op":"ask","session":1}"#);
        drop(service);
        // Simulate the crash: truncate the segment mid-record.
        let seg = setdisc_util::journal::segment_paths(&dir)
            .unwrap()
            .pop()
            .unwrap();
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 7]).unwrap();
        let report = replay_dir(&dir, false).unwrap();
        assert!(report.ok(), "{:#?}", report.diagnostics);
        assert_eq!(report.exchanges, 1, "the torn ask exchange is dropped");
        std::fs::remove_dir_all(&dir).ok();
    }
}
