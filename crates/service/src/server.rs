//! Transports for the wire protocol: TCP (thread per connection) and stdio.
//!
//! Both transports are line loops over [`Service::handle_line`]; all
//! protocol logic lives in [`crate::service`]. What this module adds is
//! the *hardened edge* (DESIGN.md §11): every byte read from a peer is
//! bounded ([`BoundedLineReader`], [`EdgeLimits::max_line_bytes`]), every
//! connection carries read/write deadlines and a per-connection request
//! cap, the accept loop sheds connections over a global cap with a
//! structured `overloaded` + `retry_after` reply instead of queueing them,
//! transient `accept()` failures (EMFILE, ECONNABORTED) are retried with
//! bounded backoff, and [`TcpServer::shutdown`] stops accepting, drains
//! in-flight connections against a deadline, and reports whether the
//! drain completed — symmetric with the stdio loop's EOF path.
//!
//! The accept loop can be run on the caller's thread ([`serve_tcp`]) or
//! detached ([`spawn_tcp`] / [`TcpServer::start`]), which is how tests,
//! the example, and the load harness's socket mode stand up a real server
//! inside one process.

use crate::proto::error_response_coded;
use crate::service::{EdgeStats, Service};
use setdisc_util::obs;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Limits the transport edge enforces per peer and globally. All the caps
/// exist to convert hostile or broken client behavior (unbounded lines,
/// dead connections, request floods) into *structured, bounded* failures
/// instead of memory growth or wedged threads.
#[derive(Clone, Debug)]
pub struct EdgeLimits {
    /// Longest accepted request line in bytes; longer lines are answered
    /// with a `too_large` error (TCP additionally closes the connection —
    /// the frame boundary is unknowable past the cap).
    pub max_line_bytes: usize,
    /// Requests served per connection before it is recycled with an
    /// `overloaded` reply (bounds per-connection resource drift; clients
    /// reconnect and continue — session state lives in the table, not the
    /// connection).
    pub max_requests_per_conn: u64,
    /// Global live-connection cap; accepts beyond it are shed immediately
    /// with `overloaded` + `retry_after`.
    pub max_connections: usize,
    /// Per-connection read deadline (client think time); an expired
    /// deadline closes the connection with a `deadline` reply. `None`
    /// waits forever.
    pub read_timeout: Option<Duration>,
    /// Per-connection write deadline (slow/stalled readers).
    pub write_timeout: Option<Duration>,
    /// The back-off hint (seconds) sent with shedding replies.
    pub retry_after_secs: u64,
    /// How long [`TcpServer::shutdown`] waits for in-flight connections to
    /// finish before abandoning them.
    pub drain_deadline: Duration,
}

impl Default for EdgeLimits {
    fn default() -> Self {
        Self {
            // Generous: a paper-scale create with a 10^5-set prior is
            // still well under 1 MiB, while an unbounded reader would let
            // one peer OOM the process.
            max_line_bytes: 1 << 20,
            max_requests_per_conn: 1_000_000,
            max_connections: 4096,
            // Idle-session sweep order of magnitude: a human thinking is
            // fine, an abandoned socket is not held forever.
            read_timeout: Some(Duration::from_secs(900)),
            write_timeout: Some(Duration::from_secs(30)),
            retry_after_secs: 1,
            drain_deadline: Duration::from_secs(5),
        }
    }
}

/// One fully-framed read result from a [`BoundedLineReader`].
#[derive(Debug, PartialEq, Eq)]
pub enum ReadLine {
    /// A complete line (terminator stripped, invalid UTF-8 replaced).
    Line(String),
    /// The line exceeded the byte cap. Call
    /// [`BoundedLineReader::skip_to_newline`] to resynchronize (a no-op
    /// when the oversized line's terminator was already seen), or close
    /// the connection.
    TooLong,
    /// End of stream. Trailing bytes without a newline (a torn final
    /// frame) are discarded, never handed to the dispatcher.
    Eof,
}

/// A line reader with a hard byte cap — the fix for the unbounded
/// `read_line` a hostile peer could grow without ever sending `\n`.
/// Memory use is bounded by the cap regardless of peer behavior.
pub struct BoundedLineReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Consumed prefix of `buf`.
    start: usize,
    /// Bytes of `buf[start..]` already scanned for a newline.
    scanned: usize,
    /// True after an oversized line whose terminator was never buffered:
    /// the stream is mid-line, and [`Self::skip_to_newline`] must discard
    /// up to the next terminator to restore framing.
    dangling: bool,
    max: usize,
}

impl<R: Read> BoundedLineReader<R> {
    /// Caps lines at `max_line_bytes` (terminator excluded).
    pub fn new(inner: R, max_line_bytes: usize) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            start: 0,
            scanned: 0,
            dangling: false,
            max: max_line_bytes,
        }
    }

    fn fill(&mut self) -> io::Result<usize> {
        // Chaos hook: injected read errors model peers torn down by the
        // kernel mid-stream.
        setdisc_util::faults::check_io("server.read")?;
        // Armed, the span times the read syscall — which includes peer
        // think time, so server.read quantifies client latency, not
        // server work.
        let _span = obs::span(obs::Site::ServerRead);
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        let old = self.buf.len();
        // reserve_exact: amortized doubling would otherwise let peak
        // capacity reach ~2× the line cap.
        self.buf.reserve_exact(4096);
        self.buf.resize(old + 4096, 0);
        let n = self.inner.read(&mut self.buf[old..]);
        self.buf.truncate(old + n.as_ref().copied().unwrap_or(0));
        n
    }

    /// Reads the next complete line, enforcing the cap.
    pub fn read_line(&mut self) -> io::Result<ReadLine> {
        loop {
            let pending = &self.buf[self.start..];
            if let Some(i) = pending[self.scanned..].iter().position(|&b| b == b'\n') {
                let end = self.scanned + i;
                self.start += end + 1;
                self.scanned = 0;
                if end > self.max {
                    // Oversized, but its terminator was in reach: it is
                    // consumed whole and framing is already intact.
                    return Ok(ReadLine::TooLong);
                }
                let mut line = &self.buf[self.start - end - 1..self.start - 1];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                return Ok(ReadLine::Line(String::from_utf8_lossy(line).into_owned()));
            }
            self.scanned = pending.len();
            if self.scanned > self.max {
                // The flood never terminated inside the cap: drop the
                // buffered prefix and remember the stream is mid-line.
                self.buf.clear();
                self.start = 0;
                self.scanned = 0;
                self.dangling = true;
                return Ok(ReadLine::TooLong);
            }
            if self.fill()? == 0 {
                return Ok(ReadLine::Eof);
            }
        }
    }

    /// After [`ReadLine::TooLong`]: restores line framing, discarding the
    /// oversized line's remainder (without buffering it) when its
    /// terminator was never seen; a no-op otherwise. `false` means the
    /// stream ended mid-discard.
    pub fn skip_to_newline(&mut self) -> io::Result<bool> {
        while self.dangling {
            if let Some(i) = self.buf[self.start..].iter().position(|&b| b == b'\n') {
                self.start += i + 1;
                self.scanned = 0;
                self.dangling = false;
                return Ok(true);
            }
            self.buf.clear();
            self.start = 0;
            self.scanned = 0;
            if self.fill()? == 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Serves the protocol over stdin/stdout until EOF. Empty lines are
/// ignored; every request line yields exactly one response line. Lines
/// over the configured byte cap are answered with a `too_large` error and
/// skipped — stdio keeps its framing (the newline is still the
/// delimiter), so unlike TCP the loop can resynchronize and continue.
pub fn serve_stdio(service: &Service) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = io::BufWriter::new(stdout.lock());
    let limits = service.config().edge.clone();
    let mut reader = BoundedLineReader::new(stdin.lock(), limits.max_line_bytes);
    loop {
        match reader.read_line()? {
            ReadLine::Eof => return Ok(()),
            ReadLine::TooLong => {
                EdgeStats::bump(&service.edge_stats().too_large);
                let msg = format!(
                    "request line exceeds the {}-byte cap; line skipped",
                    limits.max_line_bytes
                );
                writeln!(out, "{}", error_response_coded("too_large", &msg, None))?;
                out.flush()?;
                reader.skip_to_newline()?;
            }
            ReadLine::Line(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                writeln!(out, "{}", service.handle_line(&line))?;
                out.flush()?;
            }
        }
    }
}

/// State shared between the accept loop, its connection threads, and the
/// [`TcpServer`] handle.
#[derive(Default)]
struct ConnShared {
    shutdown: AtomicBool,
    live: AtomicUsize,
}

/// A running TCP transport: the accept loop on a background thread plus
/// the drain-aware shutdown handle.
pub struct TcpServer {
    addr: SocketAddr,
    shared: Arc<ConnShared>,
    drain_deadline: Duration,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl TcpServer {
    /// Starts the accept loop on a background thread.
    pub fn start(service: Arc<Service>, listener: TcpListener) -> io::Result<Self> {
        let addr = listener.local_addr()?;
        let drain_deadline = service.config().edge.drain_deadline;
        let shared = Arc::new(ConnShared::default());
        let loop_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("setdisc-accept".into())
            .spawn(move || accept_loop(&service, &listener, &loop_shared))?;
        Ok(Self {
            addr,
            shared,
            drain_deadline,
            accept_handle: Some(accept_handle),
        })
    }

    /// [`Self::start`] on a fresh listener bound to `bind` (e.g.
    /// `127.0.0.1:0` for an ephemeral port).
    pub fn bind(service: Arc<Service>, bind: &str) -> io::Result<Self> {
        Self::start(service, TcpListener::bind(bind)?)
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connection count (shed decisions use the same counter).
    pub fn live_connections(&self) -> usize {
        self.shared.live.load(Ordering::Acquire)
    }

    /// Blocks until the accept loop exits — the `serve` binary parks its
    /// main thread here for the no-shutdown-handle mode.
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            h.join().ok();
        }
    }

    /// Graceful shutdown: stop accepting, then wait up to the configured
    /// drain deadline for in-flight connections to finish. Returns `true`
    /// when every connection drained; `false` when stragglers (idle peers
    /// sitting inside their read deadline) were abandoned to process
    /// exit. Connection threads re-check the shutdown flag between
    /// requests, so active request/response cycles complete and the
    /// response is flushed before their connection closes.
    pub fn shutdown(mut self) -> bool {
        self.begin_shutdown();
        let deadline = Instant::now() + self.drain_deadline;
        while self.shared.live.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        self.shared.live.load(Ordering::Acquire) == 0
    }

    fn begin_shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Wake the blocking accept() with a throwaway connection; the loop
        // re-checks the flag before serving it.
        TcpStream::connect(self.addr).ok();
        if let Some(h) = self.accept_handle.take() {
            h.join().ok();
        }
    }
}

/// Serves the accept loop on the current thread, forever (no shutdown
/// handle — prefer [`TcpServer::start`] when drain matters).
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) {
    let shared = Arc::new(ConnShared::default());
    accept_loop(&service, &listener, &shared);
}

/// Binds `bind` and serves the accept loop on a background thread.
/// Returns the bound address (useful with port 0) and the thread handle.
pub fn spawn_tcp(
    service: Arc<Service>,
    bind: &str,
) -> io::Result<(SocketAddr, thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let handle = thread::spawn(move || serve_tcp(service, listener));
    Ok((addr, handle))
}

/// Spawns the idle-eviction sweeper: every `period`, sessions idle past
/// the service's configured timeout are dropped.
pub fn spawn_idle_sweeper(service: Arc<Service>, period: Duration) -> thread::JoinHandle<()> {
    thread::spawn(move || loop {
        thread::sleep(period);
        service.evict_idle();
    })
}

/// Spawns the plan checkpointer: every `period`, the learned plan cache is
/// persisted (atomically — see `setdisc_plan::save_plan`) to the service's
/// configured path. Persistence failures are logged and retried next
/// period; a crash between checkpoints loses at most `period` of learning
/// and never the last good file.
pub fn spawn_plan_checkpointer(service: Arc<Service>, period: Duration) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("setdisc-checkpoint".into())
        .spawn(move || loop {
            thread::sleep(period);
            let span = obs::span(obs::Site::PlanCheckpoint);
            let result = service.persist_plans();
            drop(span);
            if let Err(e) = result {
                obs::warn(&format!("plan checkpoint failed (will retry): {e}"));
            }
        })
        .expect("spawn checkpointer")
}

fn accept_loop(service: &Arc<Service>, listener: &TcpListener, shared: &Arc<ConnShared>) {
    let limits = service.config().edge.clone();
    let min_backoff = Duration::from_millis(10);
    let max_backoff = Duration::from_secs(1);
    let mut backoff = min_backoff;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Chaos hook: injected accept errors exercise the same backoff
        // path as real EMFILE/ECONNABORTED bursts. Transient failures keep
        // the server serving; the bounded backoff keeps a persistent error
        // from tight-looping a core.
        let accepted =
            setdisc_util::faults::check_io("server.accept").and_then(|()| listener.accept());
        let stream = match accepted {
            Ok((stream, _)) => stream,
            Err(_) => {
                EdgeStats::bump(&service.edge_stats().accept_retries);
                thread::sleep(backoff);
                backoff = (backoff * 2).min(max_backoff);
                continue;
            }
        };
        backoff = min_backoff;
        obs::hit(obs::Site::ServerAccept);
        if shared.shutdown.load(Ordering::Acquire) {
            return; // the shutdown wake-up connection
        }
        if shared.live.load(Ordering::Acquire) >= limits.max_connections {
            shed(service, stream, &limits);
            continue;
        }
        shared.live.fetch_add(1, Ordering::AcqRel);
        let conn_service = Arc::clone(service);
        let conn_shared = Arc::clone(shared);
        // thread::Builder reports spawn failure (thread exhaustion is an
        // overload condition like any other) instead of panicking the
        // accept loop; the stream is dropped with the failed closure.
        let spawned = thread::Builder::new()
            .name("setdisc-conn".into())
            .spawn(move || {
                connection_loop(&conn_service, stream, &conn_shared);
                conn_shared.live.fetch_sub(1, Ordering::AcqRel);
            });
        if spawned.is_err() {
            shared.live.fetch_sub(1, Ordering::AcqRel);
            EdgeStats::bump(&service.edge_stats().shed_connections);
        }
    }
}

/// Over the connection cap: reply with a structured back-off hint and
/// close. Best-effort — the peer may already be gone.
fn shed(service: &Arc<Service>, stream: TcpStream, limits: &EdgeLimits) {
    EdgeStats::bump(&service.edge_stats().shed_connections);
    stream.set_write_timeout(Some(Duration::from_secs(1))).ok();
    let mut stream = stream;
    let line = error_response_coded(
        "overloaded",
        &format!(
            "connection shed: {} connections at the global cap",
            limits.max_connections
        ),
        Some(limits.retry_after_secs),
    );
    let _ = writeln!(stream, "{line}");
}

fn connection_loop(service: &Service, stream: TcpStream, shared: &ConnShared) {
    let limits = service.config().edge.clone();
    let stats = service.edge_stats();
    stream.set_read_timeout(limits.read_timeout).ok();
    stream.set_write_timeout(limits.write_timeout).ok();
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BoundedLineReader::new(read_half, limits.max_line_bytes);
    let mut writer = io::BufWriter::new(stream);
    let mut served: u64 = 0;
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return; // drain: finish the in-flight request, not the connection
        }
        match reader.read_line() {
            Ok(ReadLine::Eof) => return,
            Ok(ReadLine::TooLong) => {
                // Unlike stdio there is no trustworthy way back to a frame
                // boundary mid-flood, so reply and close.
                EdgeStats::bump(&stats.too_large);
                let msg = format!(
                    "request line exceeds the {}-byte cap; closing connection",
                    limits.max_line_bytes
                );
                send(&mut writer, &error_response_coded("too_large", &msg, None));
                return;
            }
            Err(e) if is_timeout(&e) => {
                EdgeStats::bump(&stats.deadline_drops);
                let line = error_response_coded(
                    "deadline",
                    "connection idle past the read deadline; closing",
                    Some(limits.retry_after_secs),
                );
                send(&mut writer, &line);
                return;
            }
            Err(_) => return, // peer torn down mid-read
            Ok(ReadLine::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                if served >= limits.max_requests_per_conn {
                    EdgeStats::bump(&stats.shed_requests);
                    let msg = format!(
                        "connection served its {}-request cap; reconnect to continue",
                        limits.max_requests_per_conn
                    );
                    let line =
                        error_response_coded("overloaded", &msg, Some(limits.retry_after_secs));
                    send(&mut writer, &line);
                    return;
                }
                served += 1;
                let response = service.handle_line(&line);
                if !send(&mut writer, &response) {
                    return; // client went away (or injected write fault)
                }
            }
        }
    }
}

/// Read timeouts surface as `WouldBlock` (Unix) or `TimedOut` (Windows).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Writes one response line; false when the peer is unreachable.
fn send(writer: &mut impl Write, line: &str) -> bool {
    let _span = obs::span(obs::Site::ServerWrite);
    setdisc_util::faults::check_io("server.write")
        .and_then(|()| writeln!(writer, "{line}"))
        .and_then(|()| writer.flush())
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use std::io::{BufRead as _, BufReader, BufWriter};

    #[test]
    fn tcp_round_trip() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service.registry().install_fixture("figure1").unwrap();
        let (addr, _handle) = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut call = move |line: &str| -> String {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp.trim_end().to_string()
        };

        let resp = call(r#"{"op":"collections"}"#);
        assert!(resp.contains("\"figure1\""), "{resp}");
        let resp = call(r#"{"op":"create","collection":"figure1","examples":["e"]}"#);
        assert!(resp.contains("\"candidates\":1"), "{resp}");
        let resp = call(r#"{"op":"ask","session":1}"#);
        assert!(resp.contains("\"reason\":\"resolved\""), "{resp}");
        assert!(resp.contains("\"discovered\":\"S2\""), "{resp}");
    }

    #[test]
    fn bounded_reader_frames_caps_and_resyncs() {
        let input = b"first\r\nsecond\nTHIS-LINE-IS-MUCH-TOO-LONG-FOR-TEN\nafter\npartial";
        let mut r = BoundedLineReader::new(&input[..], 10);
        assert_eq!(r.read_line().unwrap(), ReadLine::Line("first".into()));
        assert_eq!(r.read_line().unwrap(), ReadLine::Line("second".into()));
        assert_eq!(r.read_line().unwrap(), ReadLine::TooLong);
        assert!(r.skip_to_newline().unwrap());
        assert_eq!(r.read_line().unwrap(), ReadLine::Line("after".into()));
        // A torn trailing frame is discarded, not dispatched.
        assert_eq!(r.read_line().unwrap(), ReadLine::Eof);
    }

    #[test]
    fn bounded_reader_memory_stays_bounded() {
        struct Endless;
        impl Read for Endless {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                buf.fill(b'x');
                Ok(buf.len())
            }
        }
        let mut r = BoundedLineReader::new(Endless, 1 << 16);
        assert_eq!(r.read_line().unwrap(), ReadLine::TooLong);
        assert!(r.buf.capacity() < (1 << 16) + (1 << 13), "capacity bounded");
    }
}
