//! Transports for the wire protocol: TCP (thread per connection) and stdio.
//!
//! Both transports are line loops over [`Service::handle_line`]; all
//! protocol logic lives in [`crate::service`]. The TCP accept loop can be
//! run on the caller's thread ([`serve_tcp`]) or detached
//! ([`spawn_tcp`]), which is how tests, the example, and the load
//! harness's socket mode stand up a real server inside one process.

use crate::service::Service;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Serves the protocol over stdin/stdout until EOF. Empty lines are
/// ignored; every request line yields exactly one response line.
pub fn serve_stdio(service: &Service) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for line in stdin.lock().lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(out, "{}", service.handle_line(&line))?;
        out.flush()?;
    }
    Ok(())
}

/// Binds `bind` (e.g. `127.0.0.1:0`) and serves the accept loop on the
/// current thread, forever.
pub fn serve_tcp(service: Arc<Service>, listener: TcpListener) {
    for stream in listener.incoming() {
        match stream {
            Ok(stream) => {
                let service = Arc::clone(&service);
                thread::spawn(move || connection_loop(&service, stream));
            }
            Err(_) => continue, // transient accept error: keep serving
        }
    }
}

/// Binds `bind` and serves the accept loop on a background thread.
/// Returns the bound address (useful with port 0) and the thread handle.
pub fn spawn_tcp(
    service: Arc<Service>,
    bind: &str,
) -> io::Result<(SocketAddr, thread::JoinHandle<()>)> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?;
    let handle = thread::spawn(move || serve_tcp(service, listener));
    Ok((addr, handle))
}

/// Spawns the idle-eviction sweeper: every `period`, sessions idle past
/// the service's configured timeout are dropped.
pub fn spawn_idle_sweeper(service: Arc<Service>, period: Duration) -> thread::JoinHandle<()> {
    thread::spawn(move || loop {
        thread::sleep(period);
        service.evict_idle();
    })
}

fn connection_loop(service: &Service, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let response = service.handle_line(&line);
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break; // client went away
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    #[test]
    fn tcp_round_trip() {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        service.registry().install_fixture("figure1").unwrap();
        let (addr, _handle) = spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let mut call = move |line: &str| -> String {
            writeln!(writer, "{line}").unwrap();
            writer.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            resp.trim_end().to_string()
        };

        let resp = call(r#"{"op":"collections"}"#);
        assert!(resp.contains("\"figure1\""), "{resp}");
        let resp = call(r#"{"op":"create","collection":"figure1","examples":["e"]}"#);
        assert!(resp.contains("\"candidates\":1"), "{resp}");
        let resp = call(r#"{"op":"ask","session":1}"#);
        assert!(resp.contains("\"reason\":\"resolved\""), "{resp}");
        assert!(resp.contains("\"discovered\":\"S2\""), "{resp}");
    }
}
