//! The session journal: every wire exchange, durably, for replay.
//!
//! [`ServiceJournal`] composes the content-agnostic rotating line journal
//! of [`setdisc_util::journal`] into the service's crash-tolerance story.
//! A journal directory holds one *meta* record (written at open) followed
//! by one *exchange* record per request/response pair the dispatcher
//! handled, in dispatch order:
//!
//! ```text
//! {"kind":"meta","version":1,"obs":BOOL,"faults":SPEC?,
//!  "default_budget":N,"max_sessions":N,"plan_capacity":N,
//!  "memory_bytes":N?,"collections":["fixture:figure1",...]}
//! {"kind":"exchange","seq":1,"req":RAW_REQUEST,"resp":RAW_RESPONSE}
//! ```
//!
//! The meta record pins everything a replay needs to reconstruct the
//! process: the collection recipes (`fixture:`/`register:`/`load:` specs
//! exactly as given to `serve`), the service limits that shape responses
//! (budget, session cap, plan capacity, memory budget), and the
//! nondeterminism arming — the `SETDISC_FAULTS` spec and the `util::obs`
//! switch. Fault streams are seeded per site, so re-arming the same spec
//! replays the same injected failures at the same dispatch ordinals.
//!
//! Exchanges pair the raw request line with the raw response line in one
//! record, so the torn-tail tolerance of the underlying reader drops whole
//! exchanges, never half of one. Requests that fail to parse are journaled
//! too (their error responses replay byte-identically). What the journal
//! does *not* see: edge errors produced inside the transports
//! (`too_large`, `deadline`, `overloaded` connection sheds) — those never
//! reach [`crate::Service::handle_line`], and they depend on wall-clock
//! and socket state no replay could reproduce.
//!
//! Durability is inherited from [`setdisc_util::journal::JournalWriter`]:
//! rotation never splits a record, fsync runs every batch of appends and
//! on drop, and a reopened directory starts a fresh segment. A journal
//! append failure (disk full, injected `journal.append` fault) is
//! *contained*: the exchange is dropped from the journal with a warning,
//! the client still gets its response — journaling must never take the
//! service down.

use setdisc_util::journal::JournalWriter;
use setdisc_util::report::{parse_json, JsonObject, JsonValue};
use setdisc_util::{faults, obs};
use std::io;
use std::path::Path;
use std::sync::Mutex;

/// Journal format version written to (and required of) the meta record.
pub const JOURNAL_VERSION: u64 = 1;

/// Everything a replay needs to rebuild the service that wrote the
/// journal: collection recipes, response-shaping limits, and the
/// nondeterminism arming.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalMeta {
    /// Whether `util::obs` span timing was armed (`--metrics` /
    /// `SETDISC_OBS=1`). Replay re-arms it so armed-only side effects run
    /// at the same points.
    pub obs: bool,
    /// The `SETDISC_FAULTS` spec in force, if any. Replay re-installs it;
    /// per-site seeded streams then fire identically.
    pub faults: Option<String>,
    /// Default question budget for sessions created without one.
    pub default_budget: u64,
    /// Session-table capacity (shapes `overloaded` sheds).
    pub max_sessions: usize,
    /// Plan-cache node bound (`0` disables caching — a perf knob only,
    /// selections are bit-identical either way, but recorded for
    /// completeness).
    pub plan_capacity: usize,
    /// Memory-governor budget in bytes, when armed.
    pub memory: Option<usize>,
    /// Collection recipes exactly as given to the server, each prefixed
    /// with its kind: `fixture:SPEC`, `register:SPEC`, or
    /// `load:NAME=PATH`.
    pub collections: Vec<String>,
}

impl JournalMeta {
    /// Captures the arming and limits of a live service plus the given
    /// collection recipes.
    pub fn capture(config: &crate::ServiceConfig, collections: Vec<String>) -> Self {
        Self {
            obs: obs::armed(),
            faults: std::env::var("SETDISC_FAULTS")
                .ok()
                .filter(|s| !s.is_empty()),
            default_budget: config.default_budget,
            max_sessions: config.max_sessions,
            plan_capacity: config.plan_cache_capacity,
            memory: config.memory,
            collections,
        }
    }

    /// Encodes the meta record line.
    fn encode(&self) -> String {
        let mut obj = JsonObject::new()
            .str("kind", "meta")
            .int("version", JOURNAL_VERSION)
            .bool("obs", self.obs);
        if let Some(spec) = &self.faults {
            obj = obj.str("faults", spec);
        }
        obj = obj
            .int("default_budget", self.default_budget)
            .int("max_sessions", self.max_sessions as u64)
            .int("plan_capacity", self.plan_capacity as u64);
        if let Some(bytes) = self.memory {
            obj = obj.int("memory_bytes", bytes as u64);
        }
        obj.strs("collections", &self.collections).encode()
    }

    /// Parses a meta record line (the first line of a journal).
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = parse_json(line).map_err(|e| format!("journal meta: {e}"))?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("meta") {
            return Err("journal does not start with a meta record".into());
        }
        let version = v
            .get("version")
            .and_then(JsonValue::as_u64)
            .ok_or("journal meta: missing version")?;
        if version != JOURNAL_VERSION {
            return Err(format!(
                "journal version {version} unsupported (reader speaks {JOURNAL_VERSION})"
            ));
        }
        let collections = match v.get("collections") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(|item| {
                    item.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "journal meta: collections must be strings".to_string())
                })
                .collect::<Result<_, _>>()?,
            _ => return Err("journal meta: missing collections".into()),
        };
        Ok(Self {
            obs: v.get("obs").and_then(JsonValue::as_bool).unwrap_or(false),
            faults: v
                .get("faults")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            default_budget: v
                .get("default_budget")
                .and_then(JsonValue::as_u64)
                .ok_or("journal meta: missing default_budget")?,
            max_sessions: v
                .get("max_sessions")
                .and_then(JsonValue::as_u64)
                .ok_or("journal meta: missing max_sessions")? as usize,
            plan_capacity: v
                .get("plan_capacity")
                .and_then(JsonValue::as_u64)
                .ok_or("journal meta: missing plan_capacity")? as usize,
            memory: v
                .get("memory_bytes")
                .and_then(JsonValue::as_u64)
                .map(|b| b as usize),
            collections,
        })
    }

    /// Re-arms the nondeterminism sources this meta records: the fault
    /// spec (or a clean slate when none was armed) and the obs switch.
    pub fn arm(&self) -> Result<(), String> {
        match &self.faults {
            Some(spec) => faults::install_spec(spec)?,
            None => faults::clear(),
        }
        obs::arm(self.obs);
        Ok(())
    }
}

/// One recorded request/response pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Exchange {
    /// 1-based dispatch ordinal.
    pub seq: u64,
    /// The raw request line as received.
    pub req: String,
    /// The raw response line as sent.
    pub resp: String,
}

impl Exchange {
    /// Parses an exchange record line.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = parse_json(line).map_err(|e| format!("journal exchange: {e}"))?;
        if v.get("kind").and_then(JsonValue::as_str) != Some("exchange") {
            return Err(format!("not an exchange record: {line}"));
        }
        Ok(Self {
            seq: v
                .get("seq")
                .and_then(JsonValue::as_u64)
                .ok_or("journal exchange: missing seq")?,
            req: v
                .get("req")
                .and_then(JsonValue::as_str)
                .ok_or("journal exchange: missing req")?
                .to_string(),
            resp: v
                .get("resp")
                .and_then(JsonValue::as_str)
                .ok_or("journal exchange: missing resp")?
                .to_string(),
        })
    }
}

/// The service-side journal sink: a rotating writer behind a mutex, so
/// concurrent transport threads serialize their exchanges into one global
/// dispatch order (the order replay re-drives).
pub struct ServiceJournal {
    state: Mutex<State>,
}

struct State {
    writer: JournalWriter,
    seq: u64,
    write_errors: u64,
}

impl ServiceJournal {
    /// Opens (or resumes) a journal in `dir` and writes the meta record.
    /// Resuming an existing directory starts a fresh segment — and writes
    /// a fresh meta record, so every segment run is self-describing.
    pub fn open(dir: &Path, meta: &JournalMeta) -> io::Result<Self> {
        Self::with_writer(JournalWriter::open(dir)?, meta)
    }

    /// [`Self::open`] with an explicit segment-rotation threshold —
    /// durability tests use a tiny one to put record boundaries right on
    /// segment boundaries.
    pub fn open_with_rotation(
        dir: &Path,
        meta: &JournalMeta,
        rotate_bytes: u64,
    ) -> io::Result<Self> {
        Self::with_writer(JournalWriter::with_rotation(dir, rotate_bytes)?, meta)
    }

    fn with_writer(mut writer: JournalWriter, meta: &JournalMeta) -> io::Result<Self> {
        writer.append(&meta.encode())?;
        writer.sync()?;
        Ok(Self {
            state: Mutex::new(State {
                writer,
                seq: 0,
                write_errors: 0,
            }),
        })
    }

    /// Records one exchange. Append failures are contained: the record is
    /// dropped with a warning (first occurrence only — a full disk must
    /// not flood the log) and the service keeps serving.
    pub fn record(&self, req: &str, resp: &str) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state.seq += 1;
        let line = JsonObject::new()
            .str("kind", "exchange")
            .int("seq", state.seq)
            .str("req", req)
            .str("resp", resp)
            .encode();
        if let Err(e) = state.writer.append(&line) {
            state.write_errors += 1;
            if state.write_errors == 1 {
                obs::warn(&format!(
                    "journal append failed ({e}); this and further failed exchanges are \
                     dropped from the journal"
                ));
            }
        }
    }

    /// Exchanges dropped by append failures so far.
    pub fn write_errors(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .write_errors
    }

    /// Forces buffered appends to disk (the writer also syncs every batch
    /// and on drop).
    pub fn sync(&self) -> io::Result<()> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .writer
            .sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setdisc_util::journal::read_dir;

    fn meta() -> JournalMeta {
        JournalMeta {
            obs: false,
            faults: None,
            default_budget: 10_000,
            max_sessions: 100_000,
            plan_capacity: 1 << 18,
            memory: None,
            collections: vec!["fixture:figure1".into()],
        }
    }

    #[test]
    fn meta_round_trips_through_its_record_line() {
        let mut m = meta();
        m.faults = Some("engine.select:0.5:7".into());
        m.memory = Some(64 << 20);
        m.obs = true;
        let parsed = JournalMeta::parse(&m.encode()).unwrap();
        assert_eq!(parsed, m);
        // Optional fields stay optional.
        let bare = meta();
        assert_eq!(JournalMeta::parse(&bare.encode()).unwrap(), bare);
        // Wrong kind and wrong version are errors.
        assert!(JournalMeta::parse(r#"{"kind":"exchange","seq":1}"#).is_err());
        assert!(JournalMeta::parse(
            r#"{"kind":"meta","version":99,"obs":false,"default_budget":1,
                "max_sessions":1,"plan_capacity":1,"collections":[]}"#
        )
        .is_err());
    }

    #[test]
    fn records_exchanges_in_dispatch_order_with_meta_first() {
        let dir = std::env::temp_dir().join(format!("setdisc_svc_journal_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = ServiceJournal::open(&dir, &meta()).unwrap();
        journal.record(r#"{"op":"collections"}"#, r#"{"ok":true}"#);
        journal.record("garbage", r#"{"ok":false,"error":"x"}"#);
        journal.sync().unwrap();
        let lines = read_dir(&dir).unwrap();
        assert_eq!(lines.len(), 3);
        let m = JournalMeta::parse(&lines[0]).unwrap();
        assert_eq!(m.collections, vec!["fixture:figure1".to_string()]);
        let first = Exchange::parse(&lines[1]).unwrap();
        assert_eq!(first.seq, 1);
        assert_eq!(first.req, r#"{"op":"collections"}"#);
        assert_eq!(first.resp, r#"{"ok":true}"#);
        let second = Exchange::parse(&lines[2]).unwrap();
        assert_eq!(second.seq, 2);
        assert_eq!(second.req, "garbage");
        assert_eq!(journal.write_errors(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
