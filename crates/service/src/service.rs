//! The transport-free request dispatcher.
//!
//! [`Service`] owns the snapshot [`Registry`] and the [`SessionTable`] and
//! maps one wire [`Request`] to one JSON response line. It holds no
//! per-connection state, so any number of transport threads (TCP
//! connections, the stdio loop, in-process load clients) can call
//! [`Service::handle_line`] on a shared reference concurrently; ordering is
//! only guaranteed per caller, which matches the one-line-in/one-line-out
//! protocol contract.

use crate::proto::{error_response_coded, parse_request, Request};
use crate::snapshot::{Registry, SnapshotHandle};
use crate::table::{ServiceEngine, SessionEntry, SessionTable, TraceStep};
use setdisc_core::discovery::Answer;
use setdisc_core::engine::Engine;
use setdisc_core::entity::EntityId;
use setdisc_util::obs::{self, Counter};
use setdisc_util::report::JsonObject;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Counters for everything the hardened service edge sheds, bounds, or
/// contains. Shared by the dispatcher (panics) and the TCP transport
/// (connection-level limits). Stored on the metric core's [`Counter`]
/// cells, which both the session-less `status` op and the `metrics` op
/// read — one storage location, so the two surfaces can never disagree.
/// `status` reports each field only once it is nonzero (unless
/// `verbose:true`), so fault-free transcripts stay byte-identical to the
/// pre-hardening protocol.
#[derive(Debug, Default)]
pub struct EdgeStats {
    /// Request dispatches that panicked and were contained.
    pub panics: Counter,
    /// Sessions force-closed because a dispatch panicked inside them.
    pub quarantined: Counter,
    /// Connections shed at accept time (global connection cap).
    pub shed_connections: Counter,
    /// Requests rejected over the per-connection request cap.
    pub shed_requests: Counter,
    /// Request lines rejected for exceeding the byte cap.
    pub too_large: Counter,
    /// Connections dropped on an expired read/write deadline.
    pub deadline_drops: Counter,
    /// Transient accept() errors tolerated with backoff.
    pub accept_retries: Counter,
}

impl EdgeStats {
    /// Relaxed-increment helper (counters are statistics, not
    /// synchronization).
    pub fn bump(counter: &Counter) {
        counter.incr();
    }

    /// The counters in stable exposition order, with their wire names —
    /// the single source both `status` and `metrics` iterate.
    pub fn named(&self) -> [(&'static str, &Counter); 7] {
        [
            ("panics", &self.panics),
            ("quarantined", &self.quarantined),
            ("shed_connections", &self.shed_connections),
            ("shed_requests", &self.shed_requests),
            ("too_large", &self.too_large),
            ("deadline_drops", &self.deadline_drops),
            ("accept_retries", &self.accept_retries),
        ]
    }
}

/// Service-wide limits and defaults.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Maximum live sessions before `create` is rejected.
    pub max_sessions: usize,
    /// Default yes/no question budget for sessions created without one.
    pub default_budget: u64,
    /// Idle timeout applied by [`Service::evict_idle`]; `None` disables
    /// eviction.
    pub idle_timeout: Option<Duration>,
    /// Parallel-lookahead tuning applied to every k-LP engine this service
    /// builds (selection stays bit-identical; this only sizes the worker
    /// pool and its dispatch gate to the deployment).
    pub lookahead: crate::strategy::LookaheadTuning,
    /// Node bound of the per-snapshot plan cache shared by every session
    /// with a deterministic strategy; `0` disables plan caching entirely.
    /// Cached selections are bit-identical to uncached ones (pinned by the
    /// `setdisc-plan` property tests), so this is a performance knob only
    /// — the wire protocol is unaffected.
    pub plan_cache_capacity: usize,
    /// Where [`Service::persist_plans`] writes the learned plan (the serve
    /// binary calls it on shutdown and from the periodic checkpointer);
    /// `None` disables persistence.
    pub plan_persist: Option<std::path::PathBuf>,
    /// Transport-edge limits applied by the TCP server (line/connection/
    /// request caps, I/O deadlines, drain budget).
    pub edge: crate::server::EdgeLimits,
    /// Global memory budget in bytes over everything the service accounts
    /// — loaded collections, plan caches, and session entries. `None`
    /// disables governance (the seed behavior); set, it arms the
    /// registry's degradation ladder: plan-cache shrinks, then
    /// cold-snapshot unloads, then shedding new `create`s with the
    /// structured `overloaded` shape. Established sessions are never
    /// touched (DESIGN.md §13).
    pub memory: Option<usize>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            max_sessions: 100_000,
            default_budget: 10_000,
            idle_timeout: None,
            lookahead: crate::strategy::LookaheadTuning::default(),
            plan_cache_capacity: 1 << 18,
            plan_persist: None,
            edge: crate::server::EdgeLimits::default(),
            memory: None,
        }
    }
}

/// A discovery service: named snapshots plus a table of live sessions.
pub struct Service {
    registry: Registry,
    table: SessionTable,
    config: ServiceConfig,
    stats: EdgeStats,
    journal: Option<crate::journal::ServiceJournal>,
}

impl Default for Service {
    fn default() -> Self {
        Self::new(ServiceConfig::default())
    }
}

impl Service {
    /// Empty service with the given limits.
    pub fn new(config: ServiceConfig) -> Self {
        let registry = Registry::new();
        registry.set_budget(config.memory.unwrap_or(0));
        Self {
            registry,
            table: SessionTable::new(config.max_sessions),
            config,
            stats: EdgeStats::default(),
            journal: None,
        }
    }

    /// Attaches the session journal: from here on, every request/response
    /// pair [`Service::handle_line`] processes is appended to it in
    /// dispatch order. Called once at boot (before the service is shared
    /// across transport threads).
    pub fn set_journal(&mut self, journal: crate::journal::ServiceJournal) {
        self.journal = Some(journal);
    }

    /// The attached session journal, if any (the serve binary syncs it on
    /// clean shutdown).
    pub fn journal(&self) -> Option<&crate::journal::ServiceJournal> {
        self.journal.as_ref()
    }

    /// The snapshot registry (load collections through this).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The service's configured limits (the TCP transport reads its edge
    /// caps from here).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Counters of everything shed, bounded, or contained at the edge.
    pub fn edge_stats(&self) -> &EdgeStats {
        &self.stats
    }

    /// Number of live sessions.
    pub fn open_sessions(&self) -> usize {
        self.table.len()
    }

    /// Accounted bytes of the session table (admission-time estimates,
    /// maintained on insert/remove/evict).
    pub fn session_bytes(&self) -> usize {
        self.table.accounted_bytes()
    }

    /// Evicts idle sessions per the configured timeout; returns the count
    /// (0 when eviction is disabled).
    pub fn evict_idle(&self) -> usize {
        match self.config.idle_timeout {
            Some(timeout) => self.table.evict_idle(timeout),
            None => 0,
        }
    }

    /// Pushes the accounted byte totals into the always-on `util::obs`
    /// memory gauges (`setdisc_mem_bytes{component=...}`). Called on every
    /// create outcome and metrics read, so scrapes and the `metrics` op
    /// agree on one storage location.
    pub fn refresh_mem_gauges(&self) {
        obs::mem_set(
            obs::MemComponent::Collections,
            self.registry.collections_bytes() as u64,
        );
        obs::mem_set(
            obs::MemComponent::PlanCaches,
            self.registry.plan_cache_bytes() as u64,
        );
        obs::mem_set(
            obs::MemComponent::Sessions,
            self.table.accounted_bytes() as u64,
        );
    }

    /// Handles one protocol line, returning one response line (no trailing
    /// newline).
    pub fn handle_line(&self, line: &str) -> String {
        let response = match parse_request(line) {
            Ok(req) => self.handle(req),
            Err(e) => err_response(&e),
        };
        // Journal the exchange as one record — request and response
        // together, so a torn tail can only lose whole exchanges. Edge
        // errors produced inside the transports never reach this choke
        // point and are deliberately not journaled (they depend on socket
        // state no replay could reproduce).
        if let Some(journal) = &self.journal {
            journal.record(line, &response);
        }
        response
    }

    /// Handles one parsed request, containing panics: a dispatch that
    /// unwinds (strategy bug, poisoned invariant, injected fault) yields a
    /// structured `"internal"` error instead of killing the transport
    /// thread and hanging the client mid-read, and the session the request
    /// addressed — whose engine state may be torn mid-mutation — is
    /// quarantined (removed, never resumed). All *other* sessions are
    /// untouched: shard locks recover from poisoning (see
    /// `table::lock_shard`), and the chaos suite asserts their question
    /// sequences stay bit-identical to direct engine runs.
    pub fn handle(&self, req: Request) -> String {
        let session = req.session();
        let op = req.op();
        match catch_unwind(AssertUnwindSafe(|| self.dispatch(req))) {
            Ok(response) => response,
            Err(_) => {
                EdgeStats::bump(&self.stats.panics);
                let mut msg = format!("internal error handling {op:?}");
                if let Some(id) = session {
                    if self.table.remove(id) {
                        EdgeStats::bump(&self.stats.quarantined);
                        msg = format!("{msg}; session {id} quarantined and closed");
                    }
                }
                error_response_coded("internal", &msg, None)
            }
        }
    }

    fn dispatch(&self, req: Request) -> String {
        setdisc_util::faults::trip("service.dispatch");
        let _span = obs::span(obs::Site::ServiceDispatch);
        match req {
            Request::Create {
                collection,
                strategy,
                examples,
                budget,
                prior,
                recover,
                explain,
            } => self.create(
                &collection,
                strategy,
                &examples,
                budget,
                &prior,
                recover,
                explain,
            ),
            Request::Ask { session, choices } => self.ask(session, choices),
            Request::Answer {
                session,
                entity,
                answer,
                confident,
            } => self.answer(session, &entity, answer, confident),
            Request::AnswerChoice {
                session,
                choice,
                confident,
            } => self.answer_choice(session, choice, confident),
            Request::Status { session } => self.status(session),
            Request::ServiceStatus { verbose } => self.service_status(verbose),
            Request::Metrics { prometheus } => self.metrics(prometheus),
            Request::Trace { session } => self.trace(session),
            Request::Explain { session } => self.explain(session),
            Request::Close { session } => self.close(session),
            Request::Collections => self.collections(),
        }
    }

    /// Service-level status (a session-less `status` request): open-session
    /// count plus, per collection, shape and plan-cache statistics — node
    /// count, hits, misses, and hit rate. Plan fields appear only for
    /// snapshots that actually carry a cache, so existing transcripts
    /// (which never install one before asking) stay byte-identical.
    fn service_status(&self, verbose: bool) -> String {
        let items = self
            .registry
            .snapshots()
            .into_iter()
            .map(|snap| {
                let mut obj = JsonObject::new()
                    .str("name", snap.name())
                    .int("sets", snap.collection().len() as u64)
                    .int("entities", snap.collection().distinct_entities() as u64);
                if let Some(cache) = snap.plan_cache() {
                    let stats = cache.stats();
                    obj = obj
                        .int("plan_nodes", stats.nodes)
                        .int("plan_hits", stats.hits)
                        .int("plan_misses", stats.misses)
                        .num("plan_hit_rate", stats.hit_rate());
                    // Additive: present only once a weighted (§6 prior)
                    // plan has actually served, so classic transcripts are
                    // unchanged.
                    if stats.weighted_hits > 0 {
                        obj = obj.int("plan_weighted_hits", stats.weighted_hits);
                    }
                }
                obj
            })
            .collect();
        let mut obj = JsonObject::new()
            .bool("ok", true)
            .str("op", "status")
            .int("sessions", self.table.len() as u64);
        // Edge counters are additive: emitted only once nonzero, so
        // fault-free transcripts (and the committed goldens) stay
        // byte-identical to the pre-hardening protocol. `verbose:true`
        // opts into the stable all-fields schema instead.
        for (key, counter) in self.stats.named() {
            let value = counter.get();
            if verbose || value > 0 {
                obj = obj.int(key, value);
            }
        }
        // Verbose opts into the memory-accounting block (plain status
        // lines — and the committed goldens — stay byte-identical).
        if verbose {
            self.refresh_mem_gauges();
            let governor = self.registry.governor();
            obj = obj
                .int(
                    "mem_collections_bytes",
                    self.registry.collections_bytes() as u64,
                )
                .int("mem_plan_bytes", self.registry.plan_cache_bytes() as u64)
                .int("mem_sessions_bytes", self.table.accounted_bytes() as u64)
                .int("mem_total_bytes", obs::mem_total())
                .int("mem_budget_bytes", governor.budget() as u64)
                .int("mem_plan_shrinks", governor.plan_shrinks())
                .int("mem_unloads", governor.unloads())
                .int("mem_sheds", governor.sheds());
        }
        obj.array("collections", items).encode()
    }

    /// The `util::obs` exposition surface: site histograms (count, sum,
    /// p50/p90/p99 in µs — or raw values for the Table-4 prune sites),
    /// the edge counters (all of them, zeros included — scrapers need a
    /// stable schema), and per-collection plan-cache statistics read
    /// through the same [`setdisc_plan::PlanCache::stats`] atomics the
    /// `status` op reports.
    fn metrics(&self, prometheus: bool) -> String {
        self.refresh_mem_gauges();
        let sites = obs::snapshot();
        if prometheus {
            return JsonObject::new()
                .bool("ok", true)
                .str("op", "metrics")
                .str("text", &self.render_prometheus(&sites))
                .encode();
        }
        let site_items = sites
            .iter()
            .map(|s| {
                JsonObject::new()
                    .str("site", s.name)
                    .int("count", s.histogram.count)
                    .int("sum", s.histogram.sum)
                    .int("p50", s.histogram.quantile(0.50))
                    .int("p90", s.histogram.quantile(0.90))
                    .int("p99", s.histogram.quantile(0.99))
            })
            .collect();
        let edge_items = self
            .stats
            .named()
            .into_iter()
            .map(|(key, counter)| {
                JsonObject::new()
                    .str("counter", key)
                    .int("value", counter.get())
            })
            .collect();
        let coll_items = self
            .registry
            .snapshots()
            .into_iter()
            .map(|snap| {
                let mut obj = JsonObject::new()
                    .str("name", snap.name())
                    .int("sets", snap.collection().len() as u64)
                    .int("entities", snap.collection().distinct_entities() as u64);
                if let Some(cache) = snap.plan_cache() {
                    let stats = cache.stats();
                    obj = obj
                        .int("plan_nodes", stats.nodes)
                        .int("plan_hits", stats.hits)
                        .int("plan_misses", stats.misses)
                        .int("plan_inserted", stats.inserted)
                        .int("plan_evicted", stats.evicted)
                        .int("plan_weighted_hits", stats.weighted_hits);
                }
                obj
            })
            .collect();
        let governor = self.registry.governor();
        JsonObject::new()
            .bool("ok", true)
            .str("op", "metrics")
            .bool("armed", obs::armed())
            .int("sessions", self.table.len() as u64)
            // Process-wide trace-ring truncation (additive): per-session
            // `dropped` figures die with their sessions; this one survives.
            .int("trace_dropped", crate::table::trace_dropped_total())
            // Memory accounting is always-on (additive fields): the three
            // component gauges, their sum, and the governor's budget and
            // ladder counters.
            .int(
                "mem_collections_bytes",
                self.registry.collections_bytes() as u64,
            )
            .int("mem_plan_bytes", self.registry.plan_cache_bytes() as u64)
            .int("mem_sessions_bytes", self.table.accounted_bytes() as u64)
            .int("mem_total_bytes", obs::mem_total())
            .int("mem_budget_bytes", governor.budget() as u64)
            .int("mem_plan_shrinks", governor.plan_shrinks())
            .int("mem_unloads", governor.unloads())
            .int("mem_sheds", governor.sheds())
            .array("sites", site_items)
            .array("edge", edge_items)
            .array("collections", coll_items)
            .encode()
    }

    /// Prometheus text exposition (version 0.0.4 subset: `# TYPE` comments
    /// plus `name{label="value"} number` samples, one per line).
    fn render_prometheus(&self, sites: &[obs::SiteStats]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE setdisc_sessions_open gauge\n");
        let _ = writeln!(out, "setdisc_sessions_open {}", self.table.len());
        out.push_str("# TYPE setdisc_site_events_total counter\n");
        for s in sites {
            let _ = writeln!(
                out,
                "setdisc_site_events_total{{site=\"{}\"}} {}",
                s.name, s.histogram.count
            );
        }
        out.push_str("# TYPE setdisc_site_value_sum counter\n");
        for s in sites {
            let _ = writeln!(
                out,
                "setdisc_site_value_sum{{site=\"{}\"}} {}",
                s.name, s.histogram.sum
            );
        }
        for (metric, q) in [
            ("setdisc_site_value_p50", 0.50),
            ("setdisc_site_value_p90", 0.90),
            ("setdisc_site_value_p99", 0.99),
        ] {
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for s in sites {
                let _ = writeln!(
                    out,
                    "{metric}{{site=\"{}\"}} {}",
                    s.name,
                    s.histogram.quantile(q)
                );
            }
        }
        out.push_str("# TYPE setdisc_edge_total counter\n");
        for (key, counter) in self.stats.named() {
            let _ = writeln!(
                out,
                "setdisc_edge_total{{counter=\"{key}\"}} {}",
                counter.get()
            );
        }
        out.push_str("# TYPE setdisc_trace_dropped_total counter\n");
        let _ = writeln!(
            out,
            "setdisc_trace_dropped_total {}",
            crate::table::trace_dropped_total()
        );
        // Per-kernel predicted-vs-actual counting cost (milli-ns per cost
        // unit): the same cells as the `cost_model.*` sites, re-labelled by
        // kernel so dashboards can chart the dispatch heuristic's error
        // without parsing site names.
        for (metric, kind) in [
            ("setdisc_cost_model_error_count", "counter"),
            ("setdisc_cost_model_error_sum", "counter"),
            ("setdisc_cost_model_error_p50", "gauge"),
            ("setdisc_cost_model_error_p90", "gauge"),
            ("setdisc_cost_model_error_p99", "gauge"),
        ] {
            let _ = writeln!(out, "# TYPE {metric} {kind}");
            for s in sites {
                let Some(kernel) = s.name.strip_prefix("cost_model.") else {
                    continue;
                };
                let value = match metric {
                    "setdisc_cost_model_error_count" => s.histogram.count,
                    "setdisc_cost_model_error_sum" => s.histogram.sum,
                    "setdisc_cost_model_error_p50" => s.histogram.quantile(0.50),
                    "setdisc_cost_model_error_p90" => s.histogram.quantile(0.90),
                    _ => s.histogram.quantile(0.99),
                };
                let _ = writeln!(out, "{metric}{{kernel=\"{kernel}\"}} {value}");
            }
        }
        out.push_str("# TYPE setdisc_mem_bytes gauge\n");
        for component in obs::MEM_COMPONENTS {
            let _ = writeln!(
                out,
                "setdisc_mem_bytes{{component=\"{}\"}} {}",
                component.name(),
                obs::mem_bytes(component)
            );
        }
        let governor = self.registry.governor();
        out.push_str("# TYPE setdisc_mem_budget_bytes gauge\n");
        let _ = writeln!(out, "setdisc_mem_budget_bytes {}", governor.budget());
        out.push_str("# TYPE setdisc_mem_governor_total counter\n");
        for (action, value) in [
            ("plan_shrink", governor.plan_shrinks()),
            ("unload", governor.unloads()),
            ("shed", governor.sheds()),
        ] {
            let _ = writeln!(
                out,
                "setdisc_mem_governor_total{{action=\"{action}\"}} {value}"
            );
        }
        for (metric, pick) in [
            ("setdisc_plan_nodes", 0usize),
            ("setdisc_plan_hits_total", 1),
            ("setdisc_plan_misses_total", 2),
            ("setdisc_plan_inserted_total", 3),
            ("setdisc_plan_evicted_total", 4),
            ("setdisc_plan_weighted_hits_total", 5),
        ] {
            let kind = if pick == 0 { "gauge" } else { "counter" };
            let _ = writeln!(out, "# TYPE {metric} {kind}");
            for snap in self.registry.snapshots() {
                let Some(cache) = snap.plan_cache() else {
                    continue;
                };
                let stats = cache.stats();
                let value = [
                    stats.nodes,
                    stats.hits,
                    stats.misses,
                    stats.inserted,
                    stats.evicted,
                    stats.weighted_hits,
                ][pick];
                let _ = writeln!(out, "{metric}{{collection=\"{}\"}} {value}", snap.name());
            }
        }
        out
    }

    /// The `trace` op: the session's retained ring, oldest first, plus how
    /// many events the capacity bound has dropped.
    fn trace(&self, session: u64) -> String {
        self.with_session(session, |entry| {
            let events = entry
                .trace
                .events()
                .map(|(seq, step)| {
                    let obj = JsonObject::new().int("seq", *seq);
                    match step {
                        TraceStep::Ask {
                            entity,
                            candidates,
                            select_us,
                            informative,
                            evaluated,
                        } => obj
                            .str("kind", "ask")
                            .str("entity", entity)
                            .int("candidates", *candidates)
                            .int("select_us", *select_us)
                            .int("informative", u64::from(*informative))
                            .int("evaluated", u64::from(*evaluated)),
                        TraceStep::Answer {
                            entity,
                            answer,
                            confident,
                            before,
                            after,
                            backtracks,
                        } => obj
                            .str("kind", "answer")
                            .str("entity", entity)
                            .str("answer", answer)
                            .bool("confident", *confident)
                            .int("before", *before)
                            .int("after", *after)
                            .int("backtracks", *backtracks),
                        TraceStep::Explain {
                            entity,
                            candidates,
                            plan,
                            bound,
                            kernel,
                            count_ns,
                        } => obj
                            .str("kind", "explain")
                            .str("entity", entity)
                            .int("candidates", *candidates)
                            .str("plan", plan)
                            .int("bound", *bound)
                            .str("kernel", kernel)
                            .int("count_ns", *count_ns),
                    }
                })
                .collect();
            JsonObject::new()
                .bool("ok", true)
                .str("op", "trace")
                .int("session", session)
                .int("dropped", entry.trace.dropped())
                .array("events", events)
                .encode()
        })
    }

    /// The `explain` op: the provenance record of the session's latest
    /// fresh selection. Session-less-safe — an unknown session errors like
    /// any session op, a session created without `"explain":true` answers
    /// `armed:false`, and an armed session that has not selected yet
    /// answers `armed:true` with no record. The ranked/counter block is
    /// present only when the strategy actually ran (plan hits carry no
    /// trace: the plan is the why).
    fn explain(&self, session: u64) -> String {
        self.with_session(session, |entry| {
            let base = JsonObject::new()
                .bool("ok", true)
                .str("op", "explain")
                .int("session", session);
            if !entry.engine.explain_enabled() {
                return base.bool("armed", false).encode();
            }
            let Some(p) = entry.engine.provenance() else {
                return base.bool("armed", true).encode();
            };
            let mut obj = base
                .bool("armed", true)
                .int("question", p.question as u64)
                .str("entity", &entry.snapshot.entity_label(p.entity))
                .int("candidates", p.candidates as u64)
                .int("view_len", u64::from(p.view_len))
                .str("plan", p.plan.name())
                .int("bound", p.bound)
                .obj(
                    "dispatch",
                    JsonObject::new()
                        .str(
                            "kernel",
                            if p.dispatch.use_postings {
                                "postings"
                            } else {
                                "elements"
                            },
                        )
                        .int("total_elements", p.dispatch.total_elements)
                        .int("scan_cost", p.dispatch.scan_cost)
                        .int("factor", p.dispatch.factor),
                )
                .int("count_ns", p.measured_count_ns);
            if let Some(trace) = &p.trace {
                let ranked = trace
                    .ranked
                    .iter()
                    .map(|c| {
                        JsonObject::new()
                            .str("entity", &entry.snapshot.entity_label(c.entity))
                            .int("count", u64::from(c.count))
                            .int("rank", u64::from(c.rank))
                            .str("outcome", c.outcome.name())
                    })
                    .collect();
                obj = obj
                    .array("ranked", ranked)
                    .int("informative", u64::from(trace.informative))
                    .int("evaluated", u64::from(trace.evaluated))
                    .int("pruned_duplicate", u64::from(trace.pruned_duplicate))
                    .int("pruned_bound", u64::from(trace.pruned_bound))
                    .bool("memo_hit", trace.memo_hit);
            }
            obj.encode()
        })
    }

    /// Writes the most-populated plan cache to the configured persist path
    /// (see [`ServiceConfig::plan_persist`]); returns the persisted
    /// collection's name and node count, or `None` when persistence is
    /// disabled or nothing was learned.
    pub fn persist_plans(&self) -> Result<Option<(String, u64)>, String> {
        let Some(path) = &self.config.plan_persist else {
            return Ok(None);
        };
        let mut best: Option<(String, std::sync::Arc<setdisc_plan::PlanCache>)> = None;
        for snap in self.registry.snapshots() {
            if let Some(cache) = snap.plan_cache() {
                if best.as_ref().is_none_or(|(_, b)| cache.len() > b.len()) {
                    best = Some((snap.name().to_string(), cache));
                }
            }
        }
        match best {
            Some((name, cache)) => {
                let nodes = setdisc_plan::save_plan(&cache, path)
                    .map_err(|e| format!("persist plan to {}: {e}", path.display()))?;
                Ok(Some((name, nodes)))
            }
            None => Ok(None),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn create(
        &self,
        collection: &str,
        strategy: crate::strategy::StrategySpec,
        examples: &[String],
        budget: Option<u64>,
        prior: &[u64],
        recover: bool,
        explain: bool,
    ) -> String {
        // `acquire` materializes a lazily registered (or governor-unloaded)
        // snapshot and takes the lease the session will hold: from here to
        // entry drop, the degradation ladder cannot unload this snapshot.
        let (snapshot, lease) = match self.registry.acquire(collection) {
            Ok(Some(pair)) => pair,
            Ok(None) => return err_response(&format!("unknown collection {collection:?}")),
            Err(crate::snapshot::AcquireError::Pressure(msg)) => {
                return error_response_coded("overloaded", &msg, Some(1));
            }
            Err(crate::snapshot::AcquireError::Build(msg)) => return err_response(&msg),
        };
        let mut initial: Vec<EntityId> = Vec::with_capacity(examples.len());
        for token in examples {
            match snapshot.resolve_entity(token) {
                Some(id) => initial.push(id),
                None => return err_response(&format!("unknown entity {token:?}")),
            }
        }
        // A §6 prior must cover the whole collection; a prior that
        // GCD-normalizes to uniform is served by the (bit-identical, see
        // `setdisc_core::weights`) unweighted path so it shares the classic
        // plan cache instead of fragmenting it.
        let weights = if prior.is_empty() {
            None
        } else {
            if prior.len() != snapshot.collection().len() {
                return err_response(&format!(
                    "prior covers {} sets but collection {collection:?} has {}",
                    prior.len(),
                    snapshot.collection().len()
                ));
            }
            match setdisc_core::weights::WeightTable::new(prior) {
                Ok(table) if table.is_uniform() => None,
                Ok(table) => Some(std::sync::Arc::new(table)),
                Err(e) => return err_response(&e),
            }
        };
        let (built, label, plan_key) = match &weights {
            Some(w) => {
                let built = match strategy.build_weighted(&self.config.lookahead, w.clone()) {
                    Ok(b) => b,
                    Err(e) => return err_response(&e),
                };
                (
                    built,
                    strategy.weighted_label(w),
                    strategy.weighted_plan_key(w),
                )
            }
            None => (
                strategy.build_tuned(&self.config.lookahead),
                strategy.label(),
                strategy.plan_key(),
            ),
        };
        let mut engine: ServiceEngine = Engine::new(
            SnapshotHandle(std::sync::Arc::clone(&snapshot)),
            &initial,
            built,
        );
        if recover {
            engine.set_backtracking(true);
        }
        if explain {
            // Provenance capture is read-only: the armed engine's question
            // sequence is bit-identical to an unarmed one (pinned by the
            // explain-purity property test).
            engine.set_explain(true);
        }
        // Deterministic strategies share the snapshot's plan cache: every
        // selection is served from (and recorded into) the cross-session
        // decision tree. Randomized strategies get no cache (no plan_key),
        // and weighted sessions key under the prior's fingerprint so they
        // never share nodes with the unweighted plan. The snapshot's cache
        // matches its collection by construction (validated at lazy init /
        // plan install), so the scope skips the O(collection) identity
        // re-hash on this per-create path.
        if self.config.plan_cache_capacity > 0 {
            if let Some(key) = plan_key {
                let cache = snapshot.plan_cache_or_init(self.config.plan_cache_capacity);
                let scope = setdisc_plan::ScopedPlanCache::new_prevalidated(
                    cache,
                    key,
                    snapshot.collection(),
                );
                engine.set_selection_cache(Some(std::sync::Arc::new(scope)));
            }
        }
        let candidates = engine.candidate_count();
        let entry = SessionEntry::new(
            engine,
            snapshot,
            collection.to_string(),
            label,
            budget.unwrap_or(self.config.default_budget),
        )
        .with_lease(lease);
        // Memory admission runs before the table allocates an id, so a
        // shed create consumes nothing a later replay would observe. The
        // ladder may shrink plan caches or unload cold snapshots here;
        // only when both rungs fail is this create refused — established
        // sessions are never touched.
        if !self
            .registry
            .admit(self.table.accounted_bytes() + entry.accounted_bytes())
        {
            // Dropping the entry releases the lease; the reclaim pass can
            // then unload the snapshot this refused create materialized.
            drop(entry);
            self.registry.reclaim(self.table.accounted_bytes());
            self.refresh_mem_gauges();
            return error_response_coded(
                "overloaded",
                "memory budget exhausted; new sessions are shed, established sessions continue",
                Some(1),
            );
        }
        match self.table.insert(entry) {
            Ok(id) => {
                self.refresh_mem_gauges();
                JsonObject::new()
                    .bool("ok", true)
                    .str("op", "create")
                    .int("session", id)
                    .int("candidates", candidates as u64)
                    .encode()
            }
            // Session-count exhaustion is the same backpressure class as
            // the byte budget: structured, retryable, never a hard error.
            Err(e) => error_response_coded("overloaded", &e, Some(1)),
        }
    }

    fn ask(&self, session: u64, choices: Option<usize>) -> String {
        self.with_session(session, |entry| {
            let questions = entry.engine.questions_asked() as u64;
            let done = |reason: &str, entry: &SessionEntry| {
                let mut obj = JsonObject::new()
                    .bool("ok", true)
                    .str("op", "ask")
                    .int("session", session)
                    .bool("done", true)
                    .str("reason", reason)
                    .int("questions", entry.engine.questions_asked() as u64)
                    .int("candidates", entry.engine.candidate_count() as u64);
                if let Some(found) = discovered_label(entry) {
                    obj = obj.str("discovered", &found);
                }
                obj.encode()
            };
            if entry.engine.is_resolved() {
                return done("resolved", entry);
            }
            if questions >= entry.budget {
                return done("budget", entry);
            }
            // Re-asking before answering returns the outstanding question
            // (or §7 batch) verbatim; a fresh ask selects one.
            if entry.pending.is_empty() {
                let candidates = entry.engine.candidate_count() as u64;
                let started = std::time::Instant::now();
                entry.pending = match choices {
                    Some(b) if b > 1 => entry.engine.next_questions(b),
                    _ => entry.engine.next_question().into_iter().collect(),
                };
                let select_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
                if let Some(&first) = entry.pending.first() {
                    let (informative, evaluated) =
                        entry.engine.last_selection_stats().unwrap_or((0, 0));
                    let entity = entry.snapshot.entity_label(first);
                    entry.trace.push(TraceStep::Ask {
                        entity,
                        candidates,
                        select_us,
                        informative,
                        evaluated,
                    });
                    // Explain-armed sessions also ring a compact provenance
                    // event beside the ask (the full record stays on the
                    // engine for the `explain` op).
                    let explained = entry.engine.provenance().map(|p| TraceStep::Explain {
                        entity: entry.snapshot.entity_label(p.entity),
                        candidates: p.candidates as u64,
                        plan: p.plan.name(),
                        bound: p.bound,
                        kernel: if p.dispatch.use_postings {
                            "postings"
                        } else {
                            "elements"
                        },
                        count_ns: p.measured_count_ns,
                    });
                    if let Some(step) = explained {
                        entry.trace.push(step);
                    }
                }
            }
            match entry.pending.first().copied() {
                Some(first) => {
                    let mut obj = JsonObject::new()
                        .bool("ok", true)
                        .str("op", "ask")
                        .int("session", session)
                        .bool("done", false)
                        .str("entity", &entry.snapshot.entity_label(first))
                        .int("questions", questions);
                    // Additive: the batch appears only when there is more
                    // than one option, so classic transcripts are
                    // byte-identical.
                    if entry.pending.len() > 1 {
                        let labels: Vec<String> = entry
                            .pending
                            .iter()
                            .map(|&e| entry.snapshot.entity_label(e))
                            .collect();
                        obj = obj.strs("entities", &labels);
                    }
                    obj.encode()
                }
                // Every informative entity excluded: the session cannot
                // make progress — report the survivors.
                None => done("exhausted", entry),
            }
        })
    }

    fn answer(&self, session: u64, entity: &str, answer: Answer, confident: bool) -> String {
        let result = self.with_session_raw(session, |entry| {
            let Some(id) = entry.snapshot.resolve_entity(entity) else {
                return Err(format!("unknown entity {entity:?}"));
            };
            entry.pending.clear();
            let before = entry.engine.candidate_count() as u64;
            let applied = entry.engine.history().len();
            entry.engine.answer_full(id, answer, confident);
            trace_answers(entry, applied, before, confident);
            Ok(answer_outcome(entry))
        });
        self.finish_answer(session, result)
    }

    fn answer_choice(&self, session: u64, choice: u64, confident: bool) -> String {
        let result = self.with_session_raw(session, |entry| {
            if entry.pending.is_empty() {
                return Err("no outstanding question batch to choose from".to_string());
            }
            let batch = std::mem::take(&mut entry.pending);
            if choice > batch.len() as u64 {
                // Hand the batch back: an invalid pick must not consume it.
                let err = format!("choice {choice} out of range for {} options", batch.len());
                entry.pending = batch;
                return Err(err);
            }
            let before = entry.engine.candidate_count() as u64;
            let applied = entry.engine.history().len();
            entry
                .engine
                .answer_choice(&batch, choice as usize, confident);
            trace_answers(entry, applied, before, confident);
            Ok(answer_outcome(entry))
        });
        self.finish_answer(session, result)
    }

    /// Common tail of both answer forms: report the contradiction closure
    /// or the surviving-candidate counts (plus the §6 backtrack count once
    /// any recovery has fired).
    fn finish_answer(&self, session: u64, result: Option<Result<AnswerOutcome, String>>) -> String {
        match result {
            None => unknown_session(session),
            Some(Err(e)) => err_response(&e),
            Some(Ok(Err(questions))) => {
                self.table.remove(session);
                err_response(&format!(
                    "answers contradict every candidate set after {questions} questions; session closed"
                ))
            }
            Some(Ok(Ok((candidates, questions, backtracks)))) => {
                let mut obj = JsonObject::new()
                    .bool("ok", true)
                    .str("op", "answer")
                    .int("session", session)
                    .int("candidates", candidates)
                    .int("questions", questions);
                if backtracks > 0 {
                    obj = obj.int("backtracks", backtracks);
                }
                obj.encode()
            }
        }
    }

    fn status(&self, session: u64) -> String {
        self.with_session(session, |entry| {
            let mut obj = JsonObject::new()
                .bool("ok", true)
                .str("op", "status")
                .int("session", session)
                .str("collection", &entry.collection_name)
                .str("strategy", &entry.strategy_label)
                .int("candidates", entry.engine.candidate_count() as u64)
                .int("questions", entry.engine.questions_asked() as u64)
                .int("unknowns", entry.engine.unknowns() as u64)
                .int("budget", entry.budget)
                .bool("done", entry.engine.is_resolved());
            if entry.engine.backtracks() > 0 {
                obj = obj.int("backtracks", entry.engine.backtracks() as u64);
            }
            if let Some(found) = discovered_label(entry) {
                obj = obj.str("discovered", &found);
            }
            obj.encode()
        })
    }

    fn close(&self, session: u64) -> String {
        if self.table.remove(session) {
            JsonObject::new()
                .bool("ok", true)
                .str("op", "close")
                .int("session", session)
                .encode()
        } else {
            unknown_session(session)
        }
    }

    fn collections(&self) -> String {
        let items = self
            .registry
            .list()
            .into_iter()
            .map(|info| {
                JsonObject::new()
                    .str("name", &info.name)
                    .int("sets", info.sets as u64)
                    .int("entities", info.entities as u64)
                    .str("state", info.state)
                    .int("bytes", info.bytes as u64)
                    .int("plan_bytes", info.plan_bytes as u64)
            })
            .collect();
        JsonObject::new()
            .bool("ok", true)
            .str("op", "collections")
            .array("collections", items)
            .encode()
    }

    fn with_session(&self, session: u64, f: impl FnOnce(&mut SessionEntry) -> String) -> String {
        self.with_session_raw(session, f)
            .unwrap_or_else(|| unknown_session(session))
    }

    fn with_session_raw<R>(
        &self,
        session: u64,
        f: impl FnOnce(&mut SessionEntry) -> R,
    ) -> Option<R> {
        self.table.with(session, f)
    }
}

/// Post-answer state: `Err(questions)` when the assertions killed every
/// candidate (and §6 recovery, if armed, could not repair the transcript),
/// else `(candidates, questions, backtracks)`.
type AnswerOutcome = Result<(u64, u64, u64), usize>;

fn answer_outcome(entry: &SessionEntry) -> AnswerOutcome {
    if entry.engine.candidate_count() == 0 {
        // Inconsistent assertions: the session is dead. Report and
        // release it (the wire client cannot back out an answer).
        return Err(entry.engine.questions_asked());
    }
    Ok((
        entry.engine.candidate_count() as u64,
        entry.engine.questions_asked() as u64,
        entry.engine.backtracks() as u64,
    ))
}

/// Pushes one trace event per history entry an answer op appended
/// (several for a §7 choice — its implied assertions). Events record the
/// transcript *as the engine holds it*, so a §6 recovery that rewrote the
/// just-applied entry traces the corrected answer; the op-level
/// before/after candidate counts and backtrack total are shared across
/// the batch.
fn trace_answers(entry: &mut SessionEntry, applied: usize, before: u64, confident: bool) {
    let after = entry.engine.candidate_count() as u64;
    let backtracks = entry.engine.backtracks() as u64;
    let new: Vec<(EntityId, Answer)> = entry.engine.history()[applied..].to_vec();
    for (id, ans) in new {
        let entity = entry.snapshot.entity_label(id);
        entry.trace.push(TraceStep::Answer {
            entity,
            answer: answer_token(ans),
            confident,
            before,
            after,
            backtracks,
        });
    }
}

/// The wire token for an answer (the inverse of the parser's accepted
/// spellings).
fn answer_token(answer: Answer) -> &'static str {
    match answer {
        Answer::Yes => "yes",
        Answer::No => "no",
        Answer::Unknown => "unknown",
    }
}

/// The resolved set's label when exactly one candidate remains.
fn discovered_label(entry: &SessionEntry) -> Option<String> {
    match entry.engine.candidate_ids() {
        [single] => Some(entry.snapshot.set_label(*single)),
        _ => None,
    }
}

fn err_response(message: &str) -> String {
    JsonObject::new()
        .bool("ok", false)
        .str("error", message)
        .encode()
}

fn unknown_session(session: u64) -> String {
    err_response(&format!("unknown session {session}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use setdisc_util::report::{parse_json, JsonValue};

    fn figure1_service() -> Service {
        let svc = Service::default();
        svc.registry().install_fixture("figure1").unwrap();
        svc
    }

    fn field<'a>(v: &'a JsonValue, key: &str) -> &'a JsonValue {
        v.get(key).unwrap_or_else(|| panic!("missing {key}: {v:?}"))
    }

    fn call(svc: &Service, line: &str) -> JsonValue {
        parse_json(&svc.handle_line(line)).expect("responses are valid JSON")
    }

    #[test]
    fn full_conversation_discovers_a_set() {
        let svc = figure1_service();
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","strategy":"most-even"}"#,
        );
        assert_eq!(field(&resp, "ok").as_bool(), Some(true));
        let id = field(&resp, "session").as_u64().unwrap();
        assert_eq!(field(&resp, "candidates").as_u64(), Some(7));

        // Target S2 = {a, d, e}: answer membership questions truthfully.
        let target = ["a", "d", "e"];
        loop {
            let resp = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
            if field(&resp, "done").as_bool() == Some(true) {
                assert_eq!(field(&resp, "reason").as_str(), Some("resolved"));
                assert_eq!(field(&resp, "discovered").as_str(), Some("S2"));
                break;
            }
            let entity = field(&resp, "entity").as_str().unwrap().to_string();
            let ans = if target.contains(&entity.as_str()) {
                "yes"
            } else {
                "no"
            };
            let resp = call(
                &svc,
                &format!(
                    r#"{{"op":"answer","session":{id},"entity":"{entity}","answer":"{ans}"}}"#
                ),
            );
            assert_eq!(field(&resp, "ok").as_bool(), Some(true));
        }
        let status = call(&svc, &format!(r#"{{"op":"status","session":{id}}}"#));
        assert_eq!(field(&status, "done").as_bool(), Some(true));
        assert_eq!(field(&status, "discovered").as_str(), Some("S2"));
        let close = call(&svc, &format!(r#"{{"op":"close","session":{id}}}"#));
        assert_eq!(field(&close, "ok").as_bool(), Some(true));
        assert_eq!(svc.open_sessions(), 0);
        // Closed session is gone.
        let resp = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        assert_eq!(field(&resp, "ok").as_bool(), Some(false));
    }

    #[test]
    fn ask_is_idempotent_until_answered() {
        let svc = figure1_service();
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        let a1 = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        let a2 = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        assert_eq!(
            field(&a1, "entity").as_str(),
            field(&a2, "entity").as_str(),
            "repeated ask returns the outstanding question"
        );
    }

    #[test]
    fn budget_halts_ask() {
        let svc = figure1_service();
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","strategy":"most-even","budget":1}"#,
        );
        let id = field(&resp, "session").as_u64().unwrap();
        let ask = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        let entity = field(&ask, "entity").as_str().unwrap().to_string();
        call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"entity":"{entity}","answer":"no"}}"#),
        );
        let ask = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        assert_eq!(field(&ask, "done").as_bool(), Some(true));
        assert_eq!(field(&ask, "reason").as_str(), Some("budget"));
        assert!(field(&ask, "candidates").as_u64().unwrap() > 1);
    }

    #[test]
    fn contradiction_closes_the_session() {
        let svc = figure1_service();
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        // e → only S2; then i → only S5: contradiction.
        call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"entity":"e","answer":"yes"}}"#),
        );
        let resp = call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"entity":"i","answer":"yes"}}"#),
        );
        assert_eq!(field(&resp, "ok").as_bool(), Some(false));
        assert!(field(&resp, "error")
            .as_str()
            .unwrap()
            .contains("contradict"));
        assert_eq!(svc.open_sessions(), 0);
    }

    #[test]
    fn unknown_answers_exclude_and_continue() {
        let svc = figure1_service();
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        let ask = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        let first = field(&ask, "entity").as_str().unwrap().to_string();
        call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"entity":"{first}","answer":"unknown"}}"#),
        );
        let ask = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        let second = field(&ask, "entity").as_str().unwrap().to_string();
        assert_ne!(first, second, "excluded entity is not re-asked");
        let status = call(&svc, &format!(r#"{{"op":"status","session":{id}}}"#));
        assert_eq!(field(&status, "unknowns").as_u64(), Some(1));
        assert_eq!(field(&status, "questions").as_u64(), Some(0));
    }

    #[test]
    fn examples_narrow_creation_and_errors_are_reported() {
        let svc = figure1_service();
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","examples":["d"]}"#,
        );
        assert_eq!(field(&resp, "candidates").as_u64(), Some(3));
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","examples":["zzz"]}"#,
        );
        assert_eq!(field(&resp, "ok").as_bool(), Some(false));
        let resp = call(&svc, r#"{"op":"create","collection":"missing"}"#);
        assert!(field(&resp, "error")
            .as_str()
            .unwrap()
            .contains("unknown collection"));
        let resp = call(&svc, "garbage");
        assert_eq!(field(&resp, "ok").as_bool(), Some(false));
    }

    #[test]
    fn collections_lists_registry() {
        let svc = figure1_service();
        svc.registry().install_fixture("copyadd:10:0.5:1").unwrap();
        let resp = call(&svc, r#"{"op":"collections"}"#);
        let list = field(&resp, "collections").as_array().unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(field(&list[0], "name").as_str(), Some("copyadd:10:0.5:1"));
        assert_eq!(field(&list[1], "sets").as_u64(), Some(7));
        // Governance fields are always present: load state and accounted
        // bytes per collection (plan bytes 0 until a cache exists).
        assert_eq!(field(&list[0], "state").as_str(), Some("loaded"));
        assert!(field(&list[0], "bytes").as_u64().unwrap() > 0);
        assert_eq!(field(&list[0], "plan_bytes").as_u64(), Some(0));
        // A lazily registered fixture lists as `registered` with nothing
        // resident, and `create` materializes it transparently.
        svc.registry().register_fixture("copyadd:12:0.5:9").unwrap();
        let resp = call(&svc, r#"{"op":"collections"}"#);
        let list = field(&resp, "collections").as_array().unwrap();
        assert_eq!(field(&list[1], "state").as_str(), Some("registered"));
        assert_eq!(field(&list[1], "bytes").as_u64(), Some(0));
        assert_eq!(field(&list[1], "sets").as_u64(), Some(0));
        let made = call(&svc, r#"{"op":"create","collection":"copyadd:12:0.5:9"}"#);
        assert_eq!(field(&made, "ok").as_bool(), Some(true));
        let resp = call(&svc, r#"{"op":"collections"}"#);
        let list = field(&resp, "collections").as_array().unwrap();
        assert_eq!(field(&list[1], "state").as_str(), Some("loaded"));
        assert_eq!(field(&list[1], "sets").as_u64(), Some(12));
    }

    #[test]
    fn service_status_reports_plan_cache_hit_rates() {
        let svc = figure1_service();
        // Before any session: no cache installed, no plan fields.
        let resp = call(&svc, r#"{"op":"status"}"#);
        assert_eq!(field(&resp, "ok").as_bool(), Some(true));
        assert_eq!(field(&resp, "sessions").as_u64(), Some(0));
        let list = field(&resp, "collections").as_array().unwrap();
        assert!(list[0].get("plan_nodes").is_none());

        // One full truthful session populates the plan; a second identical
        // one is served from it.
        for _ in 0..2 {
            let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
            let id = field(&resp, "session").as_u64().unwrap();
            let target = ["a", "d", "e"];
            loop {
                let resp = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
                if field(&resp, "done").as_bool() == Some(true) {
                    break;
                }
                let entity = field(&resp, "entity").as_str().unwrap().to_string();
                let ans = if target.contains(&entity.as_str()) {
                    "yes"
                } else {
                    "no"
                };
                call(
                    &svc,
                    &format!(
                        r#"{{"op":"answer","session":{id},"entity":"{entity}","answer":"{ans}"}}"#
                    ),
                );
            }
            call(&svc, &format!(r#"{{"op":"close","session":{id}}}"#));
        }
        let resp = call(&svc, r#"{"op":"status"}"#);
        let list = field(&resp, "collections").as_array().unwrap();
        assert!(field(&list[0], "plan_nodes").as_u64().unwrap() > 0);
        assert!(field(&list[0], "plan_hits").as_u64().unwrap() > 0);
        let rate = field(&list[0], "plan_hit_rate").as_f64().unwrap();
        assert!(rate > 0.0 && rate <= 1.0);
    }

    #[test]
    fn plan_capacity_zero_disables_caching() {
        let svc = Service::new(ServiceConfig {
            plan_cache_capacity: 0,
            ..ServiceConfig::default()
        });
        svc.registry().install_fixture("figure1").unwrap();
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        assert!(
            svc.registry()
                .get("figure1")
                .unwrap()
                .plan_cache()
                .is_none(),
            "no cache may be created when disabled"
        );
    }

    #[test]
    fn persist_plans_round_trips_through_config_path() {
        let dir = std::env::temp_dir().join(format!("setdisc_svc_persist_{}", std::process::id()));
        let path = dir.join("figure1.plan");
        let svc = Service::new(ServiceConfig {
            plan_persist: Some(path.clone()),
            ..ServiceConfig::default()
        });
        svc.registry().install_fixture("figure1").unwrap();
        assert_eq!(svc.persist_plans(), Ok(None), "nothing learned yet");
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        let (name, nodes) = svc.persist_plans().unwrap().expect("one node learned");
        assert_eq!(name, "figure1");
        assert!(nodes >= 1);
        // A fresh service boots warm from the persisted plan and serves the
        // first root question from cache.
        let svc2 = figure1_service();
        let snap = svc2.registry().get("figure1").unwrap();
        let loaded = setdisc_plan::load_plan(&path, 0).unwrap();
        snap.install_plan_cache(std::sync::Arc::new(loaded))
            .unwrap();
        let resp = call(&svc2, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        call(&svc2, &format!(r#"{{"op":"ask","session":{id}}}"#));
        let stats = snap.plan_cache().unwrap().stats();
        assert!(stats.hits >= 1, "warm boot must hit: {stats:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weighted_create_labels_and_separate_plans() {
        let svc = figure1_service();
        // A skewed prior on S2 flows into the strategy label; a uniform
        // (after GCD) prior is served by the classic path.
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","prior":[1,50,1,1,1,1,1]}"#,
        );
        assert_eq!(field(&resp, "ok").as_bool(), Some(true));
        let id = field(&resp, "session").as_u64().unwrap();
        let status = call(&svc, &format!(r#"{{"op":"status","session":{id}}}"#));
        let label = field(&status, "strategy").as_str().unwrap();
        assert!(label.starts_with("k-LP(k=2,AD,w:"), "{label}");
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","prior":[3,3,3,3,3,3,3]}"#,
        );
        let id = field(&resp, "session").as_u64().unwrap();
        let status = call(&svc, &format!(r#"{{"op":"status","session":{id}}}"#));
        assert_eq!(field(&status, "strategy").as_str(), Some("k-LP(k=2,AD)"));
        // Validation errors surface verbatim.
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","prior":[1,2]}"#,
        );
        assert!(field(&resp, "error").as_str().unwrap().contains("covers"));
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","prior":[1,0,1,1,1,1,1]}"#,
        );
        assert!(field(&resp, "error").as_str().unwrap().contains("zero"));
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","strategy":"info-gain","prior":[1,50,1,1,1,1,1]}"#,
        );
        assert!(field(&resp, "error")
            .as_str()
            .unwrap()
            .contains("does not support a prior"));
    }

    #[test]
    fn weighted_sessions_hit_their_own_plan_and_report_it() {
        let svc = figure1_service();
        let create = r#"{"op":"create","collection":"figure1","prior":[1,50,1,1,1,1,1]}"#;
        // Two identical weighted sessions: the second is served warm.
        for _ in 0..2 {
            let resp = call(&svc, create);
            let id = field(&resp, "session").as_u64().unwrap();
            let target = ["a", "d", "e"];
            loop {
                let resp = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
                if field(&resp, "done").as_bool() == Some(true) {
                    assert_eq!(field(&resp, "discovered").as_str(), Some("S2"));
                    break;
                }
                let entity = field(&resp, "entity").as_str().unwrap().to_string();
                let ans = if target.contains(&entity.as_str()) {
                    "yes"
                } else {
                    "no"
                };
                call(
                    &svc,
                    &format!(
                        r#"{{"op":"answer","session":{id},"entity":"{entity}","answer":"{ans}"}}"#
                    ),
                );
            }
            call(&svc, &format!(r#"{{"op":"close","session":{id}}}"#));
        }
        let resp = call(&svc, r#"{"op":"status"}"#);
        let list = field(&resp, "collections").as_array().unwrap();
        assert!(
            field(&list[0], "plan_weighted_hits").as_u64().unwrap() > 0,
            "warm weighted run must report weighted plan hits"
        );
    }

    #[test]
    fn recover_session_backtracks_instead_of_closing() {
        let svc = figure1_service();
        let resp = call(
            &svc,
            r#"{"op":"create","collection":"figure1","recover":true}"#,
        );
        let id = field(&resp, "session").as_u64().unwrap();
        // e → only S2 (a lie, marked unconfident); then f → only S3:
        // contradiction. Recovery flips the unconfident entry and the
        // session survives with S3 as the sole candidate.
        call(
            &svc,
            &format!(
                r#"{{"op":"answer","session":{id},"entity":"e","answer":"yes","confident":false}}"#
            ),
        );
        let resp = call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"entity":"f","answer":"yes"}}"#),
        );
        assert_eq!(field(&resp, "ok").as_bool(), Some(true), "{resp:?}");
        assert_eq!(field(&resp, "candidates").as_u64(), Some(1));
        assert_eq!(field(&resp, "backtracks").as_u64(), Some(1));
        let status = call(&svc, &format!(r#"{{"op":"status","session":{id}}}"#));
        assert_eq!(field(&status, "discovered").as_str(), Some("S3"));
        assert_eq!(field(&status, "backtracks").as_u64(), Some(1));
        // Without recover, the same lies close the session (regression for
        // the empty-candidate-set path).
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"entity":"e","answer":"yes"}}"#),
        );
        let resp = call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"entity":"f","answer":"yes"}}"#),
        );
        assert_eq!(field(&resp, "ok").as_bool(), Some(false));
        assert!(field(&resp, "error")
            .as_str()
            .unwrap()
            .contains("contradict"));
    }

    #[test]
    fn multiple_choice_ask_batches_and_choice_resolves() {
        let svc = figure1_service();
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        let ask = call(
            &svc,
            &format!(r#"{{"op":"ask","session":{id},"choices":3}}"#),
        );
        let batch: Vec<String> = field(&ask, "entities")
            .as_array()
            .unwrap()
            .iter()
            .map(|v| v.as_str().unwrap().to_string())
            .collect();
        assert_eq!(batch.len(), 3);
        assert_eq!(field(&ask, "entity").as_str(), Some(batch[0].as_str()));
        // Re-ask (even without "choices") returns the outstanding batch.
        let again = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        assert_eq!(field(&again, "entities").as_array().unwrap().len(), 3);
        // Out-of-range pick leaves the batch outstanding; a truthful pick
        // consumes it. First-applicable semantics: No for every entity
        // before the pick, Yes at the pick (or all No for "none of these"),
        // so between 1 and 3 questions are charged.
        let target = ["a", "d", "e"];
        let resp = call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"choice":4}}"#),
        );
        assert!(field(&resp, "error")
            .as_str()
            .unwrap()
            .contains("out of range"));
        let choice = batch
            .iter()
            .position(|e| target.contains(&e.as_str()))
            .unwrap_or(batch.len());
        let resp = call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"choice":{choice}}}"#),
        );
        assert_eq!(field(&resp, "ok").as_bool(), Some(true), "{resp:?}");
        let asked = field(&resp, "questions").as_u64().unwrap();
        assert!((1..=3).contains(&asked), "charged {asked} questions");
        // A choice with no outstanding batch is an error.
        let resp = call(
            &svc,
            &format!(r#"{{"op":"answer","session":{id},"choice":0}}"#),
        );
        assert!(field(&resp, "error")
            .as_str()
            .unwrap()
            .contains("no outstanding"));
        // The session still resolves truthfully for target S2.
        loop {
            let resp = call(
                &svc,
                &format!(r#"{{"op":"ask","session":{id},"choices":4}}"#),
            );
            if field(&resp, "done").as_bool() == Some(true) {
                assert_eq!(field(&resp, "discovered").as_str(), Some("S2"));
                break;
            }
            let batch: Vec<String> = match field(&resp, "entities").as_array() {
                Some(items) => items
                    .iter()
                    .map(|v| v.as_str().unwrap().to_string())
                    .collect(),
                None => vec![field(&resp, "entity").as_str().unwrap().to_string()],
            };
            let choice = batch
                .iter()
                .position(|e| target.contains(&e.as_str()))
                .unwrap_or(batch.len());
            let resp = call(
                &svc,
                &format!(r#"{{"op":"answer","session":{id},"choice":{choice}}}"#),
            );
            assert_eq!(field(&resp, "ok").as_bool(), Some(true), "{resp:?}");
        }
    }

    #[test]
    fn verbose_status_emits_every_edge_counter() {
        let svc = figure1_service();
        // Default: a fault-free service shows no edge counters at all.
        let resp = call(&svc, r#"{"op":"status"}"#);
        assert!(resp.get("panics").is_none());
        // Verbose: the full stable schema, zeros included.
        let resp = call(&svc, r#"{"op":"status","verbose":true}"#);
        for key in [
            "panics",
            "quarantined",
            "shed_connections",
            "shed_requests",
            "too_large",
            "deadline_drops",
            "accept_retries",
        ] {
            assert_eq!(field(&resp, key).as_u64(), Some(0), "{key}");
        }
    }

    #[test]
    fn metrics_op_reports_sites_edges_and_plans() {
        let svc = figure1_service();
        let resp = call(&svc, r#"{"op":"metrics"}"#);
        assert_eq!(field(&resp, "ok").as_bool(), Some(true));
        assert_eq!(field(&resp, "op").as_str(), Some("metrics"));
        assert_eq!(field(&resp, "sessions").as_u64(), Some(0));
        let sites = field(&resp, "sites").as_array().unwrap();
        assert_eq!(sites.len(), setdisc_util::obs::SITES.len());
        for s in sites {
            for key in ["site", "count", "sum", "p50", "p90", "p99"] {
                assert!(s.get(key).is_some(), "site missing {key}: {s:?}");
            }
        }
        // Edge counters appear zero-valued (stable schema), and read the
        // same cells as status.
        let edge = field(&resp, "edge").as_array().unwrap();
        assert_eq!(edge.len(), 7);
        assert_eq!(field(&edge[0], "counter").as_str(), Some("panics"));
        assert_eq!(field(&edge[0], "value").as_u64(), Some(0));
        // Plan counters reconcile with the status report after a session.
        let create = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&create, "session").as_u64().unwrap();
        call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        let metrics = call(&svc, r#"{"op":"metrics"}"#);
        let status = call(&svc, r#"{"op":"status"}"#);
        let m = &field(&metrics, "collections").as_array().unwrap()[0];
        let s = &field(&status, "collections").as_array().unwrap()[0];
        assert_eq!(
            field(m, "plan_hits").as_u64(),
            field(s, "plan_hits").as_u64()
        );
        assert_eq!(
            field(m, "plan_misses").as_u64(),
            field(s, "plan_misses").as_u64()
        );
        assert!(field(m, "plan_inserted").as_u64().unwrap() >= 1);
    }

    #[test]
    fn prometheus_rendering_matches_the_minimal_grammar() {
        let svc = figure1_service();
        let resp = call(&svc, r#"{"op":"metrics","format":"prometheus"}"#);
        let text = field(&resp, "text").as_str().unwrap();
        let mut samples = 0;
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(line.starts_with("# TYPE "), "bad comment: {line}");
                continue;
            }
            samples += 1;
            let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
                panic!("sample must be `name value`: {line}");
            });
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let bare = match name.split_once('{') {
                Some((metric, labels)) => {
                    assert!(labels.ends_with('}'), "unclosed labels: {line}");
                    let body = &labels[..labels.len() - 1];
                    let (key, val) = body.split_once("=\"").unwrap_or_else(|| {
                        panic!("label must be key=\"value\": {line}");
                    });
                    assert!(val.ends_with('"'), "unterminated label: {line}");
                    assert!(
                        key.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                        "bad label key in: {line}"
                    );
                    metric
                }
                None => name,
            };
            assert!(
                bare.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "bad metric name in: {line}"
            );
            assert!(bare.starts_with("setdisc_"), "unprefixed metric: {line}");
        }
        assert!(samples > 20, "expected a full exposition, got {samples}");
    }

    #[test]
    fn trace_records_asks_and_answers_for_replay() {
        let svc = figure1_service();
        let resp = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        let id = field(&resp, "session").as_u64().unwrap();
        let target = ["a", "d", "e"];
        loop {
            let resp = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
            if field(&resp, "done").as_bool() == Some(true) {
                break;
            }
            let entity = field(&resp, "entity").as_str().unwrap().to_string();
            let ans = if target.contains(&entity.as_str()) {
                "yes"
            } else {
                "no"
            };
            call(
                &svc,
                &format!(
                    r#"{{"op":"answer","session":{id},"entity":"{entity}","answer":"{ans}"}}"#
                ),
            );
        }
        let trace = call(&svc, &format!(r#"{{"op":"trace","session":{id}}}"#));
        assert_eq!(field(&trace, "ok").as_bool(), Some(true));
        assert_eq!(field(&trace, "dropped").as_u64(), Some(0));
        let events = field(&trace, "events").as_array().unwrap();
        let asks: Vec<_> = events
            .iter()
            .filter(|e| field(e, "kind").as_str() == Some("ask"))
            .collect();
        let answers: Vec<_> = events
            .iter()
            .filter(|e| field(e, "kind").as_str() == Some("answer"))
            .collect();
        assert_eq!(asks.len(), answers.len(), "one selection per answer");
        assert!(!asks.is_empty());
        // Ask events carry the view size and selection timing; every
        // answer narrows (before > after on this truthful run).
        for ask in &asks {
            assert!(field(ask, "candidates").as_u64().unwrap() >= 2);
            assert!(ask.get("select_us").is_some());
        }
        for ans in &answers {
            let before = field(ans, "before").as_u64().unwrap();
            let after = field(ans, "after").as_u64().unwrap();
            assert!(before >= after, "answers narrow: {before} -> {after}");
        }
        // The traced (entity, answer) pairs replay to the same resolution
        // on a fresh direct engine (bit-identity is asserted end-to-end in
        // the e2e_concurrent suite).
        let status = call(&svc, &format!(r#"{{"op":"status","session":{id}}}"#));
        assert_eq!(
            field(&status, "questions").as_u64(),
            Some(answers.len() as u64)
        );
        // Unknown sessions error like any session op.
        let missing = call(&svc, r#"{"op":"trace","session":999}"#);
        assert_eq!(field(&missing, "ok").as_bool(), Some(false));
    }

    #[test]
    fn capacity_limit_applies_to_create() {
        let svc = Service::new(ServiceConfig {
            max_sessions: 1,
            ..ServiceConfig::default()
        });
        svc.registry().install_fixture("figure1").unwrap();
        let first = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        assert_eq!(field(&first, "ok").as_bool(), Some(true));
        let second = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        assert_eq!(field(&second, "ok").as_bool(), Some(false));
        assert!(field(&second, "error").as_str().unwrap().contains("full"));
        // Session exhaustion is structured backpressure, not a hard error.
        assert_eq!(field(&second, "code").as_str(), Some("overloaded"));
        assert_eq!(field(&second, "retry_after").as_u64(), Some(1));
    }

    #[test]
    fn memory_budget_sheds_creates_but_never_established_sessions() {
        let svc = figure1_service();
        let first = call(
            &svc,
            r#"{"op":"create","collection":"figure1","examples":["d"]}"#,
        );
        let id = field(&first, "session").as_u64().unwrap();
        // Tighten the budget below what a second session would need: the
        // ladder cannot unload figure1 (the live session holds its lease),
        // so the create is shed with the structured overloaded shape.
        let registry = svc.registry();
        registry.set_budget(
            registry.collections_bytes() + registry.plan_cache_bytes() + svc.session_bytes() + 4096,
        );
        let second = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        assert_eq!(field(&second, "ok").as_bool(), Some(false));
        assert_eq!(field(&second, "code").as_str(), Some("overloaded"));
        assert_eq!(field(&second, "retry_after").as_u64(), Some(1));
        assert!(registry.governor().sheds() >= 1);
        assert_eq!(registry.governor().unloads(), 0, "leased snapshot kept");
        // The established session is untouched and still serves.
        let resp = call(&svc, &format!(r#"{{"op":"ask","session":{id}}}"#));
        assert_eq!(field(&resp, "ok").as_bool(), Some(true));
        let status = call(&svc, r#"{"op":"status","verbose":true}"#);
        assert_eq!(field(&status, "sessions").as_u64(), Some(1));
        assert!(field(&status, "mem_sheds").as_u64().unwrap() >= 1);
        assert!(field(&status, "mem_total_bytes").as_u64().unwrap() > 0);
        // Closing the session releases the lease; the same create now
        // fits after the ladder reclaims what it must.
        call(&svc, &format!(r#"{{"op":"close","session":{id}}}"#));
        let third = call(&svc, r#"{"op":"create","collection":"figure1"}"#);
        assert_eq!(field(&third, "ok").as_bool(), Some(true), "{third:?}");
    }
}
