//! The line-delimited JSON wire protocol.
//!
//! One request per line, one response per line, in order. Requests are
//! parsed with [`setdisc_util::report::parse_json`]; responses are emitted
//! with [`setdisc_util::report::JsonObject`]. The grammar (all unknown
//! fields are ignored; `session` ids are JSON numbers):
//!
//! ```text
//! {"op":"create","collection":NAME,
//!  "strategy":FAMILY?,"metric":"ad"|"h"?,"k":N?,"beam":N?,"seed":N?,
//!  "examples":[ENTITY,...]?,"budget":N?,
//!  "prior":[WEIGHT,...]?,"recover":BOOL?,"explain":BOOL?}
//!     -> {"ok":true,"op":"create","session":ID,"candidates":N}
//! {"op":"ask","session":ID,"choices":N?}
//!     -> {"ok":true,"op":"ask","session":ID,"done":false,"entity":NAME,
//!         "questions":N}                       (plus "entities":[NAME,...]
//!                                              when choices > 1 applies)
//!      | {"ok":true,"op":"ask","session":ID,"done":true,"reason":
//!         "resolved"|"budget"|"exhausted","questions":N,"candidates":N,
//!         "discovered":NAME?}
//! {"op":"answer","session":ID,"entity":NAME,"answer":"yes"|"no"|"unknown",
//!  "confident":BOOL?}
//!      | {"op":"answer","session":ID,"choice":N,"confident":BOOL?}
//!     -> {"ok":true,"op":"answer","session":ID,"candidates":N,
//!         "questions":N}                       (plus "backtracks":N once a
//!                                              recovery has fired)
//! {"op":"status","session":ID}
//!     -> {"ok":true,"op":"status",...full session state...}
//! {"op":"status","verbose":BOOL?} -> {"ok":true,"op":"status","sessions":N,
//!                                     "collections":[{name,sets,entities,
//!                                      plan_nodes?,plan_hits?,plan_misses?,
//!                                      plan_hit_rate?}]}
//!                                    (verbose adds every edge counter,
//!                                     zeros included, plus the memory
//!                                     block: mem_collections_bytes,
//!                                     mem_plan_bytes, mem_sessions_bytes,
//!                                     mem_total_bytes, mem_budget_bytes,
//!                                     mem_plan_shrinks, mem_unloads,
//!                                     mem_sheds — a stable schema)
//! {"op":"close","session":ID}     -> {"ok":true,"op":"close","session":ID}
//! {"op":"collections"}            -> {"ok":true,"op":"collections",
//!                                     "collections":[{name,sets,entities,
//!                                      state:"registered"|"loaded"|
//!                                      "unloaded",bytes,plan_bytes}]}
//! {"op":"metrics","format":"json"|"prometheus"?}
//!     -> {"ok":true,"op":"metrics","armed":BOOL,"sessions":N,
//!         "mem_collections_bytes":N,"mem_plan_bytes":N,
//!         "mem_sessions_bytes":N,"mem_total_bytes":N,
//!         "mem_budget_bytes":N,"mem_plan_shrinks":N,"mem_unloads":N,
//!         "mem_sheds":N,
//!         "sites":[{site,count,sum,p50,p90,p99}],
//!         "edge":[{counter,value}],
//!         "collections":[{name,sets,entities,plan_*?}]}
//!      | (prometheus) {"ok":true,"op":"metrics","text":EXPOSITION}
//! {"op":"trace","session":ID}
//!     -> {"ok":true,"op":"trace","session":ID,"dropped":N,
//!         "events":[{seq,kind:"ask"|"answer"|"explain",...}]}
//! {"op":"explain","session":ID}
//!     -> {"ok":true,"op":"explain","session":ID,"armed":false}
//!        (session created without "explain":true, or no fresh
//!         selection has run yet: "armed":true,"question":null)
//!      | {"ok":true,"op":"explain","session":ID,"armed":true,
//!         "question":N,"entity":NAME,"candidates":N,"plan":
//!         "hit_file"|"hit_online"|"miss"|"bypassed"|"unattached",
//!         "bound":N,"dispatch":{kernel,total_elements,scan_cost,
//!         factor},"count_ns":N,
//!         "ranked":[{entity,count,rank,outcome}]?,
//!         "informative":N?,"evaluated":N?,"pruned_duplicate":N?,
//!         "pruned_bound":N?,"memo_hit":BOOL?}
//!        (the ranked/counter block is present only when the selection
//!         ran the strategy — plan hits carry no trace: the plan is the
//!         why)
//! ```
//!
//! Errors are `{"ok":false,"error":MESSAGE}`; the connection stays usable.
//! Failure classes introduced by the hardened service edge additionally
//! carry a machine-readable `"code"` — `"too_large"` (request line over the
//! configured byte cap), `"overloaded"` (connection shed at accept time,
//! per-connection request cap reached, the session table full, or a
//! `create` refused by the memory governor — the budget ladder exhausted
//! or a load refused under pressure; comes with `"retry_after"` seconds
//! so clients can back off), `"deadline"` (per-connection I/O deadline
//! expired), and `"internal"` (a panic was contained; the session involved
//! is quarantined and closed). Classic validation errors stay code-free,
//! byte-identical to the pre-hardening protocol.
//! `ask` is idempotent (re-asking without answering returns the same
//! entity — or, for a pending multiple-choice batch, the same batch), and
//! `answer` accepts any entity — not just the last asked one — matching the
//! engine's constraint-assertion semantics. The `choice` form of `answer`
//! resolves the outstanding batch with §7 first-applicable-option
//! semantics (`choice` is the 0-based picked option; the batch length
//! means "none of these"); `prior` supplies §6 per-set odds and `recover`
//! arms Algorithm-2 backtracking for erroneous answers. All extension
//! fields are strictly additive — a client that never sends them sees
//! byte-identical responses to the pre-extension protocol.

use crate::strategy::StrategySpec;
use setdisc_core::discovery::Answer;
use setdisc_util::report::{parse_json, JsonObject, JsonValue};

/// A parsed wire request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session over a registered collection.
    Create {
        /// Registry name of the collection snapshot.
        collection: String,
        /// Strategy configuration.
        strategy: StrategySpec,
        /// Initial example entities (Algorithm 2's `I`).
        examples: Vec<String>,
        /// Yes/no question budget; `None` = service default.
        budget: Option<u64>,
        /// §6 per-set prior weights (one per set, by id); empty = uniform.
        prior: Vec<u64>,
        /// Arm §6 backtracking: contradictions trigger Algorithm-2
        /// recovery instead of closing the session.
        recover: bool,
        /// Arm per-question decision provenance: the engine records a
        /// [`setdisc_core::engine::Provenance`] for every fresh selection,
        /// retrievable via the `explain` op. Strictly additive — the
        /// armed engine's decisions are bit-identical to an unarmed one.
        explain: bool,
    },
    /// Request the next membership question.
    Ask {
        /// Session id.
        session: u64,
        /// §7 multiple-choice batch size; `None` or `Some(1)` is the
        /// classic single-question form.
        choices: Option<usize>,
    },
    /// Deliver an answer about an entity.
    Answer {
        /// Session id.
        session: u64,
        /// Entity token (interned name or `e<id>`).
        entity: String,
        /// The reply.
        answer: Answer,
        /// False marks the answer as unsure — flipped first during §6
        /// recovery.
        confident: bool,
    },
    /// Resolve an outstanding multiple-choice batch (§7).
    AnswerChoice {
        /// Session id.
        session: u64,
        /// 0-based picked option; the batch length means "none of these".
        choice: u64,
        /// As in [`Request::Answer`].
        confident: bool,
    },
    /// Report full session state.
    Status {
        /// Session id.
        session: u64,
    },
    /// Report service-level state (a `status` op with no `session` field):
    /// open-session count plus per-collection plan-cache statistics.
    ServiceStatus {
        /// Emit every edge counter, zeros included (stable schema for
        /// scrapers). The default emits only nonzero counters so
        /// fault-free transcripts stay byte-identical.
        verbose: bool,
    },
    /// Session-less telemetry snapshot (the `util::obs` exposition
    /// surface).
    Metrics {
        /// Render the snapshot as Prometheus text exposition instead of
        /// structured JSON.
        prometheus: bool,
    },
    /// Retrieve a session's bounded question-trace ring.
    Trace {
        /// Session id.
        session: u64,
    },
    /// Retrieve the provenance record of a session's latest fresh
    /// selection (requires an `"explain":true` create).
    Explain {
        /// Session id.
        session: u64,
    },
    /// Close a session, releasing its slot.
    Close {
        /// Session id.
        session: u64,
    },
    /// List registered collections.
    Collections,
}

impl Request {
    /// The session a request operates on, if any — the entry panic
    /// containment quarantines when dispatch blows up mid-request.
    pub fn session(&self) -> Option<u64> {
        match self {
            Request::Ask { session, .. }
            | Request::Answer { session, .. }
            | Request::AnswerChoice { session, .. }
            | Request::Status { session }
            | Request::Trace { session }
            | Request::Explain { session }
            | Request::Close { session } => Some(*session),
            Request::Create { .. }
            | Request::ServiceStatus { .. }
            | Request::Metrics { .. }
            | Request::Collections => None,
        }
    }

    /// The wire op name (for error messages and counters).
    pub fn op(&self) -> &'static str {
        match self {
            Request::Create { .. } => "create",
            Request::Ask { .. } => "ask",
            Request::Answer { .. } | Request::AnswerChoice { .. } => "answer",
            Request::Status { .. } | Request::ServiceStatus { .. } => "status",
            Request::Metrics { .. } => "metrics",
            Request::Trace { .. } => "trace",
            Request::Explain { .. } => "explain",
            Request::Close { .. } => "close",
            Request::Collections => "collections",
        }
    }
}

/// Parses one request line. Errors are human-readable strings destined for
/// an `{"ok":false,...}` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| e.to_string())?;
    if !matches!(v, JsonValue::Object(_)) {
        return Err("request must be a JSON object".into());
    }
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or("missing string field \"op\"")?;
    match op {
        "create" => {
            let collection = v
                .get("collection")
                .and_then(JsonValue::as_str)
                .ok_or("create: missing string field \"collection\"")?
                .to_string();
            let strategy = StrategySpec::parse(
                v.get("strategy")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("klp"),
                v.get("metric").and_then(JsonValue::as_str),
                opt_u64(&v, "k")?,
                opt_u64(&v, "beam")?,
                opt_u64(&v, "seed")?,
            )?;
            let examples = match v.get("examples") {
                None | Some(JsonValue::Null) => Vec::new(),
                Some(JsonValue::Array(items)) => items
                    .iter()
                    .map(|item| {
                        item.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| "create: examples must be strings".to_string())
                    })
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err("create: \"examples\" must be an array".into()),
            };
            let prior = match v.get("prior") {
                None | Some(JsonValue::Null) => Vec::new(),
                Some(JsonValue::Array(items)) => items
                    .iter()
                    .map(|item| {
                        item.as_u64().ok_or_else(|| {
                            "create: prior weights must be non-negative integers".to_string()
                        })
                    })
                    .collect::<Result<_, _>>()?,
                Some(_) => return Err("create: \"prior\" must be an array of weights".into()),
            };
            Ok(Request::Create {
                collection,
                strategy,
                examples,
                budget: opt_u64(&v, "budget")?,
                prior,
                recover: opt_bool(&v, "recover")?.unwrap_or(false),
                explain: opt_bool(&v, "explain")?.unwrap_or(false),
            })
        }
        "ask" => {
            let choices = match opt_u64(&v, "choices")? {
                None => None,
                Some(n) if (1..=16).contains(&n) => Some(n as usize),
                Some(n) => return Err(format!("ask: choices={n} out of range (1..=16)")),
            };
            Ok(Request::Ask {
                session: session_id(&v)?,
                choices,
            })
        }
        "answer" => {
            let session = session_id(&v)?;
            let confident = opt_bool(&v, "confident")?.unwrap_or(true);
            let choice = opt_u64(&v, "choice")?;
            let entity = v.get("entity").and_then(JsonValue::as_str);
            if let Some(choice) = choice {
                if entity.is_some() || v.get("answer").is_some() {
                    return Err(
                        "answer: give either \"choice\" or \"entity\"+\"answer\", not both".into(),
                    );
                }
                return Ok(Request::AnswerChoice {
                    session,
                    choice,
                    confident,
                });
            }
            let entity = entity
                .ok_or("answer: missing string field \"entity\"")?
                .to_string();
            let answer = match v
                .get("answer")
                .and_then(JsonValue::as_str)
                .ok_or("answer: missing string field \"answer\"")?
            {
                "yes" | "y" => Answer::Yes,
                "no" | "n" => Answer::No,
                "unknown" | "?" => Answer::Unknown,
                other => return Err(format!("answer: bad answer {other:?} (yes|no|unknown)")),
            };
            Ok(Request::Answer {
                session,
                entity,
                answer,
                confident,
            })
        }
        "status" => match v.get("session") {
            None | Some(JsonValue::Null) => Ok(Request::ServiceStatus {
                verbose: opt_bool(&v, "verbose")?.unwrap_or(false),
            }),
            Some(_) => Ok(Request::Status {
                session: session_id(&v)?,
            }),
        },
        "metrics" => {
            let prometheus = match v.get("format").and_then(JsonValue::as_str) {
                None | Some("json") => false,
                Some("prometheus") => true,
                Some(other) => {
                    return Err(format!("metrics: bad format {other:?} (json|prometheus)"))
                }
            };
            Ok(Request::Metrics { prometheus })
        }
        "trace" => Ok(Request::Trace {
            session: session_id(&v)?,
        }),
        "explain" => Ok(Request::Explain {
            session: session_id(&v)?,
        }),
        "close" => Ok(Request::Close {
            session: session_id(&v)?,
        }),
        "collections" => Ok(Request::Collections),
        other => Err(format!(
            "unknown op {other:?} (create|ask|answer|status|close|collections)"
        )),
    }
}

/// Builds a `create` request line for a client (the inverse of
/// [`parse_request`]'s create arm — round-trip asserted in tests).
pub fn create_request(
    collection: &str,
    strategy: &StrategySpec,
    examples: &[String],
    budget: Option<u64>,
) -> String {
    create_request_ext(collection, strategy, examples, budget, None, false)
}

/// [`create_request`] with the §6 extension fields: an optional per-set
/// prior and the backtracking-recovery flag. The extension fields are
/// omitted (not emitted as null/false) when unused, so the classic form
/// stays byte-identical.
pub fn create_request_ext(
    collection: &str,
    strategy: &StrategySpec,
    examples: &[String],
    budget: Option<u64>,
    prior: Option<&[u64]>,
    recover: bool,
) -> String {
    let mut obj = JsonObject::new()
        .str("op", "create")
        .str("collection", collection)
        .str("strategy", strategy.family_name())
        .str("metric", strategy.metric_name())
        .int("k", u64::from(strategy.k))
        .int("beam", strategy.beam as u64)
        .int("seed", strategy.seed);
    if !examples.is_empty() {
        obj = obj.strs("examples", examples);
    }
    if let Some(b) = budget {
        obj = obj.int("budget", b);
    }
    if let Some(weights) = prior {
        obj = obj.ints("prior", weights.iter().copied());
    }
    if recover {
        obj = obj.bool("recover", true);
    }
    obj.encode()
}

/// The error-response line for plain validation failures (no code).
pub fn error_response(message: &str) -> String {
    JsonObject::new()
        .bool("ok", false)
        .str("error", message)
        .encode()
}

/// The error-response line for the hardened edge's failure classes:
/// `{"ok":false,"error":...,"code":...}` plus `"retry_after"` seconds when
/// the client should back off and try again (load shedding).
pub fn error_response_coded(code: &str, message: &str, retry_after: Option<u64>) -> String {
    let mut obj = JsonObject::new()
        .bool("ok", false)
        .str("error", message)
        .str("code", code);
    if let Some(secs) = retry_after {
        obj = obj.int("retry_after", secs);
    }
    obj.encode()
}

fn session_id(v: &JsonValue) -> Result<u64, String> {
    v.get("session")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| "missing numeric field \"session\"".to_string())
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(val) => val
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn opt_bool(v: &JsonValue, key: &str) -> Result<Option<bool>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(JsonValue::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(format!("field {key:?} must be a boolean")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{Metric, StrategyKind};

    #[test]
    fn parses_create_with_defaults_and_overrides() {
        let req = parse_request(r#"{"op":"create","collection":"figure1"}"#).unwrap();
        let Request::Create {
            collection,
            strategy,
            examples,
            budget,
            prior,
            recover,
            explain,
        } = req
        else {
            panic!("wrong variant");
        };
        assert_eq!(collection, "figure1");
        assert_eq!(strategy, StrategySpec::default());
        assert!(examples.is_empty());
        assert_eq!(budget, None);
        assert!(prior.is_empty());
        assert!(!recover);
        assert!(!explain);

        let req = parse_request(
            r#"{"op":"create","collection":"c","strategy":"klp-le","metric":"h","k":3,
               "beam":5,"examples":["a","b"],"budget":9}"#,
        )
        .unwrap();
        let Request::Create {
            strategy,
            examples,
            budget,
            ..
        } = req
        else {
            panic!("wrong variant");
        };
        assert_eq!(strategy.kind, StrategyKind::KLpLe);
        assert_eq!(strategy.metric, Metric::Height);
        assert_eq!(strategy.k, 3);
        assert_eq!(strategy.beam, 5);
        assert_eq!(examples, vec!["a".to_string(), "b".to_string()]);
        assert_eq!(budget, Some(9));
    }

    #[test]
    fn parses_session_ops() {
        assert_eq!(
            parse_request(r#"{"op":"ask","session":3}"#).unwrap(),
            Request::Ask {
                session: 3,
                choices: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"answer","session":3,"entity":"d","answer":"yes"}"#).unwrap(),
            Request::Answer {
                session: 3,
                entity: "d".into(),
                answer: Answer::Yes,
                confident: true
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"answer","session":3,"entity":"d","answer":"?"}"#).unwrap(),
            Request::Answer {
                session: 3,
                entity: "d".into(),
                answer: Answer::Unknown,
                confident: true
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"close","session":0}"#).unwrap(),
            Request::Close { session: 0 }
        );
        assert_eq!(
            parse_request(r#"{"op":"collections"}"#).unwrap(),
            Request::Collections
        );
        // A status op without a session id is the service-level form; a
        // present-but-bad session id is still an error.
        assert_eq!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::ServiceStatus { verbose: false }
        );
        assert_eq!(
            parse_request(r#"{"op":"status","session":null}"#).unwrap(),
            Request::ServiceStatus { verbose: false }
        );
        assert_eq!(
            parse_request(r#"{"op":"status","verbose":true}"#).unwrap(),
            Request::ServiceStatus { verbose: true }
        );
        assert_eq!(
            parse_request(r#"{"op":"status","session":9}"#).unwrap(),
            Request::Status { session: 9 }
        );
        assert!(parse_request(r#"{"op":"status","session":1.5}"#).is_err());
        assert!(parse_request(r#"{"op":"status","verbose":"yes"}"#).is_err());
    }

    #[test]
    fn parses_telemetry_ops() {
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics { prometheus: false }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"json"}"#).unwrap(),
            Request::Metrics { prometheus: false }
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics","format":"prometheus"}"#).unwrap(),
            Request::Metrics { prometheus: true }
        );
        assert!(parse_request(r#"{"op":"metrics","format":"xml"}"#).is_err());
        assert_eq!(
            parse_request(r#"{"op":"trace","session":4}"#).unwrap(),
            Request::Trace { session: 4 }
        );
        assert!(parse_request(r#"{"op":"trace"}"#).is_err());
        assert_eq!(
            parse_request(r#"{"op":"explain","session":4}"#).unwrap(),
            Request::Explain { session: 4 }
        );
        assert!(parse_request(r#"{"op":"explain"}"#).is_err());
        assert!(matches!(
            parse_request(r#"{"op":"create","collection":"c","explain":true}"#).unwrap(),
            Request::Create { explain: true, .. }
        ));
        assert!(parse_request(r#"{"op":"create","collection":"c","explain":"on"}"#).is_err());
        // The new ops stay absent from the pinned unknown-op error text —
        // the committed goldens replay it byte-for-byte.
        let err = parse_request(r#"{"op":"frobnicate"}"#).unwrap_err();
        assert_eq!(
            err,
            "unknown op \"frobnicate\" (create|ask|answer|status|close|collections)"
        );
    }

    #[test]
    fn create_request_round_trips() {
        let spec = StrategySpec::parse("klp-lve", Some("h"), Some(3), Some(7), Some(11)).unwrap();
        let line = create_request("web", &spec, &["a".into(), "b".into()], Some(42));
        let parsed = parse_request(&line).unwrap();
        assert_eq!(
            parsed,
            Request::Create {
                collection: "web".into(),
                strategy: spec,
                examples: vec!["a".into(), "b".into()],
                budget: Some(42),
                prior: Vec::new(),
                recover: false,
                explain: false,
            }
        );
        // The extension builder round-trips too, and degenerates to the
        // classic line when the extension fields are unused.
        assert_eq!(
            create_request_ext("web", &spec, &[], None, None, false),
            create_request("web", &spec, &[], None)
        );
        let line = create_request_ext("web", &spec, &[], Some(9), Some(&[3, 1, 1]), true);
        let parsed = parse_request(&line).unwrap();
        assert_eq!(
            parsed,
            Request::Create {
                collection: "web".into(),
                strategy: spec,
                examples: Vec::new(),
                budget: Some(9),
                prior: vec![3, 1, 1],
                recover: true,
                explain: false,
            }
        );
    }

    #[test]
    fn parses_session_mode_extensions() {
        assert_eq!(
            parse_request(r#"{"op":"ask","session":3,"choices":4}"#).unwrap(),
            Request::Ask {
                session: 3,
                choices: Some(4)
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"ask","session":3,"choices":null}"#).unwrap(),
            Request::Ask {
                session: 3,
                choices: None
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"answer","session":3,"choice":2}"#).unwrap(),
            Request::AnswerChoice {
                session: 3,
                choice: 2,
                confident: true
            }
        );
        assert_eq!(
            parse_request(
                r#"{"op":"answer","session":3,"entity":"d","answer":"no","confident":false}"#
            )
            .unwrap(),
            Request::Answer {
                session: 3,
                entity: "d".into(),
                answer: Answer::No,
                confident: false
            }
        );
        assert_eq!(
            parse_request(r#"{"op":"answer","choice":0,"confident":false,"session":7}"#).unwrap(),
            Request::AnswerChoice {
                session: 7,
                choice: 0,
                confident: false
            }
        );
        for bad in [
            r#"{"op":"ask","session":1,"choices":0}"#,
            r#"{"op":"ask","session":1,"choices":17}"#,
            r#"{"op":"ask","session":1,"choices":1.5}"#,
            r#"{"op":"answer","session":1,"choice":-1}"#,
            r#"{"op":"answer","session":1,"choice":1.5}"#,
            r#"{"op":"answer","session":1,"choice":1,"entity":"d","answer":"yes"}"#,
            r#"{"op":"answer","session":1,"entity":"d","answer":"yes","confident":"yes"}"#,
            r#"{"op":"create","collection":"c","prior":"heavy"}"#,
            r#"{"op":"create","collection":"c","prior":[1,-2]}"#,
            r#"{"op":"create","collection":"c","prior":[1,0.5]}"#,
            r#"{"op":"create","collection":"c","recover":1}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "[]",
            r#"{"session":1}"#,
            r#"{"op":"frobnicate"}"#,
            r#"{"op":"create"}"#,
            r#"{"op":"create","collection":"c","k":0}"#,
            r#"{"op":"create","collection":"c","examples":"a"}"#,
            r#"{"op":"create","collection":"c","examples":[1]}"#,
            r#"{"op":"ask"}"#,
            r#"{"op":"ask","session":-1}"#,
            r#"{"op":"ask","session":1.5}"#,
            r#"{"op":"answer","session":1,"entity":"d"}"#,
            r#"{"op":"answer","session":1,"entity":"d","answer":"maybe"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?}");
        }
    }
}
