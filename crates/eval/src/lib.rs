//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§5). See DESIGN.md §5 for the experiment ↔ module index.
//!
//! Each experiment is a function from an [`runner::ExpContext`] (scale,
//! seed, output directory) to one or more [`setdisc_util::report::Table`]s;
//! the `experiments` binary dispatches by name and renders markdown plus
//! CSV files under `out/`.
//!
//! Scales: `smoke` (seconds, CI-friendly), `default` (minutes, the numbers
//! EXPERIMENTS.md quotes), `paper` (the paper's full workload sizes where
//! tractable).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;
pub mod stats;

pub use runner::{ExpContext, Scale};
