//! Table 1 — synthetic collection statistics: distinct entity counts when
//! varying (a) the overlap ratio α, (b) the number of sets n, and (c) the
//! set-size range d.

use crate::runner::{par_map, ExpContext};
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};
use setdisc_util::report::Table;

/// Paper values for side-by-side comparison.
const PAPER_1A: &[(f64, &str)] = &[
    (0.99, "23k"),
    (0.95, "36k"),
    (0.90, "59k"),
    (0.85, "83k"),
    (0.80, "108k"),
    (0.75, "132k"),
    (0.70, "156k"),
    (0.65, "178k"),
];
const PAPER_1B: &[(usize, &str)] = &[
    (10_000, "59k"),
    (20_000, "125k"),
    (40_000, "216k"),
    (80_000, "385k"),
    (160_000, "622k"),
];
const PAPER_1C: &[((usize, usize), &str)] = &[
    ((50, 100), "119k"),
    ((100, 150), "150k"),
    ((150, 200), "180k"),
    ((200, 250), "214k"),
    ((250, 300), "249k"),
    ((300, 350), "283k"),
];

fn kfmt(n: usize) -> String {
    if n >= 1000 {
        format!("{:.0}k", n as f64 / 1000.0)
    } else {
        n.to_string()
    }
}

/// Runs all three sub-tables.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    // Scale factor: smoke shrinks everything 100×, default 4×, paper 1×.
    let shrink = ctx.scale.pick(100, 4, 1);
    let seed = ctx.seed;

    // (a) vary α at n = 10k, d = 50–60.
    let cfgs_a: Vec<(f64, CopyAddConfig)> = PAPER_1A
        .iter()
        .map(|&(alpha, _)| {
            (
                alpha,
                CopyAddConfig::table1a(alpha, seed).scaled_down(shrink),
            )
        })
        .collect();
    let counts_a = par_map(cfgs_a.clone(), |(_, cfg)| {
        generate_copy_add(&cfg).distinct_entities()
    });
    let mut t_a = Table::new(
        format!(
            "Table 1(a): distinct entities vs overlap ratio (n={}, d=50-60)",
            kfmt(cfgs_a[0].1.n_sets)
        ),
        &["alpha", "distinct entities", "paper (n=10k)"],
    );
    for ((alpha, _), count) in cfgs_a.iter().zip(&counts_a) {
        let paper = PAPER_1A
            .iter()
            .find(|(a, _)| a == alpha)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        t_a.row(vec![format!("{alpha:.2}"), kfmt(*count), paper.into()]);
    }

    // (b) vary n at α = 0.9, d = 50–60.
    let cfgs_b: Vec<(usize, CopyAddConfig)> = PAPER_1B
        .iter()
        .map(|&(n, _)| (n, CopyAddConfig::table1b(n, seed).scaled_down(shrink)))
        .collect();
    let counts_b = par_map(cfgs_b.clone(), |(_, cfg)| {
        generate_copy_add(&cfg).distinct_entities()
    });
    let mut t_b = Table::new(
        "Table 1(b): distinct entities vs number of sets (alpha=0.9, d=50-60)",
        &["n (paper)", "n (run)", "distinct entities", "paper"],
    );
    for ((n, cfg), count) in cfgs_b.iter().zip(&counts_b) {
        let paper = PAPER_1B
            .iter()
            .find(|(pn, _)| pn == n)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        t_b.row(vec![kfmt(*n), kfmt(cfg.n_sets), kfmt(*count), paper.into()]);
    }

    // (c) vary d at n = 10k, α = 0.9.
    let cfgs_c: Vec<((usize, usize), CopyAddConfig)> = PAPER_1C
        .iter()
        .map(|&(d, _)| (d, CopyAddConfig::table1c(d, seed).scaled_down(shrink)))
        .collect();
    let counts_c = par_map(cfgs_c.clone(), |(_, cfg)| {
        generate_copy_add(&cfg).distinct_entities()
    });
    let mut t_c = Table::new(
        format!(
            "Table 1(c): distinct entities vs set size range (n={}, alpha=0.9)",
            kfmt(cfgs_c[0].1.n_sets)
        ),
        &["d", "distinct entities", "paper (n=10k)"],
    );
    for ((d, _), count) in cfgs_c.iter().zip(&counts_c) {
        let paper = PAPER_1C
            .iter()
            .find(|(pd, _)| pd == d)
            .map(|(_, p)| *p)
            .unwrap_or("-");
        t_c.row(vec![format!("{}-{}", d.0, d.1), kfmt(*count), paper.into()]);
    }

    ctx.emit("table1a", &t_a);
    ctx.emit("table1b", &t_b);
    ctx.emit("table1c", &t_c);
    vec![t_a, t_b, t_c]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ExpContext;

    #[test]
    fn smoke_run_produces_three_tables_with_trends() {
        let tables = run(&ExpContext::smoke());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 8, "eight alpha values");
        assert_eq!(tables[1].len(), 5, "five set counts");
        assert_eq!(tables[2].len(), 6, "six size ranges");
    }
}
