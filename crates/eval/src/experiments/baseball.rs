//! Shared baseball setup plus Tables 2 and 3.
//!
//! Builds the synthetic `People` table, evaluates the seven targets
//! (Table 2), draws two example tuples per target, and generates the
//! candidate query collections (Table 3). Figure 8 and Table 4 reuse the
//! same instances.

use crate::runner::ExpContext;
use setdisc_core::entity::{EntityId, SetId};
use setdisc_core::set::EntitySet;
use setdisc_relation::candgen::{generate_candidates, CandidateSets, ReferenceValues};
use setdisc_relation::people::{people_table, people_table_sized};
use setdisc_relation::table::Table as RelTable;
use setdisc_relation::targets::target_queries;
use setdisc_util::report::Table;
use setdisc_util::Rng;

/// Paper's Table 2 output counts and Table 3 candidate counts / average
/// output sizes, for side-by-side reporting.
pub const PAPER_TABLE2: &[(&str, usize)] = &[
    ("T1", 892),
    ("T2", 201),
    ("T3", 2179),
    ("T4", 939),
    ("T5", 65),
    ("T6", 49),
    ("T7", 26),
];
/// Paper Table 3: `(target, candidates, avg output tuples)`.
pub const PAPER_TABLE3: &[(&str, usize, f64)] = &[
    ("T1", 776, 9_404.24),
    ("T2", 987, 11_254.35),
    ("T3", 940, 10_612.07),
    ("T4", 916, 10_957.30),
    ("T5", 1_339, 9_772.70),
    ("T6", 600, 7_187.00),
    ("T7", 1_189, 7_795.78),
];

/// One target's full experimental instance.
pub struct BaseballInstance {
    /// Target id (`"T1"`…).
    pub id: &'static str,
    /// SQL-ish description.
    pub description: &'static str,
    /// Rows the target query returns.
    pub target_rows: Vec<u32>,
    /// The two sampled example tuples.
    pub examples: [u32; 2],
    /// Candidate queries and their output sets.
    pub candidates: CandidateSets,
    /// The candidate set id whose output equals the target's.
    pub target_set: SetId,
}

impl BaseballInstance {
    /// The target output as an entity set (entities = row ids).
    pub fn target_entity_set(&self) -> EntitySet {
        EntitySet::from_raw(self.target_rows.iter().copied())
    }

    /// Example rows as entity ids (the initial set `I`).
    pub fn example_entities(&self) -> [EntityId; 2] {
        [EntityId(self.examples[0]), EntityId(self.examples[1])]
    }
}

/// Builds the table and all seven instances. The smoke scale shrinks the
/// table and caps the candidate collections (keeping the target set) so
/// debug-mode tests stay fast; default/paper use the canonical 20,185 rows
/// and the full candidate collections.
pub fn setup(ctx: &ExpContext) -> (RelTable, Vec<BaseballInstance>) {
    let rows = ctx.scale.pick(4_000, 20_185, 20_185);
    let candidate_cap = ctx.scale.pick(Some(120), None, None);
    let table = if rows == setdisc_relation::people::PEOPLE_ROWS {
        people_table(ctx.seed)
    } else {
        people_table_sized(rows, ctx.seed)
    };
    let refs = ReferenceValues::paper_defaults();
    let mut rng = Rng::new(ctx.seed ^ 0xBA5E_BA11);
    let mut instances = Vec::new();
    for target in target_queries(&table) {
        let target_rows = target.query.evaluate(&table);
        assert!(
            target_rows.len() >= 2,
            "{} returned fewer than two rows",
            target.id
        );
        let idx = rng.sample_indices(target_rows.len(), 2);
        let examples = [target_rows[idx[0]], target_rows[idx[1]]];
        let mut candidates = generate_candidates(&table, &examples, &refs);
        if let Some(cap) = candidate_cap {
            candidates = cap_candidates(candidates, &target_rows, cap);
        }
        // Locate the candidate set equal to the target output. It exists by
        // construction: every target condition is expressible from the
        // examples (see §5.2.3), so some candidate produces this output.
        let target_entity_set = EntitySet::from_raw(target_rows.iter().copied());
        let target_set = candidates
            .collection
            .iter()
            .find(|(_, s)| **s == target_entity_set)
            .map(|(id, _)| id)
            .unwrap_or_else(|| {
                panic!(
                    "{}: target output not among candidates (examples {:?})",
                    target.id, examples
                )
            });
        instances.push(BaseballInstance {
            id: target.id,
            description: target.description,
            target_rows,
            examples,
            candidates,
            target_set,
        });
    }
    (table, instances)
}

/// Shrinks a candidate collection to at most `cap` sets, always keeping the
/// set equal to the target output (smoke-scale testing aid).
fn cap_candidates(cands: CandidateSets, target_rows: &[u32], cap: usize) -> CandidateSets {
    if cands.collection.len() <= cap {
        return cands;
    }
    let target_set = EntitySet::from_raw(target_rows.iter().copied());
    let mut kept_sets: Vec<EntitySet> = Vec::with_capacity(cap);
    let mut kept_queries = Vec::with_capacity(cap);
    // Keep the target first, then fill in collection order.
    for (id, set) in cands.collection.iter() {
        let is_target = *set == target_set;
        if is_target || kept_sets.len() < cap - 1 {
            kept_sets.push(set.clone());
            kept_queries.push(cands.queries[id.0 as usize].clone());
        }
        if kept_sets.len() == cap && kept_sets.contains(&target_set) {
            break;
        }
    }
    let collection = setdisc_core::Collection::new(kept_sets).expect("non-empty");
    CandidateSets {
        collection,
        queries: kept_queries,
        n_generated: cands.n_generated,
        avg_output_size: cands.avg_output_size,
    }
}

/// Table 2: target queries and output sizes.
pub fn run_table2(ctx: &ExpContext) -> Vec<Table> {
    let (_, instances) = setup(ctx);
    let mut t = Table::new(
        "Table 2: target queries on the (synthetic) baseball People table",
        &["target", "query", "output tuples", "paper"],
    );
    for inst in &instances {
        let paper = PAPER_TABLE2
            .iter()
            .find(|(id, _)| *id == inst.id)
            .map(|(_, n)| n.to_string())
            .unwrap_or_default();
        t.row(vec![
            inst.id.into(),
            inst.description.into(),
            inst.target_rows.len().to_string(),
            paper,
        ]);
    }
    ctx.emit("table2", &t);
    vec![t]
}

/// Table 3: example tuples, candidate counts, average output sizes.
pub fn run_table3(ctx: &ExpContext) -> Vec<Table> {
    let (table, instances) = setup(ctx);
    let mut t = Table::new(
        "Table 3: example tuples and generated candidate queries",
        &[
            "target",
            "example tuples",
            "candidates (generated)",
            "candidates (distinct outputs)",
            "avg output tuples",
            "paper candidates",
            "paper avg output",
        ],
    );
    for inst in &instances {
        let (paper_cand, paper_avg) = PAPER_TABLE3
            .iter()
            .find(|(id, _, _)| *id == inst.id)
            .map(|(_, c, a)| (c.to_string(), format!("{a:.2}")))
            .unwrap_or_default();
        t.row(vec![
            inst.id.into(),
            format!(
                "{}, {}",
                table.row_name(inst.examples[0]),
                table.row_name(inst.examples[1])
            ),
            inst.candidates.n_generated.to_string(),
            inst.candidates.collection.len().to_string(),
            format!("{:.2}", inst.candidates.avg_output_size),
            paper_cand,
            paper_avg,
        ]);
    }
    ctx.emit("table3", &t);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_builds_all_seven_instances() {
        let (_table, instances) = setup(&ExpContext::smoke());
        assert_eq!(instances.len(), 7);
        for inst in &instances {
            assert!(inst.candidates.collection.len() >= 10, "{}", inst.id);
            // The aligned target set really is the target output.
            let target = inst.target_entity_set();
            assert_eq!(
                inst.candidates.collection.set(inst.target_set),
                &target,
                "{}",
                inst.id
            );
            // Both examples are in every candidate (they're supersets of I).
            for (_, set) in inst.candidates.collection.iter() {
                for e in inst.example_entities() {
                    assert!(set.contains(e), "{}", inst.id);
                }
            }
        }
    }

    #[test]
    fn tables_2_and_3_have_seven_rows() {
        let t2 = run_table2(&ExpContext::smoke());
        assert_eq!(t2[0].len(), 7);
        let t3 = run_table3(&ExpContext::smoke());
        assert_eq!(t3[0].len(), 7);
    }
}
