//! One module per paper table/figure. Each exposes
//! `run(&ExpContext) -> Vec<Table>`, which both emits (markdown + CSV) and
//! returns its result tables for tests.

use setdisc_core::cost::{AvgDepth, Height};
use setdisc_core::lookahead::KLp;
use setdisc_core::strategy::{InfoGain, SelectionStrategy};

pub mod baseball;
pub mod fig3;
pub mod fig4;
pub mod fig8;
pub mod significance;
pub mod sweep;
pub mod table1;
pub mod table4;

/// Strategy factory (each tree/session gets a fresh instance so caches and
/// statistics never leak across measurements).
pub type Factory = fn() -> Box<dyn SelectionStrategy>;

/// The paper's evaluated strategy set under the AD cost metric:
/// InfoGain (≡ indistinguishable pairs ≡ gain-1 ≡ 1-LP, Lemma 4.3),
/// k-LP(k=2), k-LPLE(k=3, q=10), k-LPLVE(k=3, q=10) — §5.3.1's settings.
pub fn strategies_ad() -> [(&'static str, Factory); 4] {
    [
        ("InfoGain", || Box::new(InfoGain::new())),
        ("k-LP(2)", || Box::new(KLp::<AvgDepth>::new(2))),
        ("k-LPLE(3,10)", || Box::new(KLp::<AvgDepth>::limited(3, 10))),
        ("k-LPLVE(3,10)", || {
            Box::new(KLp::<AvgDepth>::limited_variable(3, 10))
        }),
    ]
}

/// The same set under the H (height) cost metric.
pub fn strategies_h() -> [(&'static str, Factory); 4] {
    [
        ("InfoGain", || Box::new(InfoGain::new())),
        ("k-LP(2)", || Box::new(KLp::<Height>::new(2))),
        ("k-LPLE(3,10)", || Box::new(KLp::<Height>::limited(3, 10))),
        ("k-LPLVE(3,10)", || {
            Box::new(KLp::<Height>::limited_variable(3, 10))
        }),
    ]
}
