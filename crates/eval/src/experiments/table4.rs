//! Table 4 — effectiveness of pruning: percentage of candidate entities
//! pruned at the nodes of each target's discovery search (baseball, k = 2),
//! plus the §5.3.3 web-tables root-level figure (>99% pruned).

use super::baseball;
use crate::runner::ExpContext;
use setdisc_core::cost::AvgDepth;
use setdisc_core::discovery::{Session, SimulatedOracle};
use setdisc_core::lookahead::KLp;
use setdisc_synth::webtables::{self, WebTablesConfig};
use setdisc_util::report::{fmt_f64, Table};

/// Paper Table 4: `(target, avg pruned %, min pruned %)` at k = 2.
pub const PAPER_TABLE4: &[(&str, f64, f64)] = &[
    ("T1", 97.3, 90.1),
    ("T2", 99.4, 94.6),
    ("T3", 99.1, 96.5),
    ("T4", 99.7, 98.0),
    ("T5", 88.5, 30.6),
    ("T6", 99.7, 98.1),
    ("T7", 99.9, 99.5),
];

/// Baseball pruning statistics (Table 4).
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let (_table, instances) = baseball::setup(ctx);
    let mut t = Table::new(
        "Table 4: % of entities pruned per search node (baseball, k-LP k=2, AD)",
        &[
            "target",
            "avg pruned",
            "min pruned",
            "nodes",
            "paper avg",
            "paper min",
        ],
    );
    for inst in &instances {
        let strategy = KLp::<AvgDepth>::new(2).record_stats(true);
        let target = inst.target_entity_set();
        let mut session = Session::over(inst.candidates.collection.full_view(), strategy);
        let outcome = session
            .run(&mut SimulatedOracle::new(&target))
            .expect("truthful oracle");
        assert_eq!(outcome.discovered(), Some(inst.target_set), "{}", inst.id);
        let stats = session.strategy().stats();
        let (paper_avg, paper_min) = PAPER_TABLE4
            .iter()
            .find(|(id, _, _)| *id == inst.id)
            .map(|&(_, a, m)| (format!("{a}%"), format!("{m}%")))
            .unwrap_or_default();
        t.row(vec![
            inst.id.into(),
            format!("{}%", fmt_f64(stats.avg_pruned_fraction() * 100.0, 1)),
            format!("{}%", fmt_f64(stats.min_pruned_fraction() * 100.0, 1)),
            stats.nodes.len().to_string(),
            paper_avg,
            paper_min,
        ]);
    }
    ctx.emit("table4", &t);
    vec![t]
}

/// §5.3.3 — root-level pruning on web-table sub-collections for k ∈ {2, 3}
/// (the paper reports >99% pruned at the root).
pub fn run_web_root(ctx: &ExpContext) -> Vec<Table> {
    let cfg = match ctx.scale {
        crate::Scale::Smoke => WebTablesConfig::tiny(ctx.seed),
        _ => WebTablesConfig {
            seed: ctx.seed,
            ..WebTablesConfig::default()
        },
    };
    let corpus = webtables::generate(&cfg);
    let min_cand = ctx.scale.pick(15, 100, 100);
    let n_queries = ctx.scale.pick(4, 20, 50);
    let queries = webtables::seed_queries(&corpus.collection, min_cand, n_queries, ctx.seed);

    let mut t = Table::new(
        "Web tables: % of candidate entities pruned at the root (paper: >99%)",
        &[
            "k",
            "sub-collections",
            "avg pruned at root",
            "min pruned at root",
        ],
    );
    for k in [2u32, 3] {
        let mut fractions = Vec::new();
        for q in &queries {
            let view = corpus.collection.supersets_of(&q.entities);
            let mut strategy = KLp::<AvgDepth>::new(k).record_stats(true);
            use setdisc_core::strategy::SelectionStrategy as _;
            let _ = strategy.select(&view);
            if let Some(node) = strategy.stats().nodes.first() {
                fractions.push(node.pruned_fraction());
            }
        }
        let avg = crate::stats::mean(&fractions) * 100.0;
        let min = fractions.iter().copied().fold(f64::INFINITY, f64::min) * 100.0;
        t.row(vec![
            k.to_string(),
            fractions.len().to_string(),
            format!("{}%", fmt_f64(avg, 2)),
            format!("{}%", fmt_f64(min.min(100.0), 2)),
        ]);
    }
    ctx.emit("table4_web_root", &t);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseball_pruning_is_heavy() {
        let tables = run(&ExpContext::smoke());
        assert_eq!(tables[0].len(), 7);
        // Every row's avg pruned should be substantial even at smoke scale.
        let csv = tables[0].to_csv();
        for line in csv.lines().skip(1) {
            let avg: f64 = line
                .split(',')
                .nth(1)
                .unwrap()
                .trim_end_matches('%')
                .parse()
                .unwrap();
            assert!(avg > 30.0, "weak pruning in: {line}");
        }
    }

    #[test]
    fn web_root_pruning_is_heavy() {
        let tables = run_web_root(&ExpContext::smoke());
        assert_eq!(tables[0].len(), 2);
    }
}
