//! Figure 8 — query discovery on the baseball database: number of
//! questions (8a) and discovery time (8b) per target query, for InfoGain
//! and the three lookahead strategies.

use super::baseball;
use crate::runner::{timed, ExpContext};
use setdisc_core::discovery::{Session, SimulatedOracle};
use setdisc_util::report::{fmt_duration, Table};

/// Paper Figure 8a question counts, `[InfoGain, k-LP, k-LPLE, k-LPLVE]`.
pub const PAPER_QUESTIONS: &[(&str, [u32; 4])] = &[
    ("T1", [10, 10, 10, 10]),
    ("T2", [10, 9, 10, 10]),
    ("T3", [10, 10, 9, 9]),
    ("T4", [10, 10, 9, 9]),
    ("T5", [11, 11, 10, 10]),
    ("T6", [10, 9, 9, 9]),
    ("T7", [10, 11, 10, 10]),
];

/// Runs both panels.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let (_table, instances) = baseball::setup(ctx);
    let strategies = super::strategies_ad();

    let mut qt = Table::new(
        "Figure 8a: number of questions to discover each target query",
        &[
            "target",
            "candidates",
            "InfoGain",
            "k-LP(2)",
            "k-LPLE(3,10)",
            "k-LPLVE(3,10)",
            "paper (IG/LP/LE/LVE)",
        ],
    );
    let mut tt = Table::new(
        "Figure 8b: query discovery time per target",
        &[
            "target",
            "InfoGain",
            "k-LP(2)",
            "k-LPLE(3,10)",
            "k-LPLVE(3,10)",
        ],
    );

    for inst in &instances {
        let target = inst.target_entity_set();
        let mut questions = Vec::new();
        let mut times = Vec::new();
        for (_, factory) in &strategies {
            let strategy = factory();
            let mut session = Session::over(inst.candidates.collection.full_view(), strategy);
            let mut oracle = SimulatedOracle::new(&target);
            let (outcome, elapsed) = timed(|| session.run(&mut oracle));
            let outcome = outcome.expect("truthful oracle cannot contradict");
            assert_eq!(
                outcome.discovered(),
                Some(inst.target_set),
                "{}: wrong set discovered",
                inst.id
            );
            questions.push(outcome.questions);
            times.push(elapsed);
        }
        let paper = PAPER_QUESTIONS
            .iter()
            .find(|(id, _)| *id == inst.id)
            .map(|(_, q)| format!("{}/{}/{}/{}", q[0], q[1], q[2], q[3]))
            .unwrap_or_default();
        qt.row(vec![
            inst.id.into(),
            inst.candidates.collection.len().to_string(),
            questions[0].to_string(),
            questions[1].to_string(),
            questions[2].to_string(),
            questions[3].to_string(),
            paper,
        ]);
        tt.row(vec![
            inst.id.into(),
            fmt_duration(times[0]),
            fmt_duration(times[1]),
            fmt_duration(times[2]),
            fmt_duration(times[3]),
        ]);
    }

    ctx.emit("fig8a_questions", &qt);
    ctx.emit("fig8b_discovery_time", &tt);
    vec![qt, tt]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discovery_finds_every_target_with_log_questions() {
        let tables = run(&ExpContext::smoke());
        assert_eq!(tables[0].len(), 7);
        assert_eq!(tables[1].len(), 7);
        // Question counts live in columns 2..6 of fig 8a; all should be
        // close to log2(candidates) — certainly under 40 even at smoke
        // scale. (The run() asserts correctness of discovery itself.)
        let qt = &tables[0];
        let md = qt.to_markdown();
        assert!(md.contains("T1") && md.contains("T7"));
    }
}
