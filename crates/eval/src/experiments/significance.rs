//! §5.3.2 — comparison to InfoGain with statistical significance, and the
//! "InfoGain is ≈0.048 above optimal AD" measurement.
//!
//! For every web-table sub-collection we build trees with InfoGain and with
//! each lookahead strategy, under both cost metrics, and test the paired
//! one-tailed hypothesis "InfoGain's cost exceeds ours" at α = 0.01. The
//! optimal gap is measured on small sub-samples where the exact DP solver
//! is tractable.

use super::fig3::web_views;
use crate::runner::{par_map, ExpContext};
use crate::stats::{mean, paired_t_test};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::{AvgDepth, Height};
use setdisc_core::optimal::OptimalSolver;
use setdisc_core::strategy::InfoGain;
use setdisc_core::SubCollection;
use setdisc_util::report::{fmt_f64, Table};

/// Tree costs (AD, H) for one strategy on one view.
fn costs(view: &SubCollection<'_>, factory: super::Factory) -> (f64, f64) {
    let mut s = factory();
    let tree = build_tree(view, s.as_mut()).expect("tree");
    (tree.avg_depth(), tree.height() as f64)
}

/// Runs the InfoGain comparison and significance tests.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let min_cand = ctx.scale.pick(12, 100, 100);
    let n_queries = ctx.scale.pick(6, 40, 100);
    let cap = ctx.scale.pick(Some(20), Some(150), Some(400));
    let (collection, id_lists) = web_views(ctx, min_cand, n_queries, cap);

    // Cost matrix: per view, per strategy, (AD of AD-tree, H of H-tree).
    // Metric-matched trees, like the paper: AD strategies optimize AD,
    // H strategies optimize H.
    let ad_strategies = super::strategies_ad();
    let h_strategies = super::strategies_h();
    let per_view: Vec<(Vec<f64>, Vec<f64>)> = par_map(id_lists, |ids| {
        let view = SubCollection::from_ids(&collection, ids);
        let ads: Vec<f64> = ad_strategies
            .iter()
            .map(|(_, f)| costs(&view, *f).0)
            .collect();
        let hs: Vec<f64> = h_strategies
            .iter()
            .map(|(_, f)| costs(&view, *f).1)
            .collect();
        (ads, hs)
    });

    let mut t = Table::new(
        "§5.3.2: improvement over InfoGain with paired one-tailed t-tests",
        &[
            "strategy",
            "metric",
            "mean InfoGain cost",
            "mean strategy cost",
            "mean improvement",
            "t",
            "p (one-tailed)",
            "significant @0.01",
        ],
    );
    for (metric, idx) in [("AD", 0usize), ("H", 1usize)] {
        let baseline: Vec<f64> = per_view
            .iter()
            .map(|v| if idx == 0 { v.0[0] } else { v.1[0] })
            .collect();
        for si in 1..ad_strategies.len() {
            let ours: Vec<f64> = per_view
                .iter()
                .map(|v| if idx == 0 { v.0[si] } else { v.1[si] })
                .collect();
            let name = if idx == 0 {
                ad_strategies[si].0
            } else {
                h_strategies[si].0
            };
            let (t_str, p_str, sig) = match paired_t_test(&baseline, &ours) {
                Some(r) => (
                    fmt_f64(r.t, 3),
                    format!("{:.2e}", r.p_one_tailed),
                    if r.p_one_tailed < 0.01 { "yes" } else { "no" }.to_string(),
                ),
                None => ("-".into(), "-".into(), "ties".into()),
            };
            t.row(vec![
                name.into(),
                metric.into(),
                fmt_f64(mean(&baseline), 4),
                fmt_f64(mean(&ours), 4),
                fmt_f64(mean(&baseline) - mean(&ours), 4),
                t_str,
                p_str,
                sig,
            ]);
        }
    }
    ctx.emit("significance", &t);

    let gap = run_optimal_gap(ctx, &collection);
    let mut out = vec![t];
    out.extend(gap);
    out
}

/// The optimal-gap measurement: InfoGain AD vs exact optimal AD on small
/// sub-collections (the paper reports a mean gap of ≈0.048).
fn run_optimal_gap(ctx: &ExpContext, collection: &setdisc_core::Collection) -> Vec<Table> {
    let sample_sets = ctx.scale.pick(10usize, 16, 18);
    let n_samples = ctx.scale.pick(5usize, 30, 60);
    // Small sub-collections: deterministic slices of the collection.
    let mut rng = setdisc_util::Rng::new(ctx.seed ^ 0x00_71AC);
    let mut samples: Vec<Vec<setdisc_core::entity::SetId>> = Vec::new();
    for _ in 0..n_samples {
        let ids = rng.sample_indices(collection.len(), sample_sets.min(collection.len()));
        samples.push(
            ids.into_iter()
                .map(|i| setdisc_core::entity::SetId(i as u32))
                .collect(),
        );
    }
    let gaps: Vec<f64> = par_map(samples, |ids| {
        let view = SubCollection::from_ids(collection, ids);
        let mut ig = InfoGain::new();
        let tree = build_tree(&view, &mut ig).expect("tree");
        let mut solver = OptimalSolver::<AvgDepth>::new();
        let opt = solver.optimal_cost(&view).expect("small enough") as f64 / view.len() as f64;
        let gap = tree.avg_depth() - opt;
        assert!(gap >= -1e-9, "greedy below optimal?");
        gap
    });
    // Also the H gap for completeness.
    let mut t = Table::new(
        "§5.3.2: InfoGain vs optimal average depth (paper: mean gap ≈ 0.048)",
        &["samples", "sets per sample", "mean AD gap", "max AD gap"],
    );
    t.row(vec![
        gaps.len().to_string(),
        sample_sets.to_string(),
        fmt_f64(mean(&gaps), 4),
        fmt_f64(gaps.iter().copied().fold(0.0, f64::max), 4),
    ]);
    ctx.emit("optimal_gap", &t);
    let _ = OptimalSolver::<Height>::new; // H solver exercised in core tests
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn significance_tables_produced() {
        let tables = run(&ExpContext::smoke());
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 6, "3 strategies x 2 metrics");
        assert_eq!(tables[1].len(), 1);
        // The optimal gap is small but non-negative.
        let gap: f64 = tables[1]
            .to_csv()
            .lines()
            .nth(1)
            .unwrap()
            .split(',')
            .nth(2)
            .unwrap()
            .parse()
            .unwrap();
        assert!((0.0..1.0).contains(&gap), "mean gap {gap}");
    }
}
