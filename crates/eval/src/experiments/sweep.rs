//! Figures 5, 6, 7 — copy-add parameter sweeps: average number of questions
//! (= tree average depth) and tree construction time as the overlap ratio α
//! (Fig 5), the set-size range d / number of distinct entities (Fig 6), and
//! the number of sets n (Fig 7) vary.
//!
//! Strategies: k-LP(k=2), k-LPLE(k=3, q=10) and k-LPLVE(k=3, q=10) — the
//! configurations §5.3.1 fixes. The default scale shrinks the paper's
//! n = 10k collections proportionally; `--scale paper` runs the full sizes.

use crate::runner::{par_map, timed, ExpContext};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::KLp;
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};
use setdisc_util::report::{fmt_duration, fmt_f64, Table};

/// The three lookahead configurations the sweeps compare.
const SWEEP_STRATEGIES: &[&str] = &["k-LP(2)", "k-LPLE(3,10)", "k-LPLVE(3,10)"];

fn build_with(name: &str, view: &setdisc_core::SubCollection<'_>) -> (f64, std::time::Duration) {
    let mut strategy: Box<dyn setdisc_core::strategy::SelectionStrategy> = match name {
        "k-LP(2)" => Box::new(KLp::<AvgDepth>::new(2)),
        "k-LPLE(3,10)" => Box::new(KLp::<AvgDepth>::limited(3, 10)),
        "k-LPLVE(3,10)" => Box::new(KLp::<AvgDepth>::limited_variable(3, 10)),
        other => panic!("unknown strategy {other}"),
    };
    let (tree, elapsed) = timed(|| build_tree(view, strategy.as_mut()).expect("tree"));
    (tree.avg_depth(), elapsed)
}

fn sweep_table(title: &str, param_header: &str, configs: Vec<(String, CopyAddConfig)>) -> Table {
    let mut t = Table::new(
        title,
        &[
            param_header,
            "sets",
            "entities",
            "avg questions k-LP(2)",
            "time k-LP(2)",
            "avg questions k-LPLE",
            "time k-LPLE",
            "avg questions k-LPLVE",
            "time k-LPLVE",
        ],
    );
    let rows = par_map(configs, |(label, cfg)| {
        let collection = generate_copy_add(&cfg);
        let view = collection.full_view();
        let mut cells = vec![
            label,
            collection.len().to_string(),
            collection.distinct_entities().to_string(),
        ];
        for name in SWEEP_STRATEGIES {
            let (ad, time) = build_with(name, &view);
            cells.push(fmt_f64(ad, 3));
            cells.push(fmt_duration(time));
        }
        cells
    });
    for row in rows {
        t.row(row);
    }
    t
}

/// Figure 5: vary the overlap ratio α (Table 1a configurations).
pub fn run_fig5(ctx: &ExpContext) -> Vec<Table> {
    let shrink = ctx.scale.pick(200, 20, 1);
    let alphas: &[f64] = ctx.scale.pick(
        &[0.9, 0.7][..],
        &[0.99, 0.95, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65][..],
        &[0.99, 0.95, 0.90, 0.85, 0.80, 0.75, 0.70, 0.65][..],
    );
    let configs = alphas
        .iter()
        .map(|&a| {
            (
                format!("{a:.2}"),
                CopyAddConfig::table1a(a, ctx.seed).scaled_down(shrink),
            )
        })
        .collect();
    let t = sweep_table(
        "Figure 5: effect of set overlap on avg questions and construction time",
        "alpha",
        configs,
    );
    ctx.emit("fig5_overlap", &t);
    vec![t]
}

/// Figure 6: vary the set-size range d (Table 1c configurations) — the
/// number of distinct entities grows with d.
pub fn run_fig6(ctx: &ExpContext) -> Vec<Table> {
    let shrink = ctx.scale.pick(200, 20, 1);
    let ranges: &[(usize, usize)] = ctx.scale.pick(
        &[(20, 40), (40, 60)][..],
        &[
            (50, 100),
            (100, 150),
            (150, 200),
            (200, 250),
            (250, 300),
            (300, 350),
        ][..],
        &[
            (50, 100),
            (100, 150),
            (150, 200),
            (200, 250),
            (250, 300),
            (300, 350),
        ][..],
    );
    let configs = ranges
        .iter()
        .map(|&d| {
            (
                format!("{}-{}", d.0, d.1),
                CopyAddConfig::table1c(d, ctx.seed).scaled_down(shrink),
            )
        })
        .collect();
    let t = sweep_table(
        "Figure 6: effect of distinct-entity count (set size range) on avg questions and time",
        "size range d",
        configs,
    );
    ctx.emit("fig6_entities", &t);
    vec![t]
}

/// Figure 7: vary the number of sets n (Table 1b configurations) — the
/// paper observes ≈ +1 question per doubling.
pub fn run_fig7(ctx: &ExpContext) -> Vec<Table> {
    let sizes: &[usize] = ctx.scale.pick(
        &[40, 80, 160][..],
        &[500, 1_000, 2_000, 4_000, 8_000][..],
        &[10_000, 20_000, 40_000, 80_000, 160_000][..],
    );
    let configs = sizes
        .iter()
        .map(|&n| {
            let cfg = CopyAddConfig {
                n_sets: n,
                size_range: (50, 60),
                overlap: 0.9,
                seed: ctx.seed,
            };
            (n.to_string(), cfg)
        })
        .collect();
    let t = sweep_table(
        "Figure 7: effect of the number of sets on avg questions and time",
        "n sets",
        configs,
    );
    ctx.emit("fig7_sets", &t);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn questions_column(t: &Table, col: usize) -> Vec<f64> {
        t.to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(col).unwrap().parse().unwrap())
            .collect()
    }

    #[test]
    fn fig5_more_overlap_means_fewer_questions() {
        let tables = run_fig5(&ExpContext::smoke());
        let q = questions_column(&tables[0], 3);
        assert_eq!(q.len(), 2);
        // α = 0.9 (first row) needs fewer questions than α = 0.7.
        assert!(q[0] <= q[1] + 0.5, "overlap trend violated: {q:?}");
    }

    #[test]
    fn fig7_questions_grow_with_n() {
        let tables = run_fig7(&ExpContext::smoke());
        let q = questions_column(&tables[0], 3);
        assert!(q.windows(2).all(|w| w[1] >= w[0] - 0.2), "n trend: {q:?}");
        // Roughly +1 per doubling: from n=40 to n=160 expect ≈ +2.
        let growth = q[q.len() - 1] - q[0];
        assert!(
            (0.8..4.0).contains(&growth),
            "doubling growth {growth} out of band"
        );
    }

    #[test]
    fn fig6_runs_and_reports() {
        let tables = run_fig6(&ExpContext::smoke());
        assert_eq!(tables[0].len(), 2);
    }
}
