//! Figure 3 — k-LP tree construction time as the lookahead depth `k`
//! varies, on web-table sub-collections. The paper observes one to two
//! orders of magnitude per step from k = 2 to k = 3.

use crate::runner::{par_map, timed, ExpContext};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::KLp;
use setdisc_core::SubCollection;
use setdisc_synth::webtables::{self, WebTablesConfig};
use setdisc_util::report::{fmt_duration, fmt_f64, Table};
use std::time::Duration;

/// The web-table sub-collection workload shared by Figures 3 and 4a.
pub fn web_views(
    ctx: &ExpContext,
    min_candidates: usize,
    n_queries: usize,
    cap_sets: Option<usize>,
) -> (
    setdisc_core::Collection,
    Vec<Vec<setdisc_core::entity::SetId>>,
) {
    let cfg = match ctx.scale {
        crate::Scale::Smoke => WebTablesConfig::tiny(ctx.seed),
        _ => WebTablesConfig {
            seed: ctx.seed,
            ..WebTablesConfig::default()
        },
    };
    let corpus = webtables::generate(&cfg);
    let queries = webtables::seed_queries(&corpus.collection, min_candidates, n_queries, ctx.seed);
    let mut id_lists = Vec::new();
    for q in &queries {
        let view = corpus.collection.supersets_of(&q.entities);
        let mut ids = view.ids().to_vec();
        if let Some(cap) = cap_sets {
            ids.truncate(cap);
        }
        if ids.len() >= 2 {
            id_lists.push(ids);
        }
    }
    (corpus.collection, id_lists)
}

/// Runs Figure 3.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let min_cand = ctx.scale.pick(15, 100, 100);
    let n_queries = ctx.scale.pick(3, 8, 20);
    let cap = ctx.scale.pick(Some(25), Some(250), None);
    let ks: &[u32] = ctx.scale.pick(&[1, 2][..], &[1, 2, 3][..], &[1, 2, 3][..]);
    let (collection, id_lists) = web_views(ctx, min_cand, n_queries, cap);

    let mut t = Table::new(
        "Figure 3: k-LP tree construction time vs lookahead k (web tables, AD)",
        &[
            "k",
            "sub-collections",
            "mean sets",
            "mean construction time",
            "total time",
            "mean avg-depth",
        ],
    );
    for &k in ks {
        let results: Vec<(Duration, f64, usize)> = par_map(id_lists.clone(), |ids| {
            let view = SubCollection::from_ids(&collection, ids);
            let mut strategy = KLp::<AvgDepth>::new(k);
            let (tree, elapsed) = timed(|| build_tree(&view, &mut strategy).expect("tree"));
            (elapsed, tree.avg_depth(), view.len())
        });
        let total: Duration = results.iter().map(|r| r.0).sum();
        let mean_time = total / results.len().max(1) as u32;
        let mean_ad = results.iter().map(|r| r.1).sum::<f64>() / results.len().max(1) as f64;
        let mean_sets =
            results.iter().map(|r| r.2).sum::<usize>() as f64 / results.len().max(1) as f64;
        t.row(vec![
            k.to_string(),
            results.len().to_string(),
            format!("{mean_sets:.0}"),
            fmt_duration(mean_time),
            fmt_duration(total),
            fmt_f64(mean_ad, 3),
        ]);
    }
    ctx.emit("fig3_klp_vs_k", &t);
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_grows_with_k_and_quality_improves() {
        let tables = run(&ExpContext::smoke());
        let t = &tables[0];
        assert!(t.len() >= 2, "at least k=1 and k=2 rows");
        // Parse mean AD from the CSV: deeper lookahead can't be worse on
        // these workloads (ties allowed).
        let csv = t.to_csv();
        let ads: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(5).unwrap().parse().unwrap())
            .collect();
        assert!(ads[0] >= ads[ads.len() - 1] - 1e-9, "ADs: {ads:?}");
    }
}
