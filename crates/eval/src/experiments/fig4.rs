//! Figure 4 — speedup of pruned k-LP over the unpruned gain-k baseline:
//! (a) on web-table sub-collections varying k, (b) on synthetic collections
//! varying the number of sets.
//!
//! gain-k at the paper's full workload sizes is intractable by design (that
//! is the point of the figure), so both panels run at reduced sizes where
//! the baseline still terminates; the speedup's *growth* with k, m and n is
//! the reproduced shape. EXPERIMENTS.md records the configurations.

use super::fig3::web_views;
use crate::runner::{par_map, timed, ExpContext};
use setdisc_core::builder::build_tree;
use setdisc_core::cost::AvgDepth;
use setdisc_core::lookahead::{GainK, KLp};
use setdisc_core::SubCollection;
use setdisc_synth::copyadd::{generate_copy_add, CopyAddConfig};
use setdisc_util::report::{fmt_duration, Table};
use std::time::Duration;

/// Panel (a): web tables, k ∈ {2, 3}.
pub fn run_web(ctx: &ExpContext) -> Vec<Table> {
    // Small sub-collections AND a small-vocabulary corpus so gain-k
    // (O(mᵏ·n), no pruning) terminates: this panel measures the *ratio*,
    // and the baseline is intractable at real corpus sizes by design.
    let cap = ctx.scale.pick(10, 22, 30);
    let n_queries = ctx.scale.pick(2, 5, 8);
    let tiny_ctx = ExpContext {
        scale: crate::Scale::Smoke,
        ..ctx.clone()
    };
    let (collection, id_lists) = web_views(&tiny_ctx, cap, n_queries, Some(cap));
    let ks: &[u32] = ctx.scale.pick(&[2][..], &[2, 3][..], &[2, 3][..]);

    let mut t = Table::new(
        "Figure 4a: speedup of k-LP over gain-k (web tables, reduced size)",
        &[
            "k",
            "sub-collections",
            "k-LP total",
            "gain-k total",
            "speedup",
        ],
    );
    for &k in ks {
        let results: Vec<(Duration, Duration)> = par_map(id_lists.clone(), |ids| {
            let view = SubCollection::from_ids(&collection, ids);
            let mut klp = KLp::<AvgDepth>::new(k);
            let (klp_tree, klp_time) = timed(|| build_tree(&view, &mut klp).expect("tree"));
            let mut gaink = GainK::<AvgDepth>::new(k);
            let (gaink_tree, gaink_time) = timed(|| build_tree(&view, &mut gaink).expect("tree"));
            // Both must produce equally good trees — pruning is lossless.
            assert_eq!(
                klp_tree.total_depth(),
                gaink_tree.total_depth(),
                "pruning changed tree quality"
            );
            (klp_time, gaink_time)
        });
        let klp_total: Duration = results.iter().map(|r| r.0).sum();
        let gaink_total: Duration = results.iter().map(|r| r.1).sum();
        let speedup = gaink_total.as_secs_f64() / klp_total.as_secs_f64().max(1e-9);
        t.row(vec![
            k.to_string(),
            results.len().to_string(),
            fmt_duration(klp_total),
            fmt_duration(gaink_total),
            format!("{speedup:.1}x"),
        ]);
    }
    ctx.emit("fig4a_speedup_web", &t);
    vec![t]
}

/// Panel (b): synthetic collections, k = 2, varying n.
pub fn run_synthetic(ctx: &ExpContext) -> Vec<Table> {
    let sizes: &[usize] = ctx.scale.pick(
        &[16, 32][..],
        &[50, 100, 200, 400][..],
        &[100, 200, 400, 800, 1600][..],
    );
    let mut t = Table::new(
        "Figure 4b: speedup of 2-LP over gain-2 (synthetic, alpha=0.9, d=10-15)",
        &["n sets", "entities", "k-LP time", "gain-k time", "speedup"],
    );
    let rows = par_map(sizes.to_vec(), |n| {
        let cfg = CopyAddConfig {
            n_sets: n,
            size_range: (10, 15),
            overlap: 0.9,
            seed: ctx.seed ^ n as u64,
        };
        let collection = generate_copy_add(&cfg);
        let view = collection.full_view();
        let mut klp = KLp::<AvgDepth>::new(2);
        let (klp_tree, klp_time) = timed(|| build_tree(&view, &mut klp).expect("tree"));
        let mut gaink = GainK::<AvgDepth>::new(2);
        let (gaink_tree, gaink_time) = timed(|| build_tree(&view, &mut gaink).expect("tree"));
        assert_eq!(klp_tree.total_depth(), gaink_tree.total_depth());
        (n, collection.distinct_entities(), klp_time, gaink_time)
    });
    for (n, m, klp_time, gaink_time) in rows {
        let speedup = gaink_time.as_secs_f64() / klp_time.as_secs_f64().max(1e-9);
        t.row(vec![
            n.to_string(),
            m.to_string(),
            fmt_duration(klp_time),
            fmt_duration(gaink_time),
            format!("{speedup:.1}x"),
        ]);
    }
    ctx.emit("fig4b_speedup_synthetic", &t);
    vec![t]
}

/// Runs both panels.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    let mut out = run_web(ctx);
    out.extend(run_synthetic(ctx));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pruning_speeds_up_without_quality_loss() {
        // run() itself asserts tree-quality equality; here check speedups
        // are ≥ 1 in the aggregate on the synthetic panel (the web panel at
        // smoke scale can be too tiny for stable timing).
        let tables = run_synthetic(&ExpContext::smoke());
        let csv = tables[0].to_csv();
        let speedups: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .nth(4)
                    .unwrap()
                    .trim_end_matches('x')
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(!speedups.is_empty());
        assert!(
            speedups.iter().any(|&s| s > 1.0),
            "no speedup observed: {speedups:?}"
        );
    }

    #[test]
    fn web_panel_runs_and_matches_quality() {
        let tables = run_web(&ExpContext::smoke());
        assert!(!tables[0].is_empty());
    }
}
