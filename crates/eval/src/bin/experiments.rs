//! Experiment CLI: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments <name|all> [--scale smoke|default|paper] [--seed N] [--no-csv]
//!
//! names: table1 table2 table3 table4 table4-web fig3 fig4a fig4b
//!        fig5 fig6 fig7 fig8 significance all
//! ```

use setdisc_eval::experiments as exp;
use setdisc_eval::{ExpContext, Scale};

const NAMES: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table4",
    "table4-web",
    "fig3",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "significance",
];

fn usage() -> ! {
    eprintln!(
        "usage: experiments <name|all> [--scale smoke|default|paper] [--seed N] [--no-csv]\n\
         names: {} all",
        NAMES.join(" ")
    );
    std::process::exit(2);
}

fn dispatch(name: &str, ctx: &ExpContext) {
    println!(
        "== {name} (scale: {:?}, seed: {:#x}) ==\n",
        ctx.scale, ctx.seed
    );
    let start = std::time::Instant::now();
    match name {
        "table1" => drop(exp::table1::run(ctx)),
        "table2" => drop(exp::baseball::run_table2(ctx)),
        "table3" => drop(exp::baseball::run_table3(ctx)),
        "table4" => drop(exp::table4::run(ctx)),
        "table4-web" => drop(exp::table4::run_web_root(ctx)),
        "fig3" => drop(exp::fig3::run(ctx)),
        "fig4a" => drop(exp::fig4::run_web(ctx)),
        "fig4b" => drop(exp::fig4::run_synthetic(ctx)),
        "fig5" => drop(exp::sweep::run_fig5(ctx)),
        "fig6" => drop(exp::sweep::run_fig6(ctx)),
        "fig7" => drop(exp::sweep::run_fig7(ctx)),
        "fig8" => drop(exp::fig8::run(ctx)),
        "significance" => drop(exp::significance::run(ctx)),
        _ => usage(),
    }
    println!(
        "-- {name} finished in {}\n",
        setdisc_util::report::fmt_duration(start.elapsed())
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut name: Option<String> = None;
    let mut ctx = ExpContext::new(Scale::Default);
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().unwrap_or_else(|| usage());
                ctx.scale = Scale::parse(&v).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let v = it.next().unwrap_or_else(|| usage());
                ctx.seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--no-csv" => ctx.out_dir = None,
            other if name.is_none() && !other.starts_with('-') => {
                name = Some(other.to_string());
            }
            _ => usage(),
        }
    }
    let name = name.unwrap_or_else(|| usage());
    if name == "all" {
        for n in NAMES {
            dispatch(n, &ctx);
        }
    } else {
        dispatch(&name, &ctx);
    }
}
