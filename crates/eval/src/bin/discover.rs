//! Interactive set-discovery REPL — the paper's opening scenario as a tool.
//!
//! ```text
//! discover <sets.txt> [--metric ad|h] [--k N] [--beam Q] [--examples e1,e2]
//! ```
//!
//! `sets.txt` uses the `setdisc_core::io` format (one set per line,
//! `name: member member …`). The tool filters to supersets of `--examples`,
//! then asks membership questions on stdin (`y` / `n` / `?` for don't-know
//! / `q` to stop) until one set remains.

use setdisc_core::analysis::CollectionProfile;
use setdisc_core::cost::{AvgDepth, Height};
use setdisc_core::discovery::{Answer, Session};
use setdisc_core::io::parse_collection;
use setdisc_core::lookahead::KLp;
use setdisc_core::strategy::SelectionStrategy;
use std::io::{BufRead, Write};

fn usage() -> ! {
    eprintln!(
        "usage: discover <sets.txt> [--metric ad|h] [--k N] [--beam Q] [--examples e1,e2,...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut metric = "ad".to_string();
    let mut k = 2u32;
    let mut beam: Option<usize> = None;
    let mut examples: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--metric" => metric = it.next().unwrap_or_else(|| usage()),
            "--k" => {
                k = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--beam" => {
                beam = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--examples" => {
                examples = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let named = parse_collection(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let profile = CollectionProfile::new(&named.collection, 500, 0);
    println!(
        "{} sets, {} entities ({} informative); expected ≥{:.2} questions, worst case {}",
        profile.n_sets,
        profile.distinct_entities,
        profile.informative_entities,
        profile.lb_avg_questions,
        profile.worst_case_questions
    );

    let initial: Vec<setdisc_core::EntityId> = examples
        .iter()
        .map(|name| {
            named.entities.get(name).unwrap_or_else(|| {
                eprintln!("unknown example entity {name:?}");
                std::process::exit(1);
            })
        })
        .collect();

    let strategy: Box<dyn SelectionStrategy> = match (metric.as_str(), beam) {
        ("ad", None) => Box::new(KLp::<AvgDepth>::new(k)),
        ("ad", Some(q)) => Box::new(KLp::<AvgDepth>::limited(k, q)),
        ("h", None) => Box::new(KLp::<Height>::new(k)),
        ("h", Some(q)) => Box::new(KLp::<Height>::limited(k, q)),
        _ => usage(),
    };
    let mut session = Session::new(&named.collection, &initial, strategy);
    println!(
        "{} candidate sets match your examples",
        session.candidates().len()
    );

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    while !session.is_resolved() {
        let Some(entity) = session.next_question() else {
            println!("no more informative questions — remaining candidates:");
            break;
        };
        print!(
            "is {:?} in your set? [y/n/?/q] ",
            named.entities.display(entity)
        );
        std::io::stdout().flush().ok();
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break,
        };
        match line.trim() {
            "y" | "yes" => session.answer(entity, Answer::Yes),
            "n" | "no" => session.answer(entity, Answer::No),
            "?" => session.answer(entity, Answer::Unknown),
            "q" | "quit" => break,
            other => println!("  (unrecognized {other:?}; asking again)"),
        }
    }
    let outcome = session.outcome();
    match outcome.discovered() {
        Some(id) => println!(
            "→ your set is {:?} (after {} questions)",
            named.set_name(id),
            outcome.questions
        ),
        None => {
            for id in &outcome.candidates {
                println!("  - {}", named.set_name(*id));
            }
            println!("({} candidates remain)", outcome.candidates.len());
        }
    }
}
