//! Interactive set-discovery REPL — the paper's opening scenario as a tool.
//!
//! ```text
//! discover <sets.txt> [--strategy NAME] [--metric ad|h] [--k N] [--beam Q]
//!          [--examples e1,e2] [--plan-cache PATH] [--trace] [--explain]
//! discover precompute (<sets.txt> | --fixture SPEC) --out PATH
//!          [--strategy NAME] [--metric ad|h] [--k N] [--beam Q]
//!          [--max-nodes N] [--max-depth D]
//! ```
//!
//! `sets.txt` uses the `setdisc_core::io` format (one set per line,
//! `name: member member …`). The tool filters to supersets of `--examples`,
//! then asks membership questions on stdin (`y` / `n` / `?` for don't-know
//! / `q` to stop) until one set remains.
//!
//! `--plan-cache PATH` loads a question plan (if the file exists; it must
//! match the collection) so selections come from the persisted decision
//! tree, and writes the updated plan back on exit — the same file format
//! the `serve` binary's `--plan-cache` consumes. The `precompute`
//! subcommand builds such a file offline: it expands the strategy's
//! decision tree breadth-first to the node/depth budget and saves it, so a
//! service boots warm without ever paying the lookahead cost online.
//!
//! `--trace` records the same structured question trace the service's
//! `trace` wire op exposes (ask events with selection timing and Table-4
//! prune counts, answer events with candidate-set deltas) and prints it as
//! one JSON object after the conversation ends — so a terminal run can be
//! diffed event-for-event against a wire-protocol run.
//!
//! `--explain` arms the engine's decision provenance (the same record the
//! service's `explain` wire op reports): after each question is selected,
//! the full why — ranked candidates with Table-4 prune outcomes,
//! plan-cache disposition, counting-kernel dispatch with its predicted
//! cost inputs and measured pass time — prints as one JSON line. The two
//! flags compose: with both, `--trace` additionally rings a compact
//! explain event beside each ask, exactly as the service does. Arming
//! explain never changes which questions are asked (a pinned engine
//! property).
//!
//! The CLI is a thin terminal driver over the *same* stack the network
//! service runs: collections become `setdisc_service::Snapshot`s,
//! strategies are built through `StrategySpec`, and the question loop steps
//! a sans-IO `Engine` — so a terminal conversation and a wire-protocol
//! conversation with the same configuration ask identical questions.

use setdisc_core::analysis::CollectionProfile;
use setdisc_core::discovery::Answer;
use setdisc_core::engine::Engine;
use setdisc_core::weights::WeightTable;
use setdisc_plan::{PlanCache, PrecomputeBudget, ScopedPlanCache};
use setdisc_service::strategy::{BoxedStrategy, LookaheadTuning};
use setdisc_service::{Snapshot, SnapshotHandle, StrategySpec};
use setdisc_util::report::JsonObject;
use std::io::{BufRead, Write};
use std::path::Path;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: discover <sets.txt> [--strategy klp|klp-le|klp-lve|most-even|info-gain|\
         indist-pairs|lb1|random] [--metric ad|h] [--k N] [--beam Q] [--examples e1,e2,...]\n\
         \x20                [--plan-cache PATH] [--prior w1,w2,...] [--trace] [--explain]\n\
         \x20      discover precompute (<sets.txt> | --fixture SPEC) --out PATH\n\
         \x20                [--strategy ...] [--metric ad|h] [--k N] [--beam Q]\n\
         \x20                [--prior w1,w2,...] [--max-nodes N] [--max-depth D]"
    );
    std::process::exit(2);
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(1);
}

/// Everything both modes share: the source collection and strategy spec.
struct CommonArgs {
    path: Option<String>,
    fixture: Option<String>,
    strategy_name: String,
    metric: Option<String>,
    k: Option<u64>,
    beam: Option<u64>,
    examples: Vec<String>,
    plan_cache: Option<String>,
    prior: Option<Vec<u64>>,
    trace: bool,
    explain: bool,
    out: Option<String>,
    max_nodes: usize,
    max_depth: u32,
}

fn parse_args(args: impl Iterator<Item = String>) -> (bool, CommonArgs) {
    let mut precompute = false;
    let mut c = CommonArgs {
        path: None,
        fixture: None,
        strategy_name: "klp".to_string(),
        metric: None,
        k: None,
        beam: None,
        examples: Vec::new(),
        plan_cache: None,
        prior: None,
        trace: false,
        explain: false,
        out: None,
        max_nodes: 4096,
        max_depth: 16,
    };
    let mut it = args.peekable();
    if it.peek().map(String::as_str) == Some("precompute") {
        precompute = true;
        it.next();
    }
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strategy" => c.strategy_name = it.next().unwrap_or_else(|| usage()),
            "--metric" => c.metric = Some(it.next().unwrap_or_else(|| usage())),
            "--k" => {
                c.k = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--beam" => {
                c.beam = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--examples" => {
                c.examples = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            "--plan-cache" => c.plan_cache = Some(it.next().unwrap_or_else(|| usage())),
            "--trace" => c.trace = true,
            "--explain" => c.explain = true,
            "--prior" => {
                c.prior = Some(
                    it.next()
                        .unwrap_or_else(|| usage())
                        .split(',')
                        .map(|w| w.parse().map_err(|_| ()))
                        .collect::<Result<Vec<u64>, ()>>()
                        .unwrap_or_else(|()| usage()),
                )
            }
            "--fixture" => c.fixture = Some(it.next().unwrap_or_else(|| usage())),
            "--out" => c.out = Some(it.next().unwrap_or_else(|| usage())),
            "--max-nodes" => {
                c.max_nodes = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--max-depth" => {
                c.max_depth = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            other if c.path.is_none() && !other.starts_with('-') => {
                c.path = Some(other.to_string())
            }
            _ => usage(),
        }
    }
    (precompute, c)
}

/// Builds the snapshot from a file path or a fixture spec.
fn load_snapshot(c: &CommonArgs) -> Arc<Snapshot> {
    match (&c.path, &c.fixture) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
            Snapshot::parse(path.clone(), &text)
                .unwrap_or_else(|e| die(&format!("cannot parse {path}: {e}")))
        }
        (None, Some(spec)) => setdisc_service::snapshot::fixture(spec).unwrap_or_else(|e| die(&e)),
        _ => usage(),
    }
}

fn parse_spec(c: &CommonArgs) -> StrategySpec {
    // `--beam` selects the k-LPLE family unless one was named explicitly.
    let mut name = c.strategy_name.clone();
    if c.beam.is_some() && name == "klp" {
        name = "klp-le".to_string();
    }
    StrategySpec::parse(&name, c.metric.as_deref(), c.k, c.beam, None).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage()
    })
}

/// Resolves `--prior` into a weight table for the loaded collection.
/// `None` when no prior was given *or* it is uniform (a uniform prior is
/// the unweighted problem — keep the classic shareable plan partition).
fn build_prior(c: &CommonArgs, snapshot: &Snapshot) -> Option<Arc<WeightTable>> {
    let raw = c.prior.as_deref()?;
    if raw.len() != snapshot.collection().len() {
        die(&format!(
            "--prior covers {} sets but {} has {}",
            raw.len(),
            snapshot.name(),
            snapshot.collection().len()
        ));
    }
    let table = WeightTable::new(raw).unwrap_or_else(|e| die(&e));
    if table.is_uniform() {
        return None;
    }
    Some(Arc::new(table))
}

/// Builds the (strategy, label, plan key) triple the spec + optional prior
/// resolve to — the same resolution the service's `create` performs.
fn resolve_strategy(
    spec: &StrategySpec,
    weights: Option<&Arc<WeightTable>>,
) -> (BoxedStrategy, String, Option<setdisc_plan::StrategyKey>) {
    match weights {
        Some(w) => {
            let strategy = spec
                .build_weighted(&LookaheadTuning::default(), Arc::clone(w))
                .unwrap_or_else(|e| die(&e));
            (strategy, spec.weighted_label(w), spec.weighted_plan_key(w))
        }
        None => (spec.build(), spec.label(), spec.plan_key()),
    }
}

fn run_precompute(c: &CommonArgs) {
    let snapshot = load_snapshot(c);
    let spec = parse_spec(c);
    let weights = build_prior(c, &snapshot);
    let (mut strategy, label, key) = resolve_strategy(&spec, weights.as_ref());
    let Some(key) = key else {
        die("the random strategy cannot be precomputed (no shareable plan)");
    };
    let out = c.out.as_deref().unwrap_or_else(|| usage());
    let collection = snapshot.collection();
    let cache = Arc::new(PlanCache::for_collection(collection, c.max_nodes.max(16)));
    let budget = PrecomputeBudget {
        max_nodes: c.max_nodes,
        max_depth: c.max_depth,
    };
    let report = setdisc_plan::precompute(&cache, key, collection, strategy.as_mut(), &budget);
    let nodes = setdisc_plan::save_plan(&cache, out)
        .unwrap_or_else(|e| die(&format!("cannot write {out}: {e}")));
    println!(
        "precomputed {} ({label}): {} nodes to depth {}{} -> {out} ({nodes} saved)",
        snapshot.name(),
        report.computed + report.already_cached,
        report.depth_reached,
        if report.truncated {
            " (budget hit; deeper tree remains)"
        } else {
            " (complete)"
        },
    );
}

/// Renders a provenance record as the same JSON shape the service's
/// `explain` wire op reports (minus the session envelope), so terminal
/// and wire explanations diff field-for-field.
fn render_provenance(p: &setdisc_core::engine::Provenance, snapshot: &Snapshot) -> JsonObject {
    let mut obj = JsonObject::new()
        .int("question", p.question as u64)
        .str("entity", &snapshot.entity_label(p.entity))
        .int("candidates", p.candidates as u64)
        .int("view_len", u64::from(p.view_len))
        .str("plan", p.plan.name())
        .int("bound", p.bound)
        .obj(
            "dispatch",
            JsonObject::new()
                .str(
                    "kernel",
                    if p.dispatch.use_postings {
                        "postings"
                    } else {
                        "elements"
                    },
                )
                .int("total_elements", p.dispatch.total_elements)
                .int("scan_cost", p.dispatch.scan_cost)
                .int("factor", p.dispatch.factor),
        )
        .int("count_ns", p.measured_count_ns);
    if let Some(t) = &p.trace {
        let ranked = t
            .ranked
            .iter()
            .map(|c| {
                JsonObject::new()
                    .str("entity", &snapshot.entity_label(c.entity))
                    .int("count", u64::from(c.count))
                    .int("rank", u64::from(c.rank))
                    .str("outcome", c.outcome.name())
            })
            .collect();
        obj = obj
            .array("ranked", ranked)
            .int("informative", u64::from(t.informative))
            .int("evaluated", u64::from(t.evaluated))
            .int("pruned_duplicate", u64::from(t.pruned_duplicate))
            .int("pruned_bound", u64::from(t.pruned_bound))
            .bool("memo_hit", t.memo_hit);
    }
    obj
}

fn main() {
    let (precompute, args) = parse_args(std::env::args().skip(1));
    if precompute {
        run_precompute(&args);
        return;
    }

    let snapshot = load_snapshot(&args);
    let spec = parse_spec(&args);

    let profile = CollectionProfile::new(snapshot.collection(), 500, 0);
    println!(
        "{} sets, {} entities ({} informative); expected ≥{:.2} questions, worst case {}",
        profile.n_sets,
        profile.distinct_entities,
        profile.informative_entities,
        profile.lb_avg_questions,
        profile.worst_case_questions
    );

    let initial: Vec<setdisc_core::EntityId> = args
        .examples
        .iter()
        .map(|name| {
            snapshot
                .resolve_entity(name)
                .unwrap_or_else(|| die(&format!("unknown example entity {name:?}")))
        })
        .collect();

    // The exact engine type the service's session table stores, resolved
    // through the same strategy-plus-prior path its `create` uses.
    let weights = build_prior(&args, &snapshot);
    let (strategy, label, plan_key) = resolve_strategy(&spec, weights.as_ref());
    let mut engine: Engine<SnapshotHandle, BoxedStrategy> =
        Engine::new(SnapshotHandle(Arc::clone(&snapshot)), &initial, strategy);
    if args.explain {
        // Provenance capture is read-only — the question sequence is
        // bit-identical to an unarmed run.
        engine.set_explain(true);
    }

    // Load (or lazily create) the shared plan so this terminal session
    // reads and extends the same decision tree a service would. Loaded
    // plans keep the same capacity a fresh one gets — bounding the cache
    // to exactly its payload would make each run evict the prefix the
    // previous run saved.
    const PLAN_CAPACITY: usize = 1 << 18;
    let plan = args.plan_cache.as_deref().map(|path| {
        let cache = if Path::new(path).exists() {
            let cache = setdisc_plan::load_plan(path, PLAN_CAPACITY)
                .unwrap_or_else(|e| die(&format!("cannot load plan {path}: {e}")));
            if !cache.matches(snapshot.collection()) {
                die(&format!("plan {path} was built for a different collection"));
            }
            println!("loaded plan cache: {} nodes", cache.len());
            // Plans are partitioned by strategy key — a weighted session
            // never reads an unweighted plan (and vice versa), so say so
            // up front instead of silently running cold.
            if let Some(key) = plan_key {
                if !cache.covers_strategy(key) {
                    eprintln!(
                        "note: plan {path} has no nodes for {label} \
                         ({} other strategies present); it will be extended on exit",
                        cache.strategy_keys().len()
                    );
                }
            }
            Arc::new(cache)
        } else {
            Arc::new(PlanCache::for_collection(
                snapshot.collection(),
                PLAN_CAPACITY,
            ))
        };
        if let Some(key) = plan_key {
            if let Some(scope) =
                ScopedPlanCache::new(Arc::clone(&cache), key, snapshot.collection())
            {
                engine.set_selection_cache(Some(Arc::new(scope)));
            }
        } else {
            eprintln!("note: the random strategy shares no plan; cache not consulted");
        }
        (path.to_string(), cache)
    });

    println!(
        "{} candidate sets match your examples ({label})",
        engine.candidate_count()
    );

    let mut trace: Option<Vec<JsonObject>> = args.trace.then(Vec::new);
    let mut seq = 0u64;
    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    while !engine.is_resolved() {
        let candidates = engine.candidate_count() as u64;
        let started = std::time::Instant::now();
        let Some(entity) = engine.next_question() else {
            println!("no more informative questions — remaining candidates:");
            break;
        };
        if let Some(events) = trace.as_mut() {
            let select_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            let (informative, evaluated) = engine.last_selection_stats().unwrap_or((0, 0));
            events.push(
                JsonObject::new()
                    .int("seq", seq)
                    .str("kind", "ask")
                    .str("entity", &snapshot.entity_label(entity))
                    .int("candidates", candidates)
                    .int("select_us", select_us)
                    .int("informative", u64::from(informative))
                    .int("evaluated", u64::from(evaluated)),
            );
            seq += 1;
        }
        if args.explain {
            if let Some(p) = engine.provenance() {
                // Full record to the terminal; a compact ring event into
                // the trace (the same composition the service performs).
                println!("  explain {}", render_provenance(p, &snapshot).encode());
                if let Some(events) = trace.as_mut() {
                    events.push(
                        JsonObject::new()
                            .int("seq", seq)
                            .str("kind", "explain")
                            .str("entity", &snapshot.entity_label(p.entity))
                            .int("candidates", p.candidates as u64)
                            .str("plan", p.plan.name())
                            .int("bound", p.bound)
                            .str(
                                "kernel",
                                if p.dispatch.use_postings {
                                    "postings"
                                } else {
                                    "elements"
                                },
                            )
                            .int("count_ns", p.measured_count_ns),
                    );
                    seq += 1;
                }
            }
        }
        print!(
            "is {:?} in your set? [y/n/?/q] ",
            snapshot.entity_label(entity)
        );
        std::io::stdout().flush().ok();
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break,
        };
        let answer = match line.trim() {
            "y" | "yes" => Answer::Yes,
            "n" | "no" => Answer::No,
            "?" => Answer::Unknown,
            "q" | "quit" => break,
            other => {
                println!("  (unrecognized {other:?}; asking again)");
                continue;
            }
        };
        let before = engine.candidate_count() as u64;
        engine.answer(entity, answer);
        if let Some(events) = trace.as_mut() {
            let token = match answer {
                Answer::Yes => "yes",
                Answer::No => "no",
                Answer::Unknown => "unknown",
            };
            events.push(
                JsonObject::new()
                    .int("seq", seq)
                    .str("kind", "answer")
                    .str("entity", &snapshot.entity_label(entity))
                    .str("answer", token)
                    .int("before", before)
                    .int("after", engine.candidate_count() as u64)
                    .int("backtracks", engine.backtracks() as u64),
            );
            seq += 1;
        }
    }
    let outcome = engine.outcome();
    match outcome.discovered() {
        Some(id) => println!(
            "→ your set is {:?} (after {} questions)",
            snapshot.set_label(id),
            outcome.questions
        ),
        None => {
            for id in &outcome.candidates {
                println!("  - {}", snapshot.set_label(*id));
            }
            println!("({} candidates remain)", outcome.candidates.len());
        }
    }
    if let Some(events) = trace {
        let obj = JsonObject::new()
            .str("op", "trace")
            .int("questions", outcome.questions as u64)
            .array("events", events);
        println!("{}", obj.encode());
    }
    if let Some((path, cache)) = plan {
        match setdisc_plan::save_plan(&cache, &path) {
            Ok(nodes) => println!("saved plan cache: {nodes} nodes -> {path}"),
            Err(e) => eprintln!("warning: could not save plan {path}: {e}"),
        }
    }
}
