//! Interactive set-discovery REPL — the paper's opening scenario as a tool.
//!
//! ```text
//! discover <sets.txt> [--strategy NAME] [--metric ad|h] [--k N] [--beam Q]
//!          [--examples e1,e2]
//! ```
//!
//! `sets.txt` uses the `setdisc_core::io` format (one set per line,
//! `name: member member …`). The tool filters to supersets of `--examples`,
//! then asks membership questions on stdin (`y` / `n` / `?` for don't-know
//! / `q` to stop) until one set remains.
//!
//! The CLI is a thin terminal driver over the *same* stack the network
//! service runs: collections become `setdisc_service::Snapshot`s,
//! strategies are built through `StrategySpec`, and the question loop steps
//! a sans-IO `Engine` — so a terminal conversation and a wire-protocol
//! conversation with the same configuration ask identical questions.

use setdisc_core::analysis::CollectionProfile;
use setdisc_core::discovery::Answer;
use setdisc_core::engine::Engine;
use setdisc_service::strategy::BoxedStrategy;
use setdisc_service::{Snapshot, SnapshotHandle, StrategySpec};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: discover <sets.txt> [--strategy klp|klp-le|klp-lve|most-even|info-gain|\
         indist-pairs|lb1|random] [--metric ad|h] [--k N] [--beam Q] [--examples e1,e2,...]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut strategy_name = "klp".to_string();
    let mut metric: Option<String> = None;
    let mut k: Option<u64> = None;
    let mut beam: Option<u64> = None;
    let mut examples: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strategy" => strategy_name = it.next().unwrap_or_else(|| usage()),
            "--metric" => metric = Some(it.next().unwrap_or_else(|| usage())),
            "--k" => {
                k = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--beam" => {
                beam = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                )
            }
            "--examples" => {
                examples = it
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(str::to_string)
                    .collect()
            }
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_string()),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    // `--beam` selects the k-LPLE family unless one was named explicitly.
    if beam.is_some() && strategy_name == "klp" {
        strategy_name = "klp-le".to_string();
    }
    let spec = StrategySpec::parse(&strategy_name, metric.as_deref(), k, beam, None)
        .unwrap_or_else(|e| {
            eprintln!("{e}");
            usage()
        });

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let snapshot = Snapshot::parse(path.clone(), &text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });

    let profile = CollectionProfile::new(snapshot.collection(), 500, 0);
    println!(
        "{} sets, {} entities ({} informative); expected ≥{:.2} questions, worst case {}",
        profile.n_sets,
        profile.distinct_entities,
        profile.informative_entities,
        profile.lb_avg_questions,
        profile.worst_case_questions
    );

    let initial: Vec<setdisc_core::EntityId> = examples
        .iter()
        .map(|name| {
            snapshot.resolve_entity(name).unwrap_or_else(|| {
                eprintln!("unknown example entity {name:?}");
                std::process::exit(1);
            })
        })
        .collect();

    // The exact engine type the service's session table stores.
    let mut engine: Engine<SnapshotHandle, BoxedStrategy> = Engine::new(
        SnapshotHandle(Arc::clone(&snapshot)),
        &initial,
        spec.build(),
    );
    println!(
        "{} candidate sets match your examples ({})",
        engine.candidate_count(),
        spec.label()
    );

    let stdin = std::io::stdin();
    let mut lines = stdin.lock().lines();
    while !engine.is_resolved() {
        let Some(entity) = engine.next_question() else {
            println!("no more informative questions — remaining candidates:");
            break;
        };
        print!(
            "is {:?} in your set? [y/n/?/q] ",
            snapshot.entity_label(entity)
        );
        std::io::stdout().flush().ok();
        let line = match lines.next() {
            Some(Ok(l)) => l,
            _ => break,
        };
        match line.trim() {
            "y" | "yes" => engine.answer(entity, Answer::Yes),
            "n" | "no" => engine.answer(entity, Answer::No),
            "?" => engine.answer(entity, Answer::Unknown),
            "q" | "quit" => break,
            other => println!("  (unrecognized {other:?}; asking again)"),
        }
    }
    let outcome = engine.outcome();
    match outcome.discovered() {
        Some(id) => println!(
            "→ your set is {:?} (after {} questions)",
            snapshot.set_label(id),
            outcome.questions
        ),
        None => {
            for id in &outcome.candidates {
                println!("  - {}", snapshot.set_label(*id));
            }
            println!("({} candidates remain)", outcome.candidates.len());
        }
    }
}
