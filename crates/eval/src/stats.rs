//! Statistics for the evaluation: summary moments and the paired one-tailed
//! t-test §5.3.2 uses to establish significance at α = 0.01.
//!
//! The Student-t CDF is computed through the regularized incomplete beta
//! function (Lentz's continued fraction with the standard Numerical-Recipes
//! acceleration), with `ln Γ` from a Lanczos approximation — accurate to
//! ~1e-12 over the ranges the tests exercise.

/// Running mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Mean of a slice (0 on empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    let mut w = Welford::new();
    for &x in xs {
        w.push(x);
    }
    w.std_dev()
}

/// `ln Γ(x)` for `x > 0` (Lanczos, g=7, n=9).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain");
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_9_f64;
    for (i, &c) in COEFFS.iter().enumerate() {
        a += c / (x + (i + 1) as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta `I_x(a, b)` for `x ∈ [0,1]`, `a, b > 0`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x), "x must be in [0,1]");
    assert!(a > 0.0 && b > 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // The continued fraction converges fast for x below the pivot; above it
    // evaluate the symmetric fraction directly (no recursion — the pivot
    // case x == (a+1)/(a+b+2) would otherwise flip back and forth forever).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta (modified Lentz).
fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// `P(T ≤ t)` for Student's t with `df` degrees of freedom.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Result of a paired one-tailed t-test.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TTest {
    /// The t statistic of the mean difference.
    pub t: f64,
    /// Degrees of freedom (`n − 1`).
    pub df: f64,
    /// One-tailed p-value for `H₁: mean(baseline − ours) > 0`.
    pub p_one_tailed: f64,
    /// Mean paired difference `baseline − ours`.
    pub mean_diff: f64,
}

/// Paired one-tailed t-test that `baseline` exceeds `ours` on average —
/// §5.3.2's significance test ("improvements … are statistically
/// significant at α = 0.01 using one-tailed t-test").
///
/// Returns `None` when fewer than two pairs or zero variance (the test is
/// undefined; callers report the mean difference alone).
pub fn paired_t_test(baseline: &[f64], ours: &[f64]) -> Option<TTest> {
    assert_eq!(baseline.len(), ours.len(), "paired samples");
    let n = baseline.len();
    if n < 2 {
        return None;
    }
    let diffs: Vec<f64> = baseline.iter().zip(ours).map(|(b, o)| b - o).collect();
    let m = mean(&diffs);
    let sd = std_dev(&diffs);
    if sd == 0.0 {
        return None;
    }
    let t = m / (sd / (n as f64).sqrt());
    let df = (n - 1) as f64;
    let p = 1.0 - student_t_cdf(t, df);
    Some(TTest {
        t,
        df,
        p_one_tailed: p,
        mean_diff: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sample variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(0.5) = √π; Γ(1) = 1; Γ(5) = 24.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(10.0) - 362_880.0f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_symmetry_and_bounds() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 3.0, 0.3), (0.5, 0.5, 0.7), (5.0, 1.5, 0.42)] {
            let lhs = incomplete_beta(a, b, x);
            let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
            assert!((lhs - rhs).abs() < 1e-12, "a={a} b={b} x={x}");
        }
        // I_x(1,1) = x (uniform).
        assert!((incomplete_beta(1.0, 1.0, 0.37) - 0.37).abs() < 1e-12);
    }

    #[test]
    fn student_t_quantiles() {
        // Standard table values: df=10, t=1.812 → one-tailed 0.95;
        // t=2.764 → 0.99; df=1 (Cauchy), t=1 → 0.75.
        assert!((student_t_cdf(1.812, 10.0) - 0.95).abs() < 2e-3);
        assert!((student_t_cdf(2.764, 10.0) - 0.99).abs() < 2e-3);
        assert!((student_t_cdf(1.0, 1.0) - 0.75).abs() < 1e-9);
        assert!((student_t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        // Symmetry.
        assert!((student_t_cdf(-1.3, 5.0) + student_t_cdf(1.3, 5.0) - 1.0).abs() < 1e-12);
        // Large df approaches the normal: Φ(1.96) ≈ 0.975.
        assert!((student_t_cdf(1.96, 10_000.0) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn paired_test_detects_consistent_improvement() {
        // baseline consistently 1 higher than ours.
        let baseline: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64).collect();
        let ours: Vec<f64> = baseline
            .iter()
            .map(|b| b - 1.0 + 0.1 * ((b * 7.0).sin()))
            .collect();
        let r = paired_t_test(&baseline, &ours).unwrap();
        assert!(r.mean_diff > 0.8);
        assert!(r.p_one_tailed < 0.01, "p = {}", r.p_one_tailed);
        assert_eq!(r.df, 29.0);
    }

    #[test]
    fn paired_test_accepts_null_when_no_difference() {
        let baseline: Vec<f64> = (0..40).map(|i| ((i * 37 % 11) as f64).sin()).collect();
        let ours: Vec<f64> = baseline.iter().map(|b| -b).collect();
        // Differences are symmetric noise → not significant.
        let r = paired_t_test(&baseline, &ours).unwrap();
        assert!(r.p_one_tailed > 0.05, "p = {}", r.p_one_tailed);
    }

    #[test]
    fn degenerate_inputs_yield_none() {
        assert!(paired_t_test(&[1.0], &[0.5]).is_none());
        assert!(paired_t_test(&[2.0, 2.0, 2.0], &[1.0, 1.0, 1.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn unequal_lengths_panic() {
        let _ = paired_t_test(&[1.0, 2.0], &[1.0]);
    }
}
