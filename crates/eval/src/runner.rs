//! Shared experiment infrastructure: scales, context, timing, and a small
//! deterministic parallel-map over workloads.

use setdisc_util::report::Table;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Workload scale.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds — exercised by tests and CI.
    Smoke,
    /// Minutes — the numbers EXPERIMENTS.md quotes.
    Default,
    /// The paper's workload sizes, where tractable on one machine.
    Paper,
}

impl Scale {
    /// Parses `"smoke" | "default" | "paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Picks one of three values by scale.
    pub fn pick<T: Copy>(self, smoke: T, default: T, paper: T) -> T {
        match self {
            Scale::Smoke => smoke,
            Scale::Default => default,
            Scale::Paper => paper,
        }
    }
}

/// Context shared by all experiments.
#[derive(Clone, Debug)]
pub struct ExpContext {
    /// Workload scale.
    pub scale: Scale,
    /// Base seed; every generator derives from it.
    pub seed: u64,
    /// Directory for CSV artifacts (`out/` by default); `None` = print only.
    pub out_dir: Option<PathBuf>,
}

impl ExpContext {
    /// Context with the given scale, the canonical seed, writing CSVs to
    /// `out/`.
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            seed: 0xEDB7_2023,
            out_dir: Some(PathBuf::from("out")),
        }
    }

    /// Context for tests: smoke scale, no CSV output.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::Smoke,
            seed: 0xEDB7_2023,
            out_dir: None,
        }
    }

    /// Emits a result table: prints markdown to stdout and writes
    /// `out/<slug>.csv` when an output directory is configured.
    pub fn emit(&self, slug: &str, table: &Table) {
        println!("{}", table.to_markdown());
        if let Some(dir) = &self.out_dir {
            let path = dir.join(format!("{slug}.csv"));
            if let Err(e) = table.write_csv(&path) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
    }
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Deterministic parallel map: applies `f` to each item on the shared
/// [`setdisc_util::pool`] scoped worker pool and returns outputs in input
/// order. `f` must be `Sync` (called from many threads); per-item state
/// belongs inside `f`.
///
/// The worker count comes from [`setdisc_util::pool::configured_threads`] — sized from
/// `std::thread::available_parallelism` with a `SETDISC_THREADS` override —
/// the same knob that drives the parallel k-LP candidate loop. Work
/// distribution is the pool's atomic [`setdisc_util::pool::ClaimCounter`]; each item sits
/// behind its own (uncontended) mutex purely so the claiming worker can
/// move it out without `unsafe`, and workers accumulate `(index, output)`
/// pairs locally that are merged back into input order after the join.
pub fn par_map<T: Send, U: Send>(items: Vec<T>, f: impl Fn(T) -> U + Sync) -> Vec<U> {
    use setdisc_util::pool;

    let workers = pool::configured_threads().min(items.len().max(1));
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let slots: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|t| std::sync::Mutex::new(Some(t)))
        .collect();
    let queue = pool::ClaimCounter::new(n);
    let mut locals: Vec<Vec<(usize, U)>> = (0..workers).map(|_| Vec::new()).collect();
    pool::run_workers(&mut locals, |_, local: &mut Vec<(usize, U)>| {
        while let Some(idx) = queue.claim() {
            let item = slots[idx]
                .lock()
                .expect("slot lock poisoned")
                .take()
                .expect("each index is claimed exactly once");
            local.push((idx, f(item)));
        }
    });
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (idx, u) in locals.into_iter().flatten() {
        out[idx] = Some(u);
    }
    out.into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parse_and_pick() {
        assert_eq!(Scale::parse("smoke"), Some(Scale::Smoke));
        assert_eq!(Scale::parse("default"), Some(Scale::Default));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
        assert_eq!(Scale::Smoke.pick(1, 2, 3), 1);
        assert_eq!(Scale::Default.pick(1, 2, 3), 2);
        assert_eq!(Scale::Paper.pick(1, 2, 3), 3);
    }

    #[test]
    fn timed_measures() {
        let (v, d) = timed(|| {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(d >= Duration::from_millis(9));
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(items.clone(), |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_hammered_with_more_items_than_threads() {
        // Far more items than any machine has threads, with skewed per-item
        // work so claim order and completion order diverge wildly; the
        // output must still be exact and in input order.
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(items.clone(), |x| {
            if x % 1_000 == 0 {
                std::thread::sleep(Duration::from_millis(2));
            }
            x * x + 1
        });
        assert_eq!(out.len(), items.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as u64) * (i as u64) + 1, "slot {i}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        assert!(par_map(Vec::<u32>::new(), |x| x).is_empty());
        assert_eq!(par_map(vec![7], |x| x + 1), vec![8]);
    }

    #[test]
    fn emit_without_outdir_only_prints() {
        let ctx = ExpContext::smoke();
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into()]);
        ctx.emit("test", &t); // must not panic or write files
    }
}
