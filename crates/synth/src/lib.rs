//! Synthetic workload generators for the set-discovery experiments (§5.2).
//!
//! * [`copyadd`] — the paper's copy-add preferential set generator
//!   (§5.2.2, Table 1): each set copies an `α` fraction of its elements
//!   from a previously generated set and draws the rest fresh.
//! * [`zipf`] — a Zipf sampler (substrate for the web-tables simulation).
//! * [`webtables`] — a simulated web-table-column corpus standing in for
//!   the paper's 2014 Wikipedia table snapshot (§5.2.1), plus two-entity
//!   seed-query extraction. See DESIGN.md §4 for the substitution argument.
//!
//! Everything is deterministic from a `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod copyadd;
pub mod webtables;
pub mod zipf;

pub use copyadd::{generate_copy_add, CopyAddConfig};
pub use webtables::{WebTablesConfig, WebTablesCorpus};
pub use zipf::Zipf;
