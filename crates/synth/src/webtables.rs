//! A simulated web-table-column corpus (substitute for the paper's 2014
//! Wikipedia table snapshot, §5.2.1 — see DESIGN.md §4).
//!
//! Structure mirrors what makes the real corpus interesting for set
//! discovery:
//!
//! * **semantic classes** ("NBA players", "UK cities", …) each own a
//!   vocabulary of entities; a column (= a set) samples one class's
//!   vocabulary, so columns of the same class overlap heavily;
//! * class popularity and within-class entity popularity are **Zipf**
//!   distributed (popular classes yield many columns; popular entities
//!   appear in most of them);
//! * a small **ambiguous pool** of entities is shared across classes (the
//!   paper's "Liverpool is both a City and a Football Club"), plus uniform
//!   noise contamination;
//! * the paper's cleaning rules apply: sets with fewer than three distinct
//!   elements are dropped, duplicates removed.
//!
//! Seed queries are pairs of entities co-occurring in at least
//! `min_candidates` columns — two examples disambiguate the class, exactly
//! like the paper's two-entity initial sets.

use crate::zipf::Zipf;
use setdisc_core::collection::CollectionBuilder;
use setdisc_core::entity::EntityId;
use setdisc_core::{Collection, EntitySet};
use setdisc_util::{FxHashMap, FxHashSet, Rng};

/// Corpus generation parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct WebTablesConfig {
    /// Number of semantic classes.
    pub n_classes: usize,
    /// Inclusive class-vocabulary size range.
    pub vocab_range: (usize, usize),
    /// Number of columns (sets) to generate before cleaning.
    pub n_columns: usize,
    /// Inclusive column-size range.
    pub column_size_range: (usize, usize),
    /// Zipf exponent for class popularity.
    pub class_zipf: f64,
    /// Zipf exponent for within-class entity popularity.
    pub entity_zipf: f64,
    /// Fraction of each class's vocabulary drawn from the shared
    /// cross-class pool (ambiguous entities).
    pub ambiguous_fraction: f64,
    /// Per-element probability of replacing a sampled entity with uniform
    /// noise from the global universe.
    pub noise_rate: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for WebTablesConfig {
    fn default() -> Self {
        Self {
            n_classes: 60,
            vocab_range: (800, 4_000),
            n_columns: 12_000,
            column_size_range: (8, 120),
            class_zipf: 0.9,
            entity_zipf: 0.8,
            ambiguous_fraction: 0.04,
            noise_rate: 0.01,
            seed: 0x5e7d15c,
        }
    }
}

impl WebTablesConfig {
    /// A small corpus for unit tests (fast to generate).
    pub fn tiny(seed: u64) -> Self {
        Self {
            n_classes: 8,
            vocab_range: (60, 150),
            n_columns: 600,
            column_size_range: (5, 40),
            seed,
            ..Self::default()
        }
    }
}

/// A generated corpus: the cleaned collection plus bookkeeping for seed
/// query extraction.
pub struct WebTablesCorpus {
    /// The cleaned collection of column-sets.
    pub collection: Collection,
    /// Duplicate columns dropped by cleaning.
    pub duplicates_dropped: usize,
    /// Columns dropped for having fewer than three distinct elements.
    pub small_dropped: usize,
    /// The class each *kept* column was sampled from (diagnostics).
    pub column_class: Vec<u32>,
}

/// Generates a corpus.
pub fn generate(cfg: &WebTablesConfig) -> WebTablesCorpus {
    assert!(cfg.n_classes >= 1 && cfg.n_columns >= 1);
    let (vlo, vhi) = cfg.vocab_range;
    let (clo, chi) = cfg.column_size_range;
    assert!(1 <= vlo && vlo <= vhi && 1 <= clo && clo <= chi);
    assert!((0.0..=0.5).contains(&cfg.ambiguous_fraction));
    assert!((0.0..=1.0).contains(&cfg.noise_rate));

    let mut rng = Rng::new(cfg.seed);

    // Shared ambiguous pool: sized to the average vocabulary.
    let avg_vocab = (vlo + vhi) / 2;
    let pool_size = ((avg_vocab as f64 * cfg.ambiguous_fraction * cfg.n_classes as f64)
        .sqrt()
        .ceil() as usize)
        .max(8);
    let mut next_entity: u32 = 0;
    let pool: Vec<EntityId> = (0..pool_size)
        .map(|_| {
            let e = EntityId(next_entity);
            next_entity += 1;
            e
        })
        .collect();

    // Class vocabularies: mostly fresh entities + a slice of the pool.
    let mut vocabs: Vec<Vec<EntityId>> = Vec::with_capacity(cfg.n_classes);
    for _ in 0..cfg.n_classes {
        let size = rng.range_usize(vlo, vhi + 1);
        let n_ambiguous = ((size as f64 * cfg.ambiguous_fraction) as usize).min(pool.len());
        let mut vocab: Vec<EntityId> = Vec::with_capacity(size);
        for idx in rng.sample_indices(pool.len(), n_ambiguous) {
            vocab.push(pool[idx]);
        }
        while vocab.len() < size {
            vocab.push(EntityId(next_entity));
            next_entity += 1;
        }
        // Popularity rank = position: keep ambiguous entities spread out.
        rng.shuffle(&mut vocab);
        vocabs.push(vocab);
    }
    let universe = next_entity;

    let class_dist = Zipf::new(cfg.n_classes, cfg.class_zipf);
    let mut builder = CollectionBuilder::new();
    let mut column_class_raw: Vec<u32> = Vec::with_capacity(cfg.n_columns);
    let mut small_dropped = 0usize;

    for _ in 0..cfg.n_columns {
        let class = class_dist.sample(&mut rng);
        let vocab = &vocabs[class];
        let want = rng.range_usize(clo, chi + 1).min(vocab.len());
        // Within-class Zipf sampling without replacement: rejection on a
        // seen-set; bounded because want ≤ |vocab|.
        let entity_dist = Zipf::new(vocab.len(), cfg.entity_zipf);
        let mut chosen: FxHashSet<EntityId> = FxHashSet::default();
        let mut attempts = 0usize;
        while chosen.len() < want && attempts < want * 30 {
            attempts += 1;
            let e = vocab[entity_dist.sample(&mut rng)];
            chosen.insert(e);
        }
        // Top up uniformly if rejection stalled in the Zipf head.
        if chosen.len() < want {
            for idx in rng.sample_indices(vocab.len(), want) {
                chosen.insert(vocab[idx]);
                if chosen.len() >= want {
                    break;
                }
            }
        }
        // Noise contamination.
        let mut elems: Vec<EntityId> = chosen
            .into_iter()
            .map(|e| {
                if rng.chance(cfg.noise_rate) {
                    EntityId(rng.gen_range(universe as u64) as u32)
                } else {
                    e
                }
            })
            .collect();
        elems.sort_unstable();
        elems.dedup();
        // Cleaning rule: at least three distinct elements.
        if elems.len() < 3 {
            small_dropped += 1;
            continue;
        }
        let before = builder.len();
        builder.push(EntitySet::from_sorted_unchecked(elems));
        if builder.len() > before {
            column_class_raw.push(class as u32);
        }
    }

    let built = builder.build().expect("non-empty corpus");
    WebTablesCorpus {
        collection: built.collection,
        duplicates_dropped: built.duplicates_dropped,
        small_dropped,
        column_class: column_class_raw,
    }
}

/// A two-entity seed query and the size of its candidate sub-collection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SeedQuery {
    /// The two example entities.
    pub entities: [EntityId; 2],
    /// Number of candidate sets containing both.
    pub n_candidates: usize,
}

/// Extracts up to `max_queries` distinct two-entity seed queries whose
/// candidate sub-collections contain at least `min_candidates` sets
/// (mirroring the paper's ≥100-set sub-collections). Pairs are sampled from
/// co-occurring entities in random sets, so they always have ≥1 candidate.
pub fn seed_queries(
    collection: &Collection,
    min_candidates: usize,
    max_queries: usize,
    seed: u64,
) -> Vec<SeedQuery> {
    let mut rng = Rng::new(seed);
    let mut seen: FxHashSet<(EntityId, EntityId)> = FxHashSet::default();
    let mut out = Vec::new();
    // Expected yield per attempt is high for clustered corpora; the attempt
    // bound keeps pathological inputs from spinning.
    let max_attempts = max_queries.saturating_mul(200).max(1_000);
    for _ in 0..max_attempts {
        if out.len() >= max_queries {
            break;
        }
        let sid = setdisc_core::entity::SetId(rng.gen_range(collection.len() as u64) as u32);
        let set = collection.set(sid);
        if set.len() < 2 {
            continue;
        }
        let idx = rng.sample_indices(set.len(), 2);
        let (mut a, mut b) = (set.as_slice()[idx[0]], set.as_slice()[idx[1]]);
        if b < a {
            std::mem::swap(&mut a, &mut b);
        }
        if !seen.insert((a, b)) {
            continue;
        }
        let view = collection.supersets_of(&[a, b]);
        if view.len() >= min_candidates {
            out.push(SeedQuery {
                entities: [a, b],
                n_candidates: view.len(),
            });
        }
    }
    out
}

/// Summary statistics of the sub-collections induced by seed queries —
/// the numbers §5.2.1 reports for the real corpus (set counts, distinct
/// entity counts).
#[derive(Clone, Debug, Default)]
pub struct SubCollectionStats {
    /// Number of sub-collections summarized.
    pub count: usize,
    /// Min/mean/max candidate-set counts.
    pub sets_min: usize,
    /// Mean candidate-set count.
    pub sets_mean: f64,
    /// Max candidate-set count.
    pub sets_max: usize,
    /// Min distinct entities.
    pub entities_min: usize,
    /// Mean distinct entities.
    pub entities_mean: f64,
    /// Max distinct entities.
    pub entities_max: usize,
}

/// Computes [`SubCollectionStats`] over the given seed queries.
pub fn subcollection_stats(collection: &Collection, queries: &[SeedQuery]) -> SubCollectionStats {
    let mut stats = SubCollectionStats {
        count: queries.len(),
        sets_min: usize::MAX,
        entities_min: usize::MAX,
        ..Default::default()
    };
    if queries.is_empty() {
        return SubCollectionStats::default();
    }
    let mut set_sum = 0usize;
    let mut ent_sum = 0usize;
    for q in queries {
        let view = collection.supersets_of(&q.entities);
        let mut distinct: FxHashMap<EntityId, ()> = FxHashMap::default();
        for &id in view.ids() {
            for e in collection.set(id).iter() {
                distinct.insert(e, ());
            }
        }
        let n = view.len();
        let m = distinct.len();
        set_sum += n;
        ent_sum += m;
        stats.sets_min = stats.sets_min.min(n);
        stats.sets_max = stats.sets_max.max(n);
        stats.entities_min = stats.entities_min.min(m);
        stats.entities_max = stats.entities_max.max(m);
    }
    stats.sets_mean = set_sum as f64 / queries.len() as f64;
    stats.entities_mean = ent_sum as f64 / queries.len() as f64;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_clean() {
        let corpus = generate(&WebTablesConfig::tiny(1));
        assert!(corpus.collection.len() > 100);
        for (_, set) in corpus.collection.iter() {
            assert!(set.len() >= 3, "cleaning rule: ≥3 distinct elements");
        }
        assert_eq!(corpus.column_class.len(), corpus.collection.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&WebTablesConfig::tiny(9));
        let b = generate(&WebTablesConfig::tiny(9));
        assert_eq!(a.collection.len(), b.collection.len());
        for ((_, x), (_, y)) in a.collection.iter().zip(b.collection.iter()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn same_class_columns_overlap_more() {
        let corpus = generate(&WebTablesConfig::tiny(3));
        let c = &corpus.collection;
        let mut same = Vec::new();
        let mut diff = Vec::new();
        let ids: Vec<_> = c.iter().map(|(id, _)| id).collect();
        for i in (0..ids.len().min(300)).step_by(3) {
            for j in (i + 1..ids.len().min(300)).step_by(7) {
                let jac = c.set(ids[i]).jaccard(c.set(ids[j]));
                if corpus.column_class[i] == corpus.column_class[j] {
                    same.push(jac);
                } else {
                    diff.push(jac);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&same) > mean(&diff) * 3.0,
            "same-class {:.4} vs cross-class {:.4}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn seed_queries_have_enough_candidates() {
        let corpus = generate(&WebTablesConfig::tiny(5));
        let queries = seed_queries(&corpus.collection, 20, 10, 99);
        assert!(!queries.is_empty(), "should find popular-class pairs");
        for q in &queries {
            assert!(q.n_candidates >= 20);
            let view = corpus.collection.supersets_of(&q.entities);
            assert_eq!(view.len(), q.n_candidates);
        }
        // Distinct pairs.
        let uniq: FxHashSet<_> = queries.iter().map(|q| q.entities).collect();
        assert_eq!(uniq.len(), queries.len());
    }

    #[test]
    fn impossible_threshold_yields_no_queries() {
        let corpus = generate(&WebTablesConfig::tiny(5));
        let queries = seed_queries(&corpus.collection, usize::MAX, 5, 1);
        assert!(queries.is_empty());
    }

    #[test]
    fn stats_summarize_subcollections() {
        let corpus = generate(&WebTablesConfig::tiny(7));
        let queries = seed_queries(&corpus.collection, 10, 8, 42);
        let stats = subcollection_stats(&corpus.collection, &queries);
        assert_eq!(stats.count, queries.len());
        assert!(stats.sets_min >= 10);
        assert!(stats.sets_mean >= stats.sets_min as f64);
        assert!(stats.sets_max >= stats.sets_mean as usize);
        assert!(stats.entities_min > 0);
        assert!(stats.entities_mean <= stats.entities_max as f64);
        let empty = subcollection_stats(&corpus.collection, &[]);
        assert_eq!(empty.count, 0);
    }
}
