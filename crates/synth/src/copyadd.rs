//! Copy-add preferential set generation (paper §5.2.2, Table 1).
//!
//! Each set has a size `s` drawn uniformly from a range `d` and an overlap
//! ratio `α ∈ [0, 1)`: `⌈α·s⌉` elements are copied from a previously
//! generated set (chosen uniformly) and the remaining elements are fresh
//! entities from the universe; when the source set cannot supply enough
//! elements the shortfall is also drawn fresh, as the paper prescribes.
//!
//! Higher `α` ⇒ more shared entities ⇒ fewer distinct entities and more
//! filtering power per question (Fig. 5); the generator reproduces those
//! trends. Absolute distinct-entity counts differ somewhat from Table 1 at
//! extreme `α` (the paper underspecifies the copy mechanism); EXPERIMENTS.md
//! records paper-vs-measured side by side.

use setdisc_core::entity::EntityId;
use setdisc_core::{Collection, EntitySet};
use setdisc_util::Rng;

/// Parameters of one synthetic collection (one cell of Table 1).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CopyAddConfig {
    /// Number of sets `n`.
    pub n_sets: usize,
    /// Inclusive set-size range `d = [lo, hi]`.
    pub size_range: (usize, usize),
    /// Overlap ratio `α ∈ [0, 1)`.
    pub overlap: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl CopyAddConfig {
    /// Config matching Table 1(a): `n = 10k`, `d = 50–60`, the given `α`.
    pub fn table1a(overlap: f64, seed: u64) -> Self {
        Self {
            n_sets: 10_000,
            size_range: (50, 60),
            overlap,
            seed,
        }
    }

    /// Config matching Table 1(b): `α = 0.9`, `d = 50–60`, the given `n`.
    pub fn table1b(n_sets: usize, seed: u64) -> Self {
        Self {
            n_sets,
            size_range: (50, 60),
            overlap: 0.9,
            seed,
        }
    }

    /// Config matching Table 1(c): `n = 10k`, `α = 0.9`, the given range.
    pub fn table1c(size_range: (usize, usize), seed: u64) -> Self {
        Self {
            n_sets: 10_000,
            size_range,
            overlap: 0.9,
            seed,
        }
    }

    /// A proportionally scaled-down copy (for quick tests and benches):
    /// divides the set count by `factor`, keeping sizes and overlap.
    pub fn scaled_down(mut self, factor: usize) -> Self {
        self.n_sets = (self.n_sets / factor).max(2);
        self
    }
}

/// Generates a collection with the copy-add mechanism. Duplicate sets (rare,
/// possible at extreme overlap) are dropped by the collection builder, so
/// the result can have slightly fewer than `n_sets` sets.
pub fn generate_copy_add(cfg: &CopyAddConfig) -> Collection {
    assert!(cfg.n_sets >= 1);
    assert!((0.0..1.0).contains(&cfg.overlap), "α must be in [0,1)");
    let (lo, hi) = cfg.size_range;
    assert!(1 <= lo && lo <= hi, "bad size range");

    let mut rng = Rng::new(cfg.seed);
    let mut next_entity: u32 = 0;
    let mut fresh = |rng: &mut Rng, _n: usize| {
        let _ = rng;
        let e = EntityId(next_entity);
        next_entity += 1;
        e
    };

    let mut sets: Vec<Vec<EntityId>> = Vec::with_capacity(cfg.n_sets);
    for i in 0..cfg.n_sets {
        let s = rng.range_usize(lo, hi + 1);
        let mut elems: Vec<EntityId> = Vec::with_capacity(s);
        if i > 0 {
            let src = &sets[rng.range_usize(0, i)];
            let want = ((cfg.overlap * s as f64).ceil() as usize).min(s);
            let take = want.min(src.len());
            for idx in rng.sample_indices(src.len(), take) {
                elems.push(src[idx]);
            }
        }
        while elems.len() < s {
            elems.push(fresh(&mut rng, 1));
        }
        elems.sort_unstable();
        elems.dedup();
        sets.push(elems);
    }

    let built = setdisc_core::collection::CollectionBuilder::from_sets(
        sets.into_iter().map(EntitySet::from_iter).collect(),
    )
    .build()
    .expect("n_sets >= 1");
    built.collection
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(overlap: f64, seed: u64) -> CopyAddConfig {
        CopyAddConfig {
            n_sets: 500,
            size_range: (20, 30),
            overlap,
            seed,
        }
    }

    #[test]
    fn respects_size_range() {
        let c = generate_copy_add(&small(0.5, 1));
        for (_, set) in c.iter() {
            // Dedup can shrink a set below `lo` only via copy collisions,
            // which sample_indices prevents (distinct indices), so sizes
            // hold exactly.
            assert!((20..=30).contains(&set.len()), "size {}", set.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_copy_add(&small(0.7, 42));
        let b = generate_copy_add(&small(0.7, 42));
        assert_eq!(a.len(), b.len());
        for ((_, x), (_, y)) in a.iter().zip(b.iter()) {
            assert_eq!(x, y);
        }
        let c = generate_copy_add(&small(0.7, 43));
        let same = a.iter().zip(c.iter()).all(|((_, x), (_, y))| x == y);
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn distinct_entities_decrease_with_overlap() {
        // The Table 1(a) trend: higher α ⇒ fewer distinct entities.
        let counts: Vec<usize> = [0.2, 0.5, 0.8, 0.95]
            .iter()
            .map(|&a| generate_copy_add(&small(a, 7)).distinct_entities())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] > w[1]),
            "not monotone: {counts:?}"
        );
    }

    #[test]
    fn distinct_entities_grow_with_n_and_size() {
        // Table 1(b) and 1(c) trends.
        let base = small(0.9, 3);
        let more_sets = CopyAddConfig {
            n_sets: 2_000,
            ..base
        };
        assert!(
            generate_copy_add(&more_sets).distinct_entities()
                > generate_copy_add(&base).distinct_entities()
        );
        let bigger_sets = CopyAddConfig {
            size_range: (60, 90),
            ..base
        };
        assert!(
            generate_copy_add(&bigger_sets).distinct_entities()
                > generate_copy_add(&base).distinct_entities()
        );
    }

    #[test]
    fn zero_overlap_is_all_fresh() {
        let c = generate_copy_add(&small(0.0, 9));
        // Every element fresh → total elements == distinct entities.
        let total: usize = c.iter().map(|(_, s)| s.len()).sum();
        assert_eq!(c.distinct_entities(), total);
    }

    #[test]
    fn high_overlap_shares_heavily() {
        let c = generate_copy_add(&small(0.95, 11));
        let total: usize = c.iter().map(|(_, s)| s.len()).sum();
        let distinct = c.distinct_entities();
        assert!(
            (distinct as f64) < 0.2 * total as f64,
            "distinct {distinct} of {total} elements"
        );
    }

    #[test]
    fn fresh_entity_fraction_tracks_one_minus_alpha() {
        // Expected fresh draws per set ≈ (1-α)·s̄; check within 20%.
        let cfg = CopyAddConfig {
            n_sets: 2_000,
            size_range: (40, 50),
            overlap: 0.75,
            seed: 5,
        };
        let c = generate_copy_add(&cfg);
        let avg_size = c.avg_set_size();
        let fresh_per_set = c.distinct_entities() as f64 / cfg.n_sets as f64;
        let expected = (1.0 - cfg.overlap) * avg_size;
        assert!(
            (fresh_per_set - expected).abs() < 0.3 * expected,
            "fresh/set {fresh_per_set:.2} vs expected {expected:.2}"
        );
    }

    #[test]
    fn table1_constructors() {
        let a = CopyAddConfig::table1a(0.9, 1);
        assert_eq!((a.n_sets, a.size_range), (10_000, (50, 60)));
        let b = CopyAddConfig::table1b(20_000, 1);
        assert_eq!((b.n_sets, b.overlap), (20_000, 0.9));
        let c = CopyAddConfig::table1c((100, 150), 1);
        assert_eq!(c.size_range, (100, 150));
        assert_eq!(a.scaled_down(100).n_sets, 100);
    }

    #[test]
    #[should_panic(expected = "α must be in")]
    fn rejects_alpha_one() {
        generate_copy_add(&small(1.0, 1));
    }
}
