//! Zipf-distributed sampling over ranks `0..n`.
//!
//! `P(rank = i) ∝ 1 / (i + 1)^s`. Implemented with a precomputed CDF table
//! and binary search — O(n) setup, O(log n) per sample, exact and
//! deterministic with the workspace PRNG. Used to give the simulated
//! web-table corpus the heavy-tailed class/entity popularity the real
//! Wikipedia tables exhibit.

use setdisc_util::Rng;

/// A Zipf(n, s) sampler over ranks `0..n`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Sampler over `n ≥ 1` ranks with exponent `s ≥ 0` (s = 0 is uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be finite, ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against rounding keeping the last bucket unreachable.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there is a single rank (always sampled).
    pub fn is_empty(&self) -> bool {
        false // n ≥ 1 is enforced at construction
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        // First index with cdf[i] >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN in cdf"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability of one rank.
    pub fn pmf(&self, rank: usize) -> f64 {
        match rank {
            0 => self.cdf[0],
            r if r < self.cdf.len() => self.cdf[r] - self.cdf[r - 1],
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(100, 1.1);
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(100), 0.0);
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(10));
        assert!(z.pmf(10) > z.pmf(100));
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12, "rank {r}");
        }
    }

    #[test]
    fn samples_match_pmf() {
        let z = Zipf::new(50, 1.2);
        let mut rng = Rng::new(17);
        let n = 100_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        // Head probabilities should match within a few percent.
        for (r, &count) in counts.iter().enumerate().take(5) {
            let observed = count as f64 / n as f64;
            let expected = z.pmf(r);
            assert!(
                (observed - expected).abs() < 0.01 + 0.05 * expected,
                "rank {r}: {observed:.4} vs {expected:.4}"
            );
        }
        // Every rank reachable in principle; tail ranks may be unseen in a
        // finite sample, but all samples must be in range (checked by
        // indexing not panicking above).
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn deterministic_sampling() {
        let z = Zipf::new(20, 1.0);
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }
}
