//! Versioned binary persistence for a [`PlanCache`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8 bytes  b"SDPLAN2\n"   (version rides in the magic)
//! coll_fp   16 bytes  collection content identity (u128)
//! coll_len   4 bytes  collection set count
//! count      8 bytes  number of nodes
//! checksum   8 bytes  FxHasher over the payload bytes
//! payload    count × 98-byte node records, sorted by key
//! ```
//!
//! Each node record is `family u8 | metric u8 | k u32 | beam u32 |
//! weight_fp u64 | fp u128 | len u32 | entity u32 | bound u64 |
//! informative u32 | evaluated u32 | yes_fp u128 | yes_len u32 |
//! no_fp u128 | no_len u32`. Version 2 added the 8-byte prior fingerprint
//! (`0` = unweighted); version-1 files are rejected by magic — plans are a
//! cache, regenerating beats silently mis-keying. The header binds the
//! file to one collection (checked again at attach time via
//! [`PlanCache::matches`]) and the checksum rejects truncated or corrupted
//! payloads before a single node is trusted.

use crate::cache::{PlanCache, PlanKey, PlanNode, StrategyKey};
use setdisc_core::entity::EntityId;
use setdisc_util::{Fingerprint, FxHasher};
use std::hash::Hasher as _;
use std::io::{self, Write};
use std::path::Path;

/// File magic; the trailing digit is the format version.
pub const MAGIC: [u8; 8] = *b"SDPLAN2\n";

/// Bytes per serialized node record.
const NODE_BYTES: usize = 98;

fn corrupt(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_fp(out: &mut Vec<u8>, fp: Fingerprint) {
    out.extend_from_slice(&fp.as_u128().to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt("truncated plan payload"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn fp(&mut self) -> io::Result<Fingerprint> {
        let raw = u128::from_le_bytes(self.take(16)?.try_into().expect("16"));
        Ok(Fingerprint::from_u128(raw))
    }
}

/// Monotonic discriminator so concurrent saves to one path (e.g. the
/// checkpointer racing a shutdown persist) never share a temp file.
static SAVE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Serializes every resident node of `cache` (deterministic order) to
/// `path` — crash-safely.
///
/// The bytes are staged in a process-unique sibling temp file, fsynced,
/// and atomically renamed over `path` (whose directory is then fsynced so
/// the rename itself survives power loss). A reader therefore always sees
/// either the previous complete plan or the new complete plan, never a
/// torn mix — a crash (or an injected fault; see the `plan.save.*` hook
/// sites) between any two steps leaves the last good file in place. The
/// stale temp file a crash can leave behind is harmless: temp names are
/// never reused across processes and the loader only reads `path`.
pub fn save_plan(cache: &PlanCache, path: impl AsRef<Path>) -> io::Result<u64> {
    let _span = setdisc_util::obs::span(setdisc_util::obs::Site::PlanSave);
    let nodes = cache.export_nodes();
    let mut payload = Vec::with_capacity(nodes.len() * NODE_BYTES);
    for (key, node) in &nodes {
        payload.push(key.strategy.family);
        payload.push(key.strategy.metric);
        put_u32(&mut payload, key.strategy.k);
        put_u32(&mut payload, key.strategy.beam);
        put_u64(&mut payload, key.strategy.weight_fp);
        put_fp(&mut payload, key.fp);
        put_u32(&mut payload, key.len);
        put_u32(&mut payload, node.entity.0);
        put_u64(&mut payload, node.bound);
        put_u32(&mut payload, node.informative);
        put_u32(&mut payload, node.evaluated);
        put_fp(&mut payload, node.yes.0);
        put_u32(&mut payload, node.yes.1);
        put_fp(&mut payload, node.no.0);
        put_u32(&mut payload, node.no.1);
    }
    let mut h = FxHasher::default();
    h.write(&payload);

    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(
        ".tmp.{}.{}",
        std::process::id(),
        SAVE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    ));
    let tmp = std::path::PathBuf::from(tmp);
    let result = write_staged(cache, &nodes, &payload, h.finish(), &tmp, path);
    if result.is_err() {
        // Best effort: a failed save must not litter; the main file is
        // untouched either way.
        std::fs::remove_file(&tmp).ok();
    }
    result?;
    Ok(nodes.len() as u64)
}

/// The staged write: temp file → fsync → rename → directory fsync. Split
/// out so `save_plan` can clean up the temp on any failure.
fn write_staged(
    cache: &PlanCache,
    nodes: &[(PlanKey, PlanNode)],
    payload: &[u8],
    checksum: u64,
    tmp: &Path,
    path: &Path,
) -> io::Result<()> {
    {
        let mut f = io::BufWriter::new(std::fs::File::create(tmp)?);
        f.write_all(&MAGIC)?;
        f.write_all(&cache.collection_fp().as_u128().to_le_bytes())?;
        f.write_all(&cache.collection_len().to_le_bytes())?;
        f.write_all(&(nodes.len() as u64).to_le_bytes())?;
        f.write_all(&checksum.to_le_bytes())?;
        // Chaos hook: an injected `short` fault tears the staged payload,
        // an injected `err` aborts mid-write — either way `path` keeps the
        // last good plan.
        setdisc_util::faults::check_io("plan.save.write")?;
        let keep = setdisc_util::faults::short_len("plan.save.write.payload", payload.len());
        f.write_all(&payload[..keep])?;
        if keep < payload.len() {
            f.flush()?;
            return Err(io::Error::other("injected fault: short plan write"));
        }
        f.flush()?;
        f.get_ref().sync_all()?;
    }
    setdisc_util::faults::check_io("plan.save.rename")?;
    std::fs::rename(tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        // Persist the rename itself. Directory fsync is best-effort: some
        // filesystems/platforms refuse to open a directory for sync.
        if let Ok(dir) = std::fs::File::open(parent) {
            dir.sync_all().ok();
        }
    }
    Ok(())
}

/// Reads a plan file into a fresh cache bounded to at least `capacity`
/// nodes (raised to the file's node count so a warm boot never evicts its
/// own payload). The caller still validates the collection via
/// [`PlanCache::matches`] before attaching.
pub fn load_plan(path: impl AsRef<Path>, capacity: usize) -> io::Result<PlanCache> {
    let bytes = std::fs::read(path)?;
    let mut c = Cursor {
        bytes: &bytes,
        pos: 0,
    };
    if c.take(8)? != MAGIC {
        return Err(corrupt("not a plan file (bad magic/version)"));
    }
    let collection_fp = c.fp()?;
    let collection_len = c.u32()?;
    let count = c.u64()?;
    let checksum = c.u64()?;
    let payload = &bytes[c.pos..];
    let expected = (count as usize).saturating_mul(NODE_BYTES);
    if payload.len() != expected {
        return Err(corrupt(format!(
            "plan payload is {} bytes, expected {expected} for {count} nodes",
            payload.len(),
        )));
    }
    let mut h = FxHasher::default();
    h.write(payload);
    if h.finish() != checksum {
        return Err(corrupt("plan payload checksum mismatch"));
    }

    let cache =
        PlanCache::with_identity(collection_fp, collection_len, capacity.max(count as usize));
    for _ in 0..count {
        let strategy = StrategyKey {
            family: c.u8()?,
            metric: c.u8()?,
            k: c.u32()?,
            beam: c.u32()?,
            weight_fp: c.u64()?,
        };
        let key = PlanKey {
            strategy,
            fp: c.fp()?,
            len: c.u32()?,
        };
        let node = PlanNode {
            entity: EntityId(c.u32()?),
            bound: c.u64()?,
            informative: c.u32()?,
            evaluated: c.u32()?,
            yes: (c.fp()?, c.u32()?),
            no: (c.fp()?, c.u32()?),
        };
        // Provenance: hits on these nodes report a file origin (`explain`
        // distinguishes warm-boot plans from online-learned ones).
        cache.insert_loaded(key, node);
    }
    Ok(cache)
}

#[cfg(test)]
mod tests {
    use super::*;
    use setdisc_core::collection::Collection;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    fn sample_cache() -> (Collection, PlanCache) {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 1024);
        for i in 0..40u64 {
            cache.insert(
                PlanKey {
                    strategy: StrategyKey {
                        family: (i % 3) as u8,
                        metric: (i % 2) as u8,
                        k: 2,
                        beam: 10,
                        weight_fp: if i % 5 == 0 { 0xfeed_beef | 1 } else { 0 },
                    },
                    fp: Fingerprint::of(i),
                    len: 7,
                },
                PlanNode {
                    entity: EntityId(i as u32),
                    bound: i * 3,
                    informative: 10,
                    evaluated: 2,
                    yes: (Fingerprint::of(i + 1), 3),
                    no: (Fingerprint::of(i + 2), 4),
                },
            );
        }
        (c, cache)
    }

    #[test]
    fn save_load_round_trips_every_node() {
        let (c, cache) = sample_cache();
        let dir = std::env::temp_dir().join("setdisc_plan_test_roundtrip");
        let path = dir.join("figure1.plan");
        let written = save_plan(&cache, &path).unwrap();
        assert_eq!(written, 40);
        let loaded = load_plan(&path, 0).unwrap();
        assert!(loaded.matches(&c));
        assert_eq!(loaded.export_nodes(), cache.export_nodes());
        assert!(loaded.capacity() >= 40, "payload never self-evicts");
        // Saves are byte-stable for identical content.
        let path2 = dir.join("figure1b.plan");
        save_plan(&loaded, &path2).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_files_are_rejected() {
        let (_, cache) = sample_cache();
        let dir = std::env::temp_dir().join("setdisc_plan_test_corrupt");
        let path = dir.join("x.plan");
        save_plan(&cache, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(load_plan(&path, 0).is_err());

        // Flipped payload byte → checksum mismatch.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        let err = load_plan(&path, 0).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncation → payload length mismatch.
        std::fs::write(&path, &good[..good.len() - 7]).unwrap();
        assert!(load_plan(&path, 0).is_err());

        // Truncation on an exact record boundary is still caught (the
        // header's count no longer matches the payload).
        std::fs::write(&path, &good[..good.len() - 98]).unwrap();
        let err = load_plan(&path, 0).unwrap_err();
        assert!(err.to_string().contains("expected"), "{err}");

        // Truncated header.
        std::fs::write(&path, &good[..20]).unwrap();
        assert!(load_plan(&path, 0).is_err());

        // A version-1 file (pre-weight_fp magic) is rejected outright —
        // its 90-byte records would mis-align under the v2 codec.
        let mut v1 = good.clone();
        v1[..8].copy_from_slice(b"SDPLAN1\n");
        std::fs::write(&path, &v1).unwrap();
        let err = load_plan(&path, 0).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulted_saves_never_touch_the_last_good_file() {
        // Process-global fault state: serialize with any other test that
        // arms it (this is the only one in this crate).
        let (_, cache) = sample_cache();
        let dir = std::env::temp_dir().join("setdisc_plan_test_atomic");
        let path = dir.join("x.plan");
        save_plan(&cache, &path).unwrap();
        let good = std::fs::read(&path).unwrap();

        for spec in [
            "seed=9,plan.save.write=err:1",
            "seed=9,plan.save.write.payload=short:1:13",
            "seed=9,plan.save.rename=err:1",
        ] {
            setdisc_util::faults::install_spec(spec).unwrap();
            let err = save_plan(&cache, &path).unwrap_err();
            assert!(err.to_string().contains("injected"), "{spec}: {err}");
            setdisc_util::faults::clear();
            assert_eq!(
                std::fs::read(&path).unwrap(),
                good,
                "{spec}: last good file must be byte-identical"
            );
            load_plan(&path, 0).unwrap();
            // No temp litter after a failed save.
            let stray: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name() != "x.plan")
                .collect();
            assert!(stray.is_empty(), "{spec}: stray files {stray:?}");
        }
        // Disarmed again: saves succeed and replace atomically.
        save_plan(&cache, &path).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), good);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn weighted_plan_does_not_cover_the_unweighted_strategy() {
        // A file holding only weighted-key nodes loads fine, but a loader
        // about to serve the unweighted configuration can (and must) detect
        // that the plan shares zero nodes with it.
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 1024);
        let weighted = StrategyKey {
            family: 0,
            metric: 0,
            k: 2,
            beam: 0,
            weight_fp: 0xabcd_ef01 | 1,
        };
        for i in 0..8u64 {
            cache.insert(
                PlanKey {
                    strategy: weighted,
                    fp: Fingerprint::of(i),
                    len: 7,
                },
                PlanNode {
                    entity: EntityId(i as u32),
                    bound: i,
                    informative: 1,
                    evaluated: 1,
                    yes: (Fingerprint::of(i + 1), 3),
                    no: (Fingerprint::of(i + 2), 4),
                },
            );
        }
        let dir = std::env::temp_dir().join("setdisc_plan_test_weighted_cov");
        let path = dir.join("weighted.plan");
        save_plan(&cache, &path).unwrap();
        let loaded = load_plan(&path, 0).unwrap();
        assert!(loaded.matches(&c));
        assert_eq!(loaded.strategy_keys(), vec![weighted]);
        let unweighted = StrategyKey {
            weight_fp: 0,
            ..weighted
        };
        assert!(loaded.covers_strategy(weighted));
        assert!(
            !loaded.covers_strategy(unweighted),
            "weighted nodes must not satisfy the unweighted key"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
