//! The concurrent plan store and its engine adapter.
//!
//! A [`PlanCache`] is pinned to one collection (content identity captured
//! at construction) and holds nodes for any number of strategy
//! configurations over it, sharded 16 ways so concurrent sessions contend
//! only 1/16 of the time. Each entry is one decision-tree node: the entity
//! the strategy selects on that sub-collection, the bound and prune
//! statistics behind the pick, and the `(fingerprint, len)` keys of the
//! yes/no children (derived at record time from one postings pass — no
//! partition happens). A "don't know" reply leaves the sub-collection — and
//! therefore the key — unchanged, so the don't-know child of every node is
//! the node itself; it is not stored, and the engine hook never consults
//! the cache once entities are excluded (see the crate docs).
//!
//! Eviction is size-bounded and LRU-ish: every access stamps the entry
//! from a global clock, and an insert that finds the cache at capacity
//! drops the least-recently-stamped quarter of its target shard in one
//! sweep — O(shard) once per quarter-shard of churn, amortized O(1), no
//! per-access list surgery.

use setdisc_core::collection::Collection;
use setdisc_core::cost::Cost;
use setdisc_core::engine::{PlanOrigin, SelectionCache};
use setdisc_core::entity::EntityId;
use setdisc_core::strategy::SelectionDetail;
use setdisc_core::subcollection::SubCollection;
use setdisc_util::mem::{map_spine_bytes, HeapSize};
use setdisc_util::{faults, Fingerprint, FxHashMap, FxHasher};
use std::hash::Hasher as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards.
const SHARDS: usize = 16;

/// A strategy configuration the cache can distinguish — the serializable
/// projection of a wire-level strategy spec. Randomized strategies have no
/// key (they must not share plans); `setdisc-service` maps its
/// `StrategySpec` here and returns `None` for those.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrategyKey {
    /// Selection family tag (the service's wire family, e.g. k-LP vs
    /// most-even). Opaque to this crate beyond equality.
    pub family: u8,
    /// Cost metric tag (0 = AD, 1 = H).
    pub metric: u8,
    /// Lookahead depth for the k-LP families (0 when not applicable).
    pub k: u32,
    /// Beam width for the limited families (0 when not applicable).
    pub beam: u32,
    /// Fingerprint of the per-set prior the strategy optimizes under
    /// (`setdisc_core::weights::WeightTable::fp`), or `0` for the
    /// unweighted strategy. Weight tables force their fingerprints odd, so
    /// `0` is unambiguous; folding the prior into the key keeps weighted
    /// and unweighted plans for the same family losslessly separate.
    pub weight_fp: u64,
}

/// Identity of one decision-tree node: a strategy configuration plus the
/// sub-collection's content `(fingerprint, len)` — the same
/// canonicalization the lookahead memos key on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlanKey {
    /// The strategy configuration that produced (or would produce) the
    /// selection.
    pub strategy: StrategyKey,
    /// 128-bit content digest of the candidate sub-collection.
    pub fp: Fingerprint,
    /// Number of candidate sets (always paired with the digest).
    pub len: u32,
}

/// One cached decision-tree node.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PlanNode {
    /// The entity the strategy selects on this sub-collection.
    pub entity: EntityId,
    /// The strategy's bound for the pick (`LB_k` for lookahead families,
    /// 0 for greedy strategies).
    pub bound: Cost,
    /// Informative entities at this node (0 when the strategy reported
    /// none — e.g. a greedy family or a memo-served selection).
    pub informative: u32,
    /// Entities whose bound computation started (Table-4 counter; 0 when
    /// unreported).
    pub evaluated: u32,
    /// `(fingerprint, len)` of the yes child (sets containing the entity).
    pub yes: (Fingerprint, u32),
    /// `(fingerprint, len)` of the no child. The don't-know child is this
    /// node's own key and is not stored.
    pub no: (Fingerprint, u32),
}

/// Aggregate counters of one [`PlanCache`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Nodes currently resident.
    pub nodes: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// The subset of `hits` served under a weighted strategy key
    /// (`weight_fp != 0`) — lets a warm weighted plan prove it is being
    /// consulted.
    pub weighted_hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Nodes ever inserted.
    pub inserted: u64,
    /// Nodes dropped by the size bound.
    pub evicted: u64,
}

impl PlanStats {
    /// Hits over lookups, in `[0, 1]` (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    node: PlanNode,
    stamp: u64,
    /// Provenance bit: `true` when the node arrived via a plan-file load
    /// ([`PlanCache::insert_loaded`]) rather than a live session's record.
    from_file: bool,
}

/// Deterministic byte cost accounted per resident node: the key-value
/// slot plus one hash-table control byte. Every entry is the same size
/// (`PlanNode` is `Copy` and flat), so a shard's byte counter is exactly
/// `node_bytes × residents` — which is what lets tests cold-recount the
/// incrementally maintained counters from [`PlanCache::export_nodes`].
const NODE_BYTES: usize = std::mem::size_of::<(PlanKey, Entry)>() + 1;

#[derive(Default)]
struct Shard {
    map: FxHashMap<PlanKey, Entry>,
    /// Accounted bytes of this shard's residents — maintained on insert
    /// and evict, never recomputed (DESIGN.md §13).
    bytes: usize,
}

impl Shard {
    /// Drops the least-recently-stamped entries until at most `keep`
    /// remain, returning how many were dropped. Stamps are unique
    /// (global counter), so the cutoff retain removes an exact count.
    fn evict_to(&mut self, keep: usize) -> u64 {
        let drop = self.map.len().saturating_sub(keep);
        if drop == 0 {
            return 0;
        }
        let mut stamps: Vec<u64> = self.map.values().map(|e| e.stamp).collect();
        let (_, cutoff, _) = stamps.select_nth_unstable(drop - 1);
        let cutoff = *cutoff;
        let before = self.map.len();
        self.map.retain(|_, e| e.stamp > cutoff);
        let dropped = before - self.map.len();
        self.bytes -= dropped * NODE_BYTES;
        dropped as u64
    }
}

/// A concurrent, size-bounded, persistable store of decision-tree nodes
/// for one collection.
pub struct PlanCache {
    collection_fp: Fingerprint,
    collection_len: u32,
    /// Node bound. Atomic so the memory governor can lower it on a live
    /// cache ([`Self::shrink_to`]) without stopping traffic.
    capacity: AtomicUsize,
    shards: Vec<Mutex<Shard>>,
    clock: AtomicU64,
    resident: AtomicU64,
    hits: AtomicU64,
    weighted_hits: AtomicU64,
    misses: AtomicU64,
    inserted: AtomicU64,
    evicted: AtomicU64,
}

/// Content identity of a collection: an order-independent 128-bit digest
/// binding every set's *content* fingerprint to its `SetId` (ids matter —
/// cached selections name entities whose membership is expressed through
/// those ids). Two collections match iff they hold the same sets under the
/// same ids, up to the usual fingerprint collision odds.
pub fn collection_identity(collection: &Collection) -> Fingerprint {
    collection
        .iter()
        .map(|(id, set)| {
            let mut h = FxHasher::default();
            h.write_u32(id.0);
            let content = set.fingerprint().as_u128();
            h.write_u64(content as u64);
            h.write_u64((content >> 64) as u64);
            Fingerprint::of(h.finish())
        })
        .sum()
}

impl PlanCache {
    /// An empty cache pinned to `collection`, bounded to about `capacity`
    /// resident nodes (clamped to ≥ the shard count so every shard can
    /// hold at least one entry).
    pub fn for_collection(collection: &Collection, capacity: usize) -> Self {
        Self::with_identity(
            collection_identity(collection),
            collection.len() as u32,
            capacity,
        )
    }

    /// An empty cache for a known collection identity (the deserialization
    /// path; prefer [`Self::for_collection`]).
    pub fn with_identity(collection_fp: Fingerprint, collection_len: u32, capacity: usize) -> Self {
        Self {
            collection_fp,
            collection_len,
            capacity: AtomicUsize::new(capacity.max(SHARDS)),
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            clock: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            weighted_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    /// The pinned collection's content identity.
    pub fn collection_fp(&self) -> Fingerprint {
        self.collection_fp
    }

    /// The pinned collection's set count.
    pub fn collection_len(&self) -> u32 {
        self.collection_len
    }

    /// The configured node bound.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// The deterministic byte cost accounted per resident node.
    pub fn node_bytes() -> usize {
        NODE_BYTES
    }

    /// Accounted resident bytes, summed from the per-shard counters
    /// (maintained on insert/evict — this read takes the shard locks but
    /// recomputes nothing).
    pub fn accounted_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan shard poisoned").bytes)
            .sum()
    }

    /// The per-shard byte counters, in shard order (diagnostics and the
    /// governance invariants suite).
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan shard poisoned").bytes)
            .collect()
    }

    /// Lowers the node bound to `new_cap` (clamped to ≥ the shard count;
    /// never raises it) and evicts least-recently-stamped entries per
    /// shard until every shard fits its even share of the new bound.
    /// Returns the number of nodes evicted. This is the degradation
    /// ladder's first rung: plan nodes are derived data — re-learnable
    /// from traffic — so they are the cheapest thing to give back.
    pub fn shrink_to(&self, new_cap: usize) -> u64 {
        let new_cap = new_cap.max(SHARDS);
        let current = self.capacity.load(Ordering::Relaxed);
        if new_cap < current {
            self.capacity.store(new_cap, Ordering::Relaxed);
        }
        let target = self.capacity.load(Ordering::Relaxed);
        let per_shard = target.div_ceil(SHARDS);
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock().expect("plan shard poisoned");
            dropped += shard.evict_to(per_shard);
            // A governor shrink must actually give spine memory back:
            // eviction alone retains the table allocation (fine for hot
            // quarter-evictions, pointless under a byte budget).
            shard.map.shrink_to_fit();
        }
        if dropped > 0 {
            self.resident.fetch_sub(dropped, Ordering::Relaxed);
            self.evicted.fetch_add(dropped, Ordering::Relaxed);
        }
        dropped
    }

    /// True when `collection` is (content- and id-wise) the collection this
    /// cache was built for — the attach-time validation gate.
    pub fn matches(&self, collection: &Collection) -> bool {
        self.collection_len == collection.len() as u32
            && self.collection_fp == collection_identity(collection)
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<Shard> {
        // The fingerprint is already uniformly mixed; fold both lanes so
        // shard choice differs from any map-internal bucketing.
        let raw = key.fp.as_u128();
        let h = (raw as u64) ^ (raw >> 64) as u64 ^ u64::from(key.len);
        &self.shards[(h % SHARDS as u64) as usize]
    }

    /// The cached node for `key`, stamping it most-recently-used. Counts a
    /// hit or miss.
    pub fn get(&self, key: &PlanKey) -> Option<PlanNode> {
        self.get_with_origin(key).map(|(node, _)| node)
    }

    /// [`Self::get`] plus whether the served node was loaded from a plan
    /// file or recorded online — byte-identical cache-state effects (one
    /// probe, same stamp, same hit/miss counters), so provenance-armed
    /// and disarmed runs leave indistinguishable caches.
    pub fn get_with_origin(&self, key: &PlanKey) -> Option<(PlanNode, PlanOrigin)> {
        let mut shard = self.shard(key).lock().expect("plan shard poisoned");
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if key.strategy.weight_fp != 0 {
                    self.weighted_hits.fetch_add(1, Ordering::Relaxed);
                }
                let origin = if entry.from_file {
                    PlanOrigin::File
                } else {
                    PlanOrigin::Online
                };
                Some((entry.node, origin))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Probes `key` without stamping or counting (serialization and
    /// precompute use this to avoid skewing the serving statistics).
    pub fn peek(&self, key: &PlanKey) -> Option<PlanNode> {
        let shard = self.shard(key).lock().expect("plan shard poisoned");
        shard.map.get(key).map(|e| e.node)
    }

    /// Inserts (or replaces) a node. When the cache is at capacity, the
    /// least-recently-stamped quarter of the *target* shard is dropped
    /// first — O(shard) once per quarter-shard of churn, and sustained
    /// churn visits every shard, so the bound holds globally (with a
    /// transient overshoot of at most one entry per momentarily empty
    /// shard, the same soft-admission trade the session table makes).
    pub fn insert(&self, key: PlanKey, node: PlanNode) {
        self.insert_with_origin(key, node, false);
    }

    /// [`Self::insert`] marking the node as plan-file-loaded — the warm
    /// boot / precompute-install path, so later hits can report
    /// [`PlanOrigin::File`].
    pub fn insert_loaded(&self, key: PlanKey, node: PlanNode) {
        self.insert_with_origin(key, node, true);
    }

    fn insert_with_origin(&self, key: PlanKey, node: PlanNode, from_file: bool) {
        // Under injected allocation pressure the node is simply not
        // cached — plans are derived data, and a cache that cannot grow
        // still serves what it holds (the session recomputes this one
        // selection).
        if faults::alloc_pressure("plan.insert") {
            return;
        }
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(&key).lock().expect("plan shard poisoned");
        if self.resident.load(Ordering::Relaxed) >= self.capacity() as u64
            && !shard.map.is_empty()
            && !shard.map.contains_key(&key)
        {
            // Drop the least-recently-stamped quarter (at least one
            // entry) — O(shard) once per quarter-shard of churn.
            let keep = shard.map.len() - (shard.map.len() / 4).max(1);
            let dropped = shard.evict_to(keep);
            self.resident.fetch_sub(dropped, Ordering::Relaxed);
            self.evicted.fetch_add(dropped, Ordering::Relaxed);
        }
        if shard
            .map
            .insert(
                key,
                Entry {
                    node,
                    stamp,
                    from_file,
                },
            )
            .is_none()
        {
            shard.bytes += NODE_BYTES;
            self.resident.fetch_add(1, Ordering::Relaxed);
            self.inserted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of resident nodes (O(1): maintained counter).
    pub fn len(&self) -> usize {
        self.resident.load(Ordering::Relaxed) as usize
    }

    /// True when no node is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters.
    pub fn stats(&self) -> PlanStats {
        PlanStats {
            nodes: self.len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            weighted_hits: self.weighted_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            inserted: self.inserted.load(Ordering::Relaxed),
            evicted: self.evicted.load(Ordering::Relaxed),
        }
    }

    /// Every resident `(key, node)` pair, deterministically ordered (by
    /// key) so persisted files are byte-stable for a given content.
    pub fn export_nodes(&self) -> Vec<(PlanKey, PlanNode)> {
        let mut out: Vec<(PlanKey, PlanNode)> = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.lock().expect("plan shard poisoned");
            out.extend(shard.map.iter().map(|(k, e)| (*k, e.node)));
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// The distinct strategy configurations with at least one resident
    /// node, sorted. Lets a loader check whether a persisted plan actually
    /// covers the strategy (and prior) it is about to serve — e.g. a
    /// weighted-key file attached to an unweighted strategy shares zero
    /// nodes and should be reported rather than silently serving nothing.
    pub fn strategy_keys(&self) -> Vec<StrategyKey> {
        let mut keys: Vec<StrategyKey> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("plan shard poisoned");
            keys.extend(shard.map.keys().map(|k| k.strategy));
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// True when at least one resident node belongs to `strategy`.
    pub fn covers_strategy(&self, strategy: StrategyKey) -> bool {
        self.shards.iter().any(|shard| {
            let shard = shard.lock().expect("plan shard poisoned");
            shard.map.keys().any(|k| k.strategy == strategy)
        })
    }
}

impl HeapSize for PlanCache {
    fn heap_bytes(&self) -> usize {
        // Resident entries from the maintained counters, plus the spare
        // table slots each shard still has allocated (a slot costs the
        // same whether occupied or not, so this sums to the spine at the
        // shard's current capacity without recounting residents).
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock().expect("plan shard poisoned");
                let spare = s.map.capacity().saturating_sub(s.map.len());
                s.bytes + map_spine_bytes::<PlanKey, Entry>(spare)
            })
            .sum()
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PlanCache({} nodes over {} sets)",
            self.len(),
            self.collection_len
        )
    }
}

/// One `(cache, strategy configuration)` pair adapted to the engine's
/// [`SelectionCache`] hook. Construction pins the process-local token of
/// the collection the sessions will run over; a view from any other
/// collection (programmer error) misses safely instead of cross-serving.
pub struct ScopedPlanCache {
    cache: Arc<PlanCache>,
    strategy: StrategyKey,
    collection_token: u64,
}

impl ScopedPlanCache {
    /// Scopes `cache` to one strategy configuration over `collection`.
    /// Returns `None` when the cache was built for a different collection
    /// (the caller decided to attach before validating).
    pub fn new(
        cache: Arc<PlanCache>,
        strategy: StrategyKey,
        collection: &Collection,
    ) -> Option<Self> {
        cache
            .matches(collection)
            .then(|| Self::new_prevalidated(cache, strategy, collection))
    }

    /// Like [`Self::new`], but trusts the caller that
    /// `cache.matches(collection)` already holds — the per-session path
    /// for caches obtained from the snapshot that owns the collection
    /// (validated once at lazy construction or plan-file install), where
    /// re-hashing every set's identity on each session create would put an
    /// O(collection) pass on the hot path. Debug builds still assert the
    /// match.
    pub fn new_prevalidated(
        cache: Arc<PlanCache>,
        strategy: StrategyKey,
        collection: &Collection,
    ) -> Self {
        debug_assert!(
            cache.matches(collection),
            "plan cache scoped to a collection it was not built for"
        );
        Self {
            cache,
            strategy,
            collection_token: collection.token(),
        }
    }

    /// The underlying shared cache.
    pub fn cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The scoped strategy configuration.
    pub fn strategy(&self) -> StrategyKey {
        self.strategy
    }

    /// The [`PlanKey`] of a view under this scope.
    pub fn key_of(&self, view: &SubCollection<'_>) -> PlanKey {
        PlanKey {
            strategy: self.strategy,
            fp: view.fingerprint(),
            len: view.len() as u32,
        }
    }
}

impl SelectionCache for ScopedPlanCache {
    fn lookup(&self, view: &SubCollection<'_>) -> Option<EntityId> {
        if view.collection().token() != self.collection_token {
            debug_assert!(false, "plan cache consulted for a foreign collection");
            return None;
        }
        self.cache.get(&self.key_of(view)).map(|node| node.entity)
    }

    fn lookup_with_origin(&self, view: &SubCollection<'_>) -> Option<(EntityId, PlanOrigin)> {
        if view.collection().token() != self.collection_token {
            debug_assert!(false, "plan cache consulted for a foreign collection");
            return None;
        }
        self.cache
            .get_with_origin(&self.key_of(view))
            .map(|(node, origin)| (node.entity, origin))
    }

    fn record(&self, view: &SubCollection<'_>, detail: &SelectionDetail) {
        if view.collection().token() != self.collection_token {
            debug_assert!(false, "plan cache recorded for a foreign collection");
            return;
        }
        let (n1, yes_fp) = view.membership_stat(detail.entity);
        debug_assert!(n1 >= 1 && (n1 as usize) < view.len(), "informative pick");
        let node = PlanNode {
            entity: detail.entity,
            bound: detail.bound,
            informative: detail.informative,
            evaluated: detail.evaluated,
            yes: (yes_fp, n1),
            no: (view.fingerprint() - yes_fp, view.len() as u32 - n1),
        };
        self.cache.insert(self.key_of(view), node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setdisc_core::cost::AvgDepth;
    use setdisc_core::lookahead::KLp;
    use setdisc_core::strategy::SelectionStrategy;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    fn key(strategy: StrategyKey, fp: Fingerprint, len: u32) -> PlanKey {
        PlanKey { strategy, fp, len }
    }

    const KLP2: StrategyKey = StrategyKey {
        family: 0,
        metric: 0,
        k: 2,
        beam: 0,
        weight_fp: 0,
    };

    fn node(entity: u32) -> PlanNode {
        PlanNode {
            entity: EntityId(entity),
            bound: 17,
            informative: 5,
            evaluated: 2,
            yes: (Fingerprint::of(1), 3),
            no: (Fingerprint::of(2), 4),
        }
    }

    #[test]
    fn get_insert_and_stats_round_trip() {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 1024);
        let k = key(KLP2, Fingerprint::of(99), 7);
        assert_eq!(cache.get(&k), None);
        cache.insert(k, node(3));
        assert_eq!(cache.get(&k), Some(node(3)));
        assert_eq!(cache.peek(&k), Some(node(3)));
        let stats = cache.stats();
        assert_eq!(
            (stats.nodes, stats.hits, stats.misses, stats.inserted),
            (1, 1, 1, 1)
        );
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        // A different strategy configuration is a different node.
        let other = StrategyKey { k: 3, ..KLP2 };
        assert_eq!(cache.peek(&key(other, Fingerprint::of(99), 7)), None);
    }

    #[test]
    fn weighted_keys_are_separate_and_counted() {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 1024);
        let weighted = StrategyKey {
            weight_fp: 0x1234_5678_9abc_def1,
            ..KLP2
        };
        cache.insert(key(KLP2, Fingerprint::of(7), 7), node(1));
        cache.insert(key(weighted, Fingerprint::of(7), 7), node(2));
        // Same view, different prior → different node; only the weighted
        // hit bumps the weighted counter.
        assert_eq!(cache.get(&key(KLP2, Fingerprint::of(7), 7)), Some(node(1)));
        assert_eq!(cache.stats().weighted_hits, 0);
        assert_eq!(
            cache.get(&key(weighted, Fingerprint::of(7), 7)),
            Some(node(2))
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.weighted_hits), (2, 1));
        // Strategy inventory distinguishes the two configurations.
        assert_eq!(cache.strategy_keys(), vec![KLP2, weighted]);
        assert!(cache.covers_strategy(weighted));
        assert!(!cache.covers_strategy(StrategyKey { k: 9, ..KLP2 }));
    }

    #[test]
    fn identity_binds_content_and_ids() {
        let a = figure1();
        let b = figure1();
        assert_eq!(collection_identity(&a), collection_identity(&b));
        let cache = PlanCache::for_collection(&a, 64);
        assert!(cache.matches(&b), "identical content matches");
        // Same sets, two swapped ids → different identity.
        let swapped = Collection::from_raw_sets(vec![
            vec![0, 3, 4],
            vec![0, 1, 2, 3],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap();
        assert!(!cache.matches(&swapped));
        let smaller = Collection::from_raw_sets(vec![vec![0, 1], vec![0, 2]]).unwrap();
        assert!(!cache.matches(&smaller));
    }

    #[test]
    fn eviction_bounds_size_and_keeps_recent() {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 64);
        for i in 0..10_000u64 {
            cache.insert(key(KLP2, Fingerprint::of(i), 7), node(1));
        }
        let stats = cache.stats();
        assert!(
            stats.nodes as usize <= cache.capacity() + 16,
            "{} far over cap {}",
            stats.nodes,
            cache.capacity()
        );
        assert!(stats.evicted > 0);
        // The most recent insert survives (it carries the newest stamp).
        assert!(cache.peek(&key(KLP2, Fingerprint::of(9_999), 7)).is_some());
    }

    #[test]
    fn recently_used_entries_survive_eviction_pressure() {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 64);
        let hot = key(KLP2, Fingerprint::of(0), 7);
        cache.insert(hot, node(42));
        for i in 1..5_000u64 {
            // Touch the hot key continuously while cold keys churn.
            assert_eq!(cache.get(&hot).map(|n| n.entity), Some(EntityId(42)));
            cache.insert(key(KLP2, Fingerprint::of(i), 7), node(1));
        }
        assert!(cache.peek(&hot).is_some(), "hot entry evicted");
    }

    #[test]
    fn scoped_cache_records_child_keys_consistent_with_partition() {
        let c = figure1();
        let cache = Arc::new(PlanCache::for_collection(&c, 1024));
        let scoped = ScopedPlanCache::new(Arc::clone(&cache), KLP2, &c).unwrap();
        let view = c.full_view();
        let mut klp = KLp::<AvgDepth>::new(2);
        let detail = klp
            .select_with_detail(&view, &setdisc_util::FxHashSet::default())
            .unwrap();
        SelectionCache::record(&scoped, &view, &detail);
        let stored = cache.peek(&scoped.key_of(&view)).unwrap();
        assert_eq!(stored.entity, detail.entity);
        assert_eq!(stored.bound, detail.bound);
        let (yes, no) = view.partition(detail.entity);
        assert_eq!(stored.yes, (yes.fingerprint(), yes.len() as u32));
        assert_eq!(stored.no, (no.fingerprint(), no.len() as u32));
        // And the lookup serves it back.
        assert_eq!(SelectionCache::lookup(&scoped, &view), Some(detail.entity));
    }

    #[test]
    fn scoped_cache_rejects_foreign_collections() {
        let c = figure1();
        let other = Collection::from_raw_sets(vec![vec![0, 1], vec![0, 2]]).unwrap();
        let cache = Arc::new(PlanCache::for_collection(&c, 64));
        assert!(ScopedPlanCache::new(cache, KLP2, &other).is_none());
    }

    #[test]
    fn byte_counters_track_churn_exactly() {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 64);
        for i in 0..5_000u64 {
            cache.insert(key(KLP2, Fingerprint::of(i), 7), node(1));
            // Re-inserting an existing key must not double-account.
            cache.insert(key(KLP2, Fingerprint::of(i), 7), node(2));
        }
        let recount = cache.export_nodes().len() * PlanCache::node_bytes();
        assert_eq!(cache.accounted_bytes(), recount, "after eviction churn");
        assert_eq!(
            cache.shard_bytes().iter().sum::<usize>(),
            cache.accounted_bytes()
        );
        use setdisc_util::mem::HeapSize as _;
        assert!(cache.heap_bytes() >= cache.accounted_bytes());
    }

    #[test]
    fn shrink_to_lowers_the_bound_and_evicts_cold_entries() {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 1024);
        for i in 0..512u64 {
            cache.insert(key(KLP2, Fingerprint::of(i), 7), node(1));
        }
        let hot = key(KLP2, Fingerprint::of(3), 7);
        assert!(cache.get(&hot).is_some(), "stamp the hot entry freshest");
        let dropped = cache.shrink_to(64);
        assert!(dropped > 0);
        assert_eq!(cache.capacity(), 64, "bound lowered");
        assert!(cache.len() <= 64, "residents fit the new bound");
        assert!(cache.peek(&hot).is_some(), "recently used survives");
        assert_eq!(
            cache.accounted_bytes(),
            cache.export_nodes().len() * PlanCache::node_bytes(),
            "counters stay exact through shrink"
        );
        // Never raises: asking for more capacity back is a no-op.
        cache.shrink_to(4096);
        assert_eq!(cache.capacity(), 64);
        // The floor is one entry per shard.
        cache.shrink_to(0);
        assert_eq!(cache.capacity(), 16);
        assert!(cache.len() <= 16);
    }

    #[test]
    fn export_is_sorted_and_complete() {
        let c = figure1();
        let cache = PlanCache::for_collection(&c, 1024);
        for i in [5u64, 1, 9, 3] {
            cache.insert(key(KLP2, Fingerprint::of(i), 7), node(i as u32));
        }
        let nodes = cache.export_nodes();
        assert_eq!(nodes.len(), 4);
        assert!(nodes.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");
    }
}
