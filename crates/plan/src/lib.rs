//! Cross-session question-plan cache.
//!
//! Every deterministic questioning policy over a fixed collection *is* a
//! binary decision tree (the paper's AD/H trees); Algorithm 2 merely walks
//! it online. Yet without this crate every session recomputes k-LP
//! selection from scratch — a million users discovering over the same
//! web-tables snapshot each pay the full lookahead cost for the identical
//! tree prefix. The [`cache::PlanCache`] materializes that tree *lazily* as
//! sessions traverse it and serves cached selections to every later
//! session on the same snapshot, turning the per-question cost of hot
//! answer paths into a hash probe.
//!
//! * [`cache`] — the concurrent store: a sharded map from
//!   [`cache::PlanKey`] = (strategy configuration, sub-collection
//!   `(fingerprint, len)`) to [`cache::PlanNode`] (selected entity, bound,
//!   prune statistics, yes/no child keys), with size-bounded LRU-ish
//!   eviction. [`cache::ScopedPlanCache`] adapts one `(cache, strategy)`
//!   pair to the sans-IO engine's
//!   [`setdisc_core::engine::SelectionCache`] hook.
//! * [`mod@file`] — a compact versioned binary serialization with an
//!   integrity header, so a service can persist its learned plan and boot
//!   warm.
//! * [`mod@precompute`] — a breadth-first driver that expands the decision
//!   tree to a node/depth budget ahead of traffic.
//!
//! # Why serving cached picks is lossless
//!
//! A selection with no excluded entities is a pure function of
//! (collection, strategy configuration, candidate sub-collection). The
//! cache keys on exactly that triple: the collection is pinned per cache
//! (identity checked at attach and load time), the strategy configuration
//! is a [`cache::StrategyKey`], and the sub-collection is identified by the
//! same 128-bit content `(fingerprint, len)` canonicalization the in-
//! strategy memos of `setdisc_core::lookahead` already rely on (collision
//! odds ≈ `p²/2¹²⁸`, see `setdisc_util::hash`). "Don't know" answers
//! *exclude* entities without changing the view identity, so the engine
//! hook bypasses the cache entirely whenever the exclusion set is
//! non-empty — excluded-path selections are neither served nor recorded.
//! Property tests pin that cache-on runs (cold, warm, interleaved across
//! sessions, and persisted-then-reloaded) select bit-identical entities,
//! bounds, and outcomes to cache-off runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod file;
pub mod precompute;

pub use cache::{PlanCache, PlanKey, PlanNode, PlanStats, ScopedPlanCache, StrategyKey};
pub use file::{load_plan, save_plan};
pub use precompute::{precompute, PrecomputeBudget, PrecomputeReport};
