//! Breadth-first plan expansion: warm a [`PlanCache`] ahead of traffic.
//!
//! The online cache fills in whatever order sessions happen to traverse
//! the tree; a service that wants its first users served from cache
//! instead expands the decision tree *breadth-first* from the full view —
//! the shallow prefix every session crosses — down to a node/depth budget,
//! then persists the result (`crate::file`) so later boots skip even the
//! expansion. Expansion goes through the same [`ScopedPlanCache::record`]
//! path online sessions use, so precomputed and traffic-learned nodes are
//! indistinguishable.

use crate::cache::{PlanCache, ScopedPlanCache, StrategyKey};
use setdisc_core::collection::Collection;
use setdisc_core::engine::SelectionCache as _;
use setdisc_core::entity::SetId;
use setdisc_core::strategy::SelectionStrategy;
use setdisc_core::subcollection::SubCollection;
use setdisc_util::{Fingerprint, FxHashSet};
use std::collections::VecDeque;
use std::sync::Arc;

/// Expansion limits.
#[derive(Copy, Clone, Debug)]
pub struct PrecomputeBudget {
    /// Stop after this many nodes have been selected (freshly computed or
    /// found already cached).
    pub max_nodes: usize,
    /// Do not descend past this depth (the root is depth 0).
    pub max_depth: u32,
}

impl Default for PrecomputeBudget {
    fn default() -> Self {
        Self {
            max_nodes: 4096,
            max_depth: 16,
        }
    }
}

/// What one expansion did.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PrecomputeReport {
    /// Selections computed and recorded by this run.
    pub computed: usize,
    /// Nodes found already cached (their children were still expanded).
    pub already_cached: usize,
    /// Deepest level reached (root = 0).
    pub depth_reached: u32,
    /// True when the budget cut expansion short (a deeper tree remains).
    pub truncated: bool,
}

/// Expands the decision tree of `strategy` over `collection` breadth-first
/// into `cache`, scoped under `key`. `strategy` must be the deterministic
/// configuration `key` names; the exclusion-free selection at every node is
/// recorded exactly as an online session would record it.
///
/// Returns what was done. Panics if `cache` was built for a different
/// collection (programmer error — the CLI validates first).
pub fn precompute(
    cache: &Arc<PlanCache>,
    key: StrategyKey,
    collection: &Collection,
    strategy: &mut dyn SelectionStrategy,
    budget: &PrecomputeBudget,
) -> PrecomputeReport {
    let scoped = ScopedPlanCache::new(Arc::clone(cache), key, collection)
        .expect("plan cache pinned to a different collection");
    let excluded = FxHashSet::default();
    let mut report = PrecomputeReport::default();
    // Distinct sub-collections can be reached along several answer paths
    // (the tree is really a DAG over views); visit each identity once.
    let mut seen: FxHashSet<(Fingerprint, u32)> = FxHashSet::default();
    let mut queue: VecDeque<(Vec<SetId>, u32)> = VecDeque::new();
    let root = collection.full_view();
    seen.insert((root.fingerprint(), root.len() as u32));
    queue.push_back((root.into_ids(), 0));

    while let Some((ids, depth)) = queue.pop_front() {
        if report.computed + report.already_cached >= budget.max_nodes {
            report.truncated = true;
            break;
        }
        let view = SubCollection::from_ids(collection, ids);
        report.depth_reached = report.depth_reached.max(depth);
        let entity = match cache.peek(&scoped.key_of(&view)) {
            Some(node) => {
                report.already_cached += 1;
                node.entity
            }
            None => {
                let Some(detail) = strategy.select_with_detail(&view, &excluded) else {
                    continue; // len < 2 children never enqueue; defensive
                };
                scoped.record(&view, &detail);
                report.computed += 1;
                detail.entity
            }
        };
        let (yes, no) = view.partition(entity);
        for child in [yes, no] {
            if child.len() < 2 {
                continue; // leaf — nothing to select
            }
            if depth >= budget.max_depth {
                // A real internal node exists below the depth budget.
                report.truncated = true;
            } else if seen.insert((child.fingerprint(), child.len() as u32)) {
                queue.push_back((child.into_ids(), depth + 1));
            }
        }
    }
    report.truncated |= !queue.is_empty();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::PlanKey;
    use setdisc_core::cost::AvgDepth;
    use setdisc_core::lookahead::KLp;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    const KEY: StrategyKey = StrategyKey {
        family: 0,
        metric: 0,
        k: 2,
        beam: 0,
        weight_fp: 0,
    };

    #[test]
    fn full_expansion_covers_every_internal_node() {
        let c = figure1();
        let cache = Arc::new(PlanCache::for_collection(&c, 4096));
        let mut klp = KLp::<AvgDepth>::new(2);
        let report = precompute(
            &cache,
            KEY,
            &c,
            &mut klp,
            &PrecomputeBudget {
                max_nodes: 10_000,
                max_depth: 64,
            },
        );
        assert!(!report.truncated, "{report:?}");
        assert_eq!(report.computed, cache.len());
        assert!(report.computed >= 6, "a 7-leaf tree has ≥ 6 internal nodes");
        // The root is cached with the entity k-LP(2, AD) picks there.
        let root_key = PlanKey {
            strategy: KEY,
            fp: c.full_view().fingerprint(),
            len: 7,
        };
        let root = cache.peek(&root_key).expect("root cached");
        let expected = KLp::<AvgDepth>::new(2).select(&c.full_view()).unwrap();
        assert_eq!(root.entity, expected);
        assert!(root.bound > 0);
        // Child keys resolve to cached nodes whenever the child is
        // non-trivial (internal): the tree links up.
        for (key, node) in cache.export_nodes() {
            for (fp, len) in [node.yes, node.no] {
                assert!(len >= 1, "empty child recorded");
                if len >= 2 {
                    let child = PlanKey {
                        strategy: key.strategy,
                        fp,
                        len,
                    };
                    assert!(cache.peek(&child).is_some(), "dangling child for {key:?}");
                }
            }
        }
        // Re-running is a no-op that reports the existing coverage.
        let again = precompute(
            &cache,
            KEY,
            &c,
            &mut KLp::<AvgDepth>::new(2),
            &PrecomputeBudget::default(),
        );
        assert_eq!(again.computed, 0);
        assert_eq!(again.already_cached, report.computed);
    }

    #[test]
    fn budgets_truncate_depth_and_nodes() {
        let c = figure1();
        let cache = Arc::new(PlanCache::for_collection(&c, 4096));
        let report = precompute(
            &cache,
            KEY,
            &c,
            &mut KLp::<AvgDepth>::new(2),
            &PrecomputeBudget {
                max_nodes: 10_000,
                max_depth: 0,
            },
        );
        assert_eq!(report.computed, 1, "depth 0 = root only");
        assert!(report.truncated);

        let cache2 = Arc::new(PlanCache::for_collection(&c, 4096));
        let report = precompute(
            &cache2,
            KEY,
            &c,
            &mut KLp::<AvgDepth>::new(2),
            &PrecomputeBudget {
                max_nodes: 2,
                max_depth: 64,
            },
        );
        assert_eq!(report.computed, 2);
        assert!(report.truncated);

        // A depth budget that exactly covers the deepest internal level is
        // NOT truncation: everything below it is leaves.
        let full = Arc::new(PlanCache::for_collection(&c, 4096));
        let complete = precompute(
            &full,
            KEY,
            &c,
            &mut KLp::<AvgDepth>::new(2),
            &PrecomputeBudget {
                max_nodes: 10_000,
                max_depth: 64,
            },
        );
        assert!(!complete.truncated);
        let exact = Arc::new(PlanCache::for_collection(&c, 4096));
        let report = precompute(
            &exact,
            KEY,
            &c,
            &mut KLp::<AvgDepth>::new(2),
            &PrecomputeBudget {
                max_nodes: 10_000,
                max_depth: complete.depth_reached,
            },
        );
        assert!(!report.truncated, "{report:?}");
        assert_eq!(report.computed, complete.computed);
    }
}
