//! The §6 weighted-AD losslessness contracts, property-tested.
//!
//! Two pins: (1) a **uniform** prior is the unweighted problem — weighted
//! k-LP with all-equal weights must be bit-identical to the unweighted
//! strategy in every observable (selected entity, recorded bound, prune
//! counters, session outcome) across strategy families, depths, and beam
//! widths; (2) a **skewed** prior keyed into the shared plan cache stays
//! lossless — warm weighted runs match cache-off weighted runs, weighted
//! hits are tracked separately, and the weighted partition never
//! cross-serves the unweighted one.

use proptest::prelude::*;
use setdisc_core::collection::Collection;
use setdisc_core::cost::AvgDepth;
use setdisc_core::discovery::{Answer, Outcome};
use setdisc_core::engine::{Engine, SelectionCache};
use setdisc_core::entity::{EntityId, SetId};
use setdisc_core::lookahead::{KLp, NodeStats};
use setdisc_core::strategy::{MostEven, SelectionStrategy, WeightedMostEven};
use setdisc_core::weights::WeightTable;
use setdisc_plan::{PlanCache, ScopedPlanCache, StrategyKey};
use std::sync::Arc;

type DynStrategy = Box<dyn SelectionStrategy>;

/// Strategy configurations spanning the weighted-buildable families:
/// k-LP / k-LPLE / k-LPLVE over AvgDepth at several depths and beam
/// widths (configs 0–6, all `KLp<AvgDepth>` shapes), plus the weighted
/// most-even baseline (config 7).
const CONFIGS: usize = 8;
const KLP_CONFIGS: usize = 7;

/// The k-LP shape for `cfg < KLP_CONFIGS`, prune counters on.
fn make_klp(cfg: usize) -> KLp<AvgDepth> {
    match cfg {
        0 => KLp::<AvgDepth>::new(1),
        1 => KLp::<AvgDepth>::new(2),
        2 => KLp::<AvgDepth>::new(3),
        3 => KLp::<AvgDepth>::limited(2, 4),
        4 => KLp::<AvgDepth>::limited(3, 3),
        5 => KLp::<AvgDepth>::limited_variable(2, 4),
        6 => KLp::<AvgDepth>::limited_variable(3, 3),
        other => panic!("no k-LP config {other}"),
    }
    .record_stats(true)
}

/// The unweighted strategy for `cfg`, boxed.
fn make_unweighted(cfg: usize) -> DynStrategy {
    if cfg < KLP_CONFIGS {
        Box::new(make_klp(cfg))
    } else {
        Box::new(MostEven::new())
    }
}

/// The same configuration carrying a prior, boxed.
fn make_weighted(cfg: usize, w: &Arc<WeightTable>) -> DynStrategy {
    if cfg < KLP_CONFIGS {
        Box::new(make_klp(cfg).with_prior(Arc::clone(w)))
    } else {
        Box::new(WeightedMostEven::new(Arc::clone(w)))
    }
}

/// The plan key `cfg` files under; `weight_fp = 0` is the unweighted
/// partition, a table's (odd, nonzero) fingerprint the weighted one.
fn strategy_key(cfg: usize, weight_fp: u64) -> StrategyKey {
    let (family, k, beam) = match cfg {
        0 => (0, 1, 0),
        1 => (0, 2, 0),
        2 => (0, 3, 0),
        3 => (1, 2, 4),
        4 => (1, 3, 3),
        5 => (2, 2, 4),
        6 => (2, 3, 3),
        7 => (3, 0, 0),
        other => panic!("no config {other}"),
    };
    StrategyKey {
        family,
        metric: 0,
        k,
        beam,
        weight_fp,
    }
}

/// Drives one truthful cache-off session on a concrete k-LP, returning
/// the asked sequence, the outcome, and the per-node prune counters.
fn run_klp(
    c: &Collection,
    strategy: KLp<AvgDepth>,
    target: SetId,
) -> (Vec<EntityId>, Outcome, Vec<NodeStats>) {
    let mut engine = Engine::new(c, &[], strategy);
    let target_set = c.set(target).clone();
    let mut asked = Vec::new();
    while let Some(e) = engine.next_question() {
        let answer = if target_set.contains(e) {
            Answer::Yes
        } else {
            Answer::No
        };
        asked.push(e);
        engine.answer(e, answer);
    }
    let stats = engine.strategy().stats().nodes.clone();
    (asked, engine.outcome(), stats)
}

/// Drives one truthful session on a boxed strategy, optionally through a
/// scoped plan cache. (Prune counters are not read here: a warm cache
/// serves selections without invoking the strategy at all, so they are
/// only meaningful on cache-off runs.)
fn run_any(
    c: &Collection,
    strategy: DynStrategy,
    cache: Option<Arc<dyn SelectionCache>>,
    target: SetId,
) -> (Vec<EntityId>, Outcome) {
    let mut engine = Engine::new(c, &[], strategy);
    engine.set_selection_cache(cache);
    let target_set = c.set(target).clone();
    let mut asked = Vec::new();
    while let Some(e) = engine.next_question() {
        let answer = if target_set.contains(e) {
            Answer::Yes
        } else {
            Answer::No
        };
        asked.push(e);
        engine.answer(e, answer);
    }
    (asked, engine.outcome())
}

fn collection_from_sets(raw: Vec<std::collections::BTreeSet<u32>>) -> Option<Collection> {
    let c = Collection::from_raw_sets(raw.into_iter().map(|s| s.into_iter().collect()).collect())
        .ok()?;
    (c.len() >= 2).then_some(c)
}

fn targets_of(c: &Collection) -> Vec<SetId> {
    (0..c.len().min(8) as u32).map(SetId).collect()
}

fn scoped(cache: &Arc<PlanCache>, key: StrategyKey, c: &Collection) -> Arc<dyn SelectionCache> {
    Arc::new(ScopedPlanCache::new(Arc::clone(cache), key, c).expect("cache matches collection"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// §6 with all-equal weights IS the unweighted problem: every selected
    /// entity, prune counter, and outcome matches bit for bit. The uniform
    /// table is deliberately built from a non-1 constant so normalization
    /// (not a degenerate all-ones table) is on the tested path.
    #[test]
    fn uniform_prior_is_bit_identical_to_unweighted(
        raw in prop::collection::vec(
            prop::collection::btree_set(0u32..24, 1usize..7),
            3usize..18,
        ),
        cfg in 0usize..CONFIGS,
        unit in 1u64..5,
    ) {
        let Some(c) = collection_from_sets(raw) else {
            return Ok(()); // degenerate after dedup — nothing to discover
        };
        let uniform = Arc::new(
            WeightTable::new(&vec![unit; c.len()]).expect("positive weights"),
        );
        prop_assert!(uniform.is_uniform());
        for t in targets_of(&c) {
            if cfg < KLP_CONFIGS {
                let plain = run_klp(&c, make_klp(cfg), t);
                let weighted =
                    run_klp(&c, make_klp(cfg).with_prior(Arc::clone(&uniform)), t);
                prop_assert_eq!(
                    &plain, &weighted,
                    "uniform-prior k-LP run diverged for cfg {} target {}", cfg, t
                );
            } else {
                let plain = run_any(&c, make_unweighted(cfg), None, t);
                let weighted = run_any(&c, make_weighted(cfg, &uniform), None, t);
                prop_assert_eq!(
                    &plain, &weighted,
                    "uniform-prior run diverged for cfg {} target {}", cfg, t
                );
            }
        }
    }

    /// A skewed prior through the shared plan cache: warm cached runs are
    /// bit-identical to cache-off runs, the weighted partition counts its
    /// own hits, and it never serves (or starves) the unweighted key.
    #[test]
    fn weighted_plan_cache_warm_runs_match_cache_off(
        raw in prop::collection::vec(
            prop::collection::btree_set(0u32..20, 1usize..6),
            3usize..14,
        ),
        cfg in 0usize..CONFIGS,
        weight_seed in prop::collection::vec(1u64..9, 1usize..14),
    ) {
        let Some(c) = collection_from_sets(raw) else {
            return Ok(());
        };
        let weights = Arc::new(
            WeightTable::new(
                &(0..c.len())
                    .map(|i| weight_seed[i % weight_seed.len()])
                    .collect::<Vec<_>>(),
            )
            .expect("positive weights"),
        );
        let targets = targets_of(&c);
        let wkey = strategy_key(cfg, weights.fp());
        let ukey = strategy_key(cfg, 0);
        let cache = Arc::new(PlanCache::for_collection(&c, 1 << 16));

        // Cache-off references, weighted and unweighted.
        let w_reference: Vec<_> = targets
            .iter()
            .map(|&t| run_any(&c, make_weighted(cfg, &weights), None, t))
            .collect();
        let u_reference: Vec<_> = targets
            .iter()
            .map(|&t| run_any(&c, make_unweighted(cfg), None, t))
            .collect();

        // Cold pass fills both partitions; the second pass serves warm.
        for pass in 0..2 {
            for (i, &t) in targets.iter().enumerate() {
                let got = run_any(
                    &c,
                    make_weighted(cfg, &weights),
                    Some(scoped(&cache, wkey, &c)),
                    t,
                );
                prop_assert_eq!(
                    &got, &w_reference[i],
                    "weighted pass {} target {} diverged", pass, t
                );
                let got = run_any(
                    &c,
                    make_unweighted(cfg),
                    Some(scoped(&cache, ukey, &c)),
                    t,
                );
                prop_assert_eq!(
                    &got, &u_reference[i],
                    "unweighted pass {} target {} diverged", pass, t
                );
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "warm passes produced no hits: {:?}", stats);
        if !weights.is_uniform() {
            prop_assert!(
                stats.weighted_hits > 0,
                "weighted partition went uncounted: {:?}", stats
            );
            prop_assert!(
                stats.weighted_hits < stats.hits,
                "unweighted hits vanished: {:?}", stats
            );
        }
    }
}

/// Deterministic end-to-end pass on Figure 1: every weighted config stays
/// truthful-correct under a heavily skewed prior.
#[test]
fn figure1_weighted_configs_resolve_truthfully() {
    let c = Collection::from_raw_sets(vec![
        vec![0, 1, 2, 3],
        vec![0, 3, 4],
        vec![0, 1, 2, 3, 5],
        vec![0, 1, 2, 6, 7],
        vec![0, 1, 7, 8],
        vec![0, 1, 9, 10],
        vec![0, 1, 6],
    ])
    .unwrap();
    let weights = Arc::new(WeightTable::new(&[1, 50, 1, 1, 1, 1, 1]).unwrap());
    for cfg in 0..CONFIGS {
        for t in 0..7u32 {
            let t = SetId(t);
            let (_, outcome) = run_any(&c, make_weighted(cfg, &weights), None, t);
            assert_eq!(
                outcome.discovered(),
                Some(t),
                "cfg {cfg} target {t} must resolve truthfully under a prior"
            );
        }
    }
}
