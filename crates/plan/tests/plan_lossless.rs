//! The plan cache's losslessness contract, property-tested: with the cache
//! enabled — cold, warm, shared across interleaved sessions, and persisted
//! then reloaded — every selected entity, recorded bound, and session
//! outcome is bit-identical to cache-off runs, across strategy families,
//! lookahead depths, and beam widths. "Don't know" paths are included: the
//! engine must bypass the cache the moment an entity is excluded.

use proptest::prelude::*;
use setdisc_core::collection::Collection;
use setdisc_core::cost::{AvgDepth, Height};
use setdisc_core::discovery::{Answer, Outcome};
use setdisc_core::engine::{Engine, SelectionCache};
use setdisc_core::entity::{EntityId, SetId};
use setdisc_core::lookahead::KLp;
use setdisc_core::strategy::{InfoGain, MostEven, SelectionStrategy};
use setdisc_core::subcollection::SubCollection;
use setdisc_plan::{
    precompute, PlanCache, PlanKey, PrecomputeBudget, ScopedPlanCache, StrategyKey,
};
use std::sync::Arc;

type BoxedStrategy = Box<dyn SelectionStrategy>;

/// The strategy configurations under test, spanning families, metrics,
/// depths, and beam widths. Keys only need to be distinct per config.
const CONFIGS: usize = 8;

fn make_strategy(cfg: usize) -> (StrategyKey, BoxedStrategy) {
    let key = |family, metric, k, beam| StrategyKey {
        family,
        metric,
        k,
        beam,
        weight_fp: 0,
    };
    match cfg {
        0 => (key(0, 0, 1, 0), Box::new(KLp::<AvgDepth>::new(1))),
        1 => (key(0, 0, 2, 0), Box::new(KLp::<AvgDepth>::new(2))),
        2 => (key(0, 1, 2, 0), Box::new(KLp::<Height>::new(2))),
        3 => (key(0, 0, 3, 0), Box::new(KLp::<AvgDepth>::new(3))),
        4 => (key(1, 0, 2, 4), Box::new(KLp::<AvgDepth>::limited(2, 4))),
        5 => (
            key(2, 1, 3, 3),
            Box::new(KLp::<Height>::limited_variable(3, 3)),
        ),
        6 => (key(3, 0, 0, 0), Box::new(MostEven::new())),
        7 => (key(4, 0, 0, 0), Box::new(InfoGain::new())),
        other => panic!("no config {other}"),
    }
}

fn scoped(cache: &Arc<PlanCache>, key: StrategyKey, c: &Collection) -> Arc<dyn SelectionCache> {
    Arc::new(ScopedPlanCache::new(Arc::clone(cache), key, c).expect("cache matches collection"))
}

/// Drives one full session; answers are truthful membership in `target`
/// except the listed question indices, which answer Unknown.
fn run_session(
    c: &Collection,
    strategy: BoxedStrategy,
    cache: Option<Arc<dyn SelectionCache>>,
    target: SetId,
    unknown_at: &[usize],
) -> (Vec<EntityId>, Outcome) {
    let mut engine = Engine::new(c, &[], strategy);
    engine.set_selection_cache(cache);
    let target_set = c.set(target).clone();
    let mut asked = Vec::new();
    while let Some(e) = engine.next_question() {
        let answer = if unknown_at.contains(&asked.len()) {
            Answer::Unknown
        } else if target_set.contains(e) {
            Answer::Yes
        } else {
            Answer::No
        };
        asked.push(e);
        engine.answer(e, answer);
    }
    (asked, engine.outcome())
}

/// Runs one session per target *interleaved* (round-robin, one question
/// each), all sharing `cache`. Returns per-target transcripts.
fn run_interleaved(
    c: &Collection,
    cfg: usize,
    cache: &Arc<PlanCache>,
    targets: &[SetId],
    unknown_at: &[usize],
) -> Vec<(Vec<EntityId>, Outcome)> {
    let mut engines: Vec<(SetId, Engine<&Collection, BoxedStrategy>, Vec<EntityId>)> = targets
        .iter()
        .map(|&t| {
            let (key, strategy) = make_strategy(cfg);
            let mut e = Engine::new(c, &[], strategy);
            e.set_selection_cache(Some(scoped(cache, key, c)));
            (t, e, Vec::new())
        })
        .collect();
    loop {
        let mut progressed = false;
        for (target, engine, asked) in &mut engines {
            let Some(e) = engine.next_question() else {
                continue;
            };
            progressed = true;
            let answer = if unknown_at.contains(&asked.len()) {
                Answer::Unknown
            } else if c.set(*target).contains(e) {
                Answer::Yes
            } else {
                Answer::No
            };
            asked.push(e);
            engine.answer(e, answer);
        }
        if !progressed {
            break;
        }
    }
    engines
        .into_iter()
        .map(|(_, e, asked)| (asked, e.outcome()))
        .collect()
}

/// Walks the cached decision tree from the root, asserting every cached
/// node agrees with a fresh (cache-off) strategy on both the selected
/// entity and the recorded bound, and that the stored child keys match the
/// real partition.
fn verify_cached_tree(c: &Collection, cache: &PlanCache, cfg: usize) -> usize {
    let (key, mut fresh) = make_strategy(cfg);
    let excluded = setdisc_util::FxHashSet::default();
    let mut verified = 0;
    let mut stack = vec![c.full_view()];
    while let Some(view) = stack.pop() {
        if view.len() < 2 {
            continue;
        }
        let node_key = PlanKey {
            strategy: key,
            fp: view.fingerprint(),
            len: view.len() as u32,
        };
        let Some(node) = cache.peek(&node_key) else {
            continue; // untraversed by any session — nothing recorded
        };
        let detail = fresh
            .select_with_detail(&view, &excluded)
            .expect("≥2 distinct sets always yield an informative entity");
        assert_eq!(node.entity, detail.entity, "entity drift at {node_key:?}");
        assert_eq!(node.bound, detail.bound, "bound drift at {node_key:?}");
        let (yes, no) = view.partition(node.entity);
        assert_eq!(node.yes, (yes.fingerprint(), yes.len() as u32));
        assert_eq!(node.no, (no.fingerprint(), no.len() as u32));
        verified += 1;
        stack.push(yes);
        stack.push(no);
    }
    verified
}

fn collection_from_sets(sets: Vec<Vec<u32>>) -> Option<Collection> {
    let c = Collection::from_raw_sets(sets).ok()?;
    (c.len() >= 2).then_some(c)
}

fn targets_of(c: &Collection) -> Vec<SetId> {
    (0..c.len().min(10) as u32).map(SetId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cold-fill, warm reuse, interleaved sharing, and don't-know paths
    /// all reproduce the cache-off transcripts exactly.
    #[test]
    fn cache_on_sessions_are_bit_identical_to_cache_off(
        raw in prop::collection::vec(
            prop::collection::btree_set(0u32..24, 1usize..7),
            3usize..18,
        ),
        cfg in 0usize..CONFIGS,
        unknown_target in 0usize..4,
    ) {
        let Some(c) = collection_from_sets(
            raw.into_iter().map(|s| s.into_iter().collect()).collect(),
        ) else {
            return Ok(()); // degenerate after dedup — nothing to discover
        };
        let targets = targets_of(&c);
        let cache = Arc::new(PlanCache::for_collection(&c, 1 << 16));

        // Reference: cache-off transcripts, one per target.
        let reference: Vec<_> = targets
            .iter()
            .map(|&t| run_session(&c, make_strategy(cfg).1, None, t, &[]))
            .collect();

        // Cold pass fills the cache; a second pass serves warm.
        for pass in 0..2 {
            for (i, &t) in targets.iter().enumerate() {
                let (key, strategy) = make_strategy(cfg);
                let got = run_session(
                    &c,
                    strategy,
                    Some(scoped(&cache, key, &c)),
                    t,
                    &[],
                );
                prop_assert_eq!(
                    &got, &reference[i],
                    "pass {} target {} diverged", pass, t
                );
            }
        }
        let stats = cache.stats();
        prop_assert!(stats.hits > 0, "warm pass produced no hits: {:?}", stats);

        // Interleaved sessions sharing the same cache.
        let interleaved = run_interleaved(&c, cfg, &cache, &targets, &[]);
        prop_assert_eq!(&interleaved, &reference, "interleaved divergence");

        // Don't-know paths: cache-on must equal cache-off with the same
        // Unknown injections (the cache is bypassed after the exclusion).
        let t = targets[unknown_target % targets.len()];
        for unknown_at in [&[0usize][..], &[0, 2][..]] {
            let plain = run_session(&c, make_strategy(cfg).1, None, t, unknown_at);
            let (key, strategy) = make_strategy(cfg);
            let cached = run_session(
                &c,
                strategy,
                Some(scoped(&cache, key, &c)),
                t,
                unknown_at,
            );
            prop_assert_eq!(&cached, &plain, "unknown path diverged at {:?}", unknown_at);
        }

        // Every node the sessions recorded agrees with a fresh strategy on
        // entity AND bound, and its child keys match the real partition.
        let verified = verify_cached_tree(&c, &cache, cfg);
        prop_assert!(verified > 0, "no cached node reachable from the root");
    }

    /// Persisted-then-reloaded caches serve the same transcripts, and
    /// precomputed caches agree with traffic-learned ones node for node.
    #[test]
    fn persisted_and_precomputed_caches_stay_lossless(
        raw in prop::collection::vec(
            prop::collection::btree_set(0u32..20, 1usize..6),
            3usize..14,
        ),
        cfg in 0usize..CONFIGS,
    ) {
        let Some(c) = collection_from_sets(
            raw.into_iter().map(|s| s.into_iter().collect()).collect(),
        ) else {
            return Ok(());
        };
        let targets = targets_of(&c);
        let reference: Vec<_> = targets
            .iter()
            .map(|&t| run_session(&c, make_strategy(cfg).1, None, t, &[]))
            .collect();

        // Precompute the full tree (budget far above any case size).
        let cache = Arc::new(PlanCache::for_collection(&c, 1 << 16));
        let (key, mut strategy) = make_strategy(cfg);
        let report = precompute(
            &cache,
            key,
            &c,
            strategy.as_mut(),
            &PrecomputeBudget { max_nodes: 1 << 14, max_depth: 64 },
        );
        prop_assert!(!report.truncated);
        prop_assert!(report.computed > 0);

        // Save, reload, and serve every target from the reloaded cache.
        let path = std::env::temp_dir().join(format!(
            "setdisc_plan_prop_{}_{}.plan",
            std::process::id(),
            cfg,
        ));
        setdisc_plan::save_plan(&cache, &path).unwrap();
        let reloaded = Arc::new(setdisc_plan::load_plan(&path, 0).unwrap());
        std::fs::remove_file(&path).ok();
        prop_assert!(reloaded.matches(&c));
        prop_assert_eq!(reloaded.export_nodes(), cache.export_nodes());
        let inserted_by_load = reloaded.stats().inserted;

        for (i, &t) in targets.iter().enumerate() {
            let (key, strategy) = make_strategy(cfg);
            let got = run_session(
                &c,
                strategy,
                Some(scoped(&reloaded, key, &c)),
                t,
                &[],
            );
            prop_assert_eq!(&got, &reference[i], "reloaded cache diverged at {}", t);
        }
        // A fully precomputed plan serves resolution-bound sessions without
        // a single selection miss.
        let stats = reloaded.stats();
        prop_assert!(stats.hits > 0);
        prop_assert_eq!(
            stats.inserted, inserted_by_load,
            "warm boot recomputed a node"
        );
        verify_cached_tree(&c, &reloaded, cfg);
    }
}

/// One deterministic end-to-end pass over every configuration on the
/// paper's Figure-1 collection (fast, runs even if the property tests are
/// filtered out).
#[test]
fn figure1_all_configs_lossless() {
    let c = Collection::from_raw_sets(vec![
        vec![0, 1, 2, 3],
        vec![0, 3, 4],
        vec![0, 1, 2, 3, 5],
        vec![0, 1, 2, 6, 7],
        vec![0, 1, 7, 8],
        vec![0, 1, 9, 10],
        vec![0, 1, 6],
    ])
    .unwrap();
    for cfg in 0..CONFIGS {
        let cache = Arc::new(PlanCache::for_collection(&c, 1 << 12));
        for t in 0..7u32 {
            let t = SetId(t);
            let plain = run_session(&c, make_strategy(cfg).1, None, t, &[]);
            let (key, strategy) = make_strategy(cfg);
            let cached = run_session(&c, strategy, Some(scoped(&cache, key, &c)), t, &[]);
            assert_eq!(plain, cached, "cfg {cfg} target {t}");
            assert_eq!(
                plain.1.discovered(),
                Some(t),
                "truthful session must resolve"
            );
        }
        assert!(verify_cached_tree(&c, &cache, cfg) > 0);
    }
}

/// Sub-collections that collide in *length* but not content must never
/// cross-serve — the (fingerprint, len) key carries the whole identity.
#[test]
fn same_length_views_never_cross_serve() {
    let c = Collection::from_raw_sets(vec![
        vec![0, 1],
        vec![0, 2],
        vec![3, 4],
        vec![3, 5],
        vec![6, 7],
        vec![6, 8],
    ])
    .unwrap();
    let cache = Arc::new(PlanCache::for_collection(&c, 1 << 10));
    let key = StrategyKey {
        family: 3,
        metric: 0,
        k: 0,
        beam: 0,
        weight_fp: 0,
    };
    let scoped = ScopedPlanCache::new(Arc::clone(&cache), key, &c).unwrap();
    let views: Vec<SubCollection<'_>> = [[0u32, 1], [2, 3], [4, 5]]
        .iter()
        .map(|ids| SubCollection::from_ids(&c, ids.iter().copied().map(SetId).collect()))
        .collect();
    let mut strategy = MostEven::new();
    let excluded = setdisc_util::FxHashSet::default();
    for v in &views {
        let detail = strategy.select_with_detail(v, &excluded).unwrap();
        SelectionCache::record(&scoped, v, &detail);
    }
    for v in &views {
        let expected = MostEven::new().select(v);
        assert_eq!(SelectionCache::lookup(&scoped, v), expected);
    }
}
