//! Governance invariants of the plan cache (DESIGN.md §13): the
//! per-shard byte counters maintained incrementally on insert/evict must
//! always equal a cold recount of [`PlanCache::export_nodes`] — through
//! insert churn, quarter-shard eviction at capacity, and live
//! [`PlanCache::shrink_to`] calls — and injected allocation pressure at
//! the `plan.insert` site must shed the node without corrupting the
//! counters.

use proptest::prelude::*;
use setdisc_core::collection::Collection;
use setdisc_core::entity::EntityId;
use setdisc_plan::{PlanCache, PlanKey, PlanNode, StrategyKey};
use setdisc_util::{faults, Fingerprint};
use std::sync::Mutex;

/// Fault state is process-global: every test in this binary serializes
/// here so an armed `plan.insert` rule never leaks into a neighbor.
static FAULTS: Mutex<()> = Mutex::new(());

const KLP2: StrategyKey = StrategyKey {
    family: 0,
    metric: 0,
    k: 2,
    beam: 0,
    weight_fp: 0,
};

fn key_of(i: u64) -> PlanKey {
    PlanKey {
        strategy: KLP2,
        fp: Fingerprint::of(i),
        len: 7,
    }
}

fn node_of(i: u64) -> PlanNode {
    PlanNode {
        entity: EntityId((i % 11) as u32),
        bound: 17,
        informative: 5,
        evaluated: 2,
        yes: (Fingerprint::of(1), 3),
        no: (Fingerprint::of(2), 4),
    }
}

fn tiny() -> Collection {
    Collection::from_raw_sets(vec![vec![0, 1], vec![0, 2], vec![1, 2]]).unwrap()
}

/// Cold recount: what the counters must equal, derived only from the
/// exported resident nodes and the fixed per-node cost.
fn recount(cache: &PlanCache) -> usize {
    cache.export_nodes().len() * PlanCache::node_bytes()
}

proptest! {
    #[test]
    fn shard_byte_counters_equal_a_cold_recount(
        raw_ops in prop::collection::vec(0u64..1_000_000, 1..500usize),
        cap in 16usize..200,
    ) {
        let _g = FAULTS.lock().unwrap_or_else(|p| p.into_inner());
        faults::clear();
        let c = tiny();
        let cache = PlanCache::for_collection(&c, cap);
        for raw in raw_ops {
            let x = raw / 16;
            match raw % 16 {
                // Mostly inserts (with key reuse, so replaces happen).
                0..=10 => cache.insert(key_of(x % 300), node_of(x)),
                // Stamp refreshes interleave with churn.
                11..=13 => { let _ = cache.get(&key_of(x % 300)); }
                // Occasional governor shrink, sometimes below the floor.
                _ => { let _ = cache.shrink_to(x as usize % 256); }
            }
            }
        let cold = recount(&cache);
        prop_assert_eq!(cache.accounted_bytes(), cold);
        prop_assert_eq!(cache.shard_bytes().iter().sum::<usize>(), cold);
        prop_assert!(
            cache.len() <= cache.capacity() + 16,
            "resident {} vs bound {}",
            cache.len(),
            cache.capacity()
        );
    }
}

#[test]
fn alloc_pressure_at_plan_insert_sheds_the_node() {
    let _g = FAULTS.lock().unwrap_or_else(|p| p.into_inner());
    faults::install_spec("seed=1,plan.insert=alloc:1").unwrap();
    let c = tiny();
    let cache = PlanCache::for_collection(&c, 64);
    cache.insert(key_of(1), node_of(1));
    faults::clear();
    assert!(cache.is_empty(), "pressured insert is dropped");
    assert_eq!(cache.accounted_bytes(), 0);
    assert_eq!(cache.stats().inserted, 0);
    cache.insert(key_of(1), node_of(1));
    assert_eq!(cache.len(), 1, "pressure lifted, inserts resume");
    assert_eq!(cache.accounted_bytes(), recount(&cache));
}

#[test]
fn delay_and_limit_rules_at_plan_insert_still_insert() {
    let _g = FAULTS.lock().unwrap_or_else(|p| p.into_inner());
    // A delay fault slows the insert but must not drop it; a limited
    // alloc rule stops shedding once its budget is spent.
    faults::install_spec("seed=2,plan.insert=alloc:1:0:2").unwrap();
    let c = tiny();
    let cache = PlanCache::for_collection(&c, 64);
    for i in 0..5 {
        cache.insert(key_of(i), node_of(i));
    }
    assert_eq!(faults::fired("plan.insert"), 2);
    assert_eq!(cache.len(), 3, "only the limited firings shed");
    faults::clear();
    assert_eq!(cache.accounted_bytes(), recount(&cache));
}
