//! Exact integer math for the cost lower bounds of the paper.
//!
//! The average-depth lower bound `LB_AD0(C) = ⌈|C|·log₂|C|⌉ / |C|` (eq. 1) is
//! fractional, but the lookahead algorithms only ever compare *scaled* costs
//! (total leaf depth), so the quantity that matters is the integer
//! `⌈n·log₂ n⌉`. Computing it through `f64::log2` risks a wrong ceiling right
//! at representation boundaries, and a single off-by-one there would make the
//! pruning rule (Lemma 4.4) unsound. We therefore compute `log₂ n` in 64-bit
//! fixed point with the classic square-and-normalize recurrence, which keeps
//! the absolute error far below the distance of `n·log₂ n` from the nearest
//! integer for every non-power-of-two `n ≤ 2³²`.

/// `⌈log₂ n⌉` for `n ≥ 1`. This is the height lower bound `LB_H0` (eq. 2).
#[inline]
pub fn ceil_log2(n: u64) -> u64 {
    assert!(n > 0, "ceil_log2 of zero");
    (u64::BITS - (n - 1).leading_zeros()) as u64
}

/// `⌊log₂ n⌋` for `n ≥ 1`.
#[inline]
pub fn floor_log2(n: u64) -> u64 {
    assert!(n > 0, "floor_log2 of zero");
    (63 - n.leading_zeros()) as u64
}

/// Fractional part of `log₂ n` in 64-bit fixed point (error `< 2⁻⁵⁰`).
///
/// Standard bit-by-bit algorithm: keep the mantissa `x ∈ [1, 2)` with 63
/// fractional bits; squaring doubles the exponent, so after each squaring the
/// integer bit of `x²` is the next fraction bit of `log₂`.
fn log2_frac_fixed(n: u64) -> u64 {
    debug_assert!(n >= 1);
    if n.is_power_of_two() {
        return 0;
    }
    let k = 63 - n.leading_zeros();
    // x = n / 2^k in [1, 2), as a u128 with 63 fractional bits (so x < 2^64).
    let mut x: u128 = (n as u128) << (63 - k);
    let mut frac: u64 = 0;
    for bit in (0..64).rev() {
        // Square and renormalize to 63 fractional bits. x < 2^64 so x² < 2^128.
        let sq = x * x; // 126 fractional bits
        x = sq >> 63;
        if x >= (1u128 << 64) {
            // x² ≥ 2 → this log bit is 1; halve to return to [1, 2).
            frac |= 1u64 << bit;
            x >>= 1;
        }
    }
    frac
}

/// `⌈n·log₂ n⌉` for `n ≥ 1` — the scaled average-depth lower bound
/// `LB_TD0(n)` (eq. 1 multiplied through by `n`).
///
/// Exact for powers of two; for other `n` the fixed-point error is below
/// `n·2⁻⁵⁰ < 2⁻¹⁸`, orders of magnitude smaller than the distance of the
/// irrational `n·log₂ n` from any integer at these magnitudes.
///
/// The 64-iteration fixed-point recurrence costs hundreds of nanoseconds,
/// and the k-LP candidate ranking evaluates this for every informative
/// entity of every lookahead node — it dominated tree-construction profiles.
/// Values are therefore memoized in a thread-local dense table indexed by
/// `n` (collection sizes, so the table stays small and hit rates are ~100%
/// after the first selection); the slow path runs once per distinct `n` per
/// thread.
pub fn ceil_n_log2_n(n: u64) -> u64 {
    assert!(n > 0, "ceil_n_log2_n of zero");
    assert!(n <= u32::MAX as u64, "collection sizes are bounded by u32");
    if n.is_power_of_two() {
        // Exact and O(1); also covers n = 1 and n = 2, so below the table
        // can use 0 as its "not yet computed" sentinel (every non-power of
        // two n ≥ 3 has a positive value).
        return n * floor_log2(n);
    }
    // Cap the table so one enormous query cannot pin gigabytes per thread;
    // beyond it (views of > 4M sets, which only exist near the root of a
    // search) the slow path runs directly.
    const TABLE_CAP: usize = 1 << 22;
    let idx = n as usize;
    if idx >= TABLE_CAP {
        return ceil_n_log2_n_uncached(n);
    }
    thread_local! {
        static TABLE: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    TABLE.with(|table| {
        let mut table = table.borrow_mut();
        if idx >= table.len() {
            // Grow geometrically: repeated +1 resizes would be quadratic
            // over an ascending sequence of n.
            table.resize((idx + 1).next_power_of_two(), 0);
        }
        if table[idx] == 0 {
            table[idx] = ceil_n_log2_n_uncached(n);
        }
        table[idx]
    })
}

/// The uncached fixed-point computation behind [`ceil_n_log2_n`].
fn ceil_n_log2_n_uncached(n: u64) -> u64 {
    let int_part = floor_log2(n);
    let frac = log2_frac_fixed(n) as u128;
    // n * frac / 2^64, rounded up (frac > 0 here, so the ceiling is real).
    let prod = (n as u128) * frac;
    let frac_ceil = (prod + ((1u128 << 64) - 1)) >> 64;
    n * int_part + frac_ceil as u64
}

/// Minimal external path length of a full binary tree with `n` leaves:
/// `n·⌈log₂ n⌉ − 2^⌈log₂ n⌉ + n` … written in its usual closed form below.
///
/// This is a *tighter* bound than the paper's `⌈n·log₂ n⌉` (they coincide at
/// powers of two). It is provided for the ablation benchmark comparing bound
/// tightness; the paper-faithful algorithms use [`ceil_n_log2_n`].
pub fn min_external_path_length(n: u64) -> u64 {
    assert!(n > 0);
    if n == 1 {
        return 0;
    }
    let k = floor_log2(n);
    // A tree with n leaves of depths k and k+1: 2^(k+1) - n leaves at depth k
    // and 2(n - 2^k) leaves at depth k+1 minimizes the sum of depths.
    let at_k = (1u64 << (k + 1)) - n;
    let at_k1 = 2 * (n - (1u64 << k));
    at_k * k + at_k1 * (k + 1)
}

/// Ceiling division for unsigned integers.
#[inline]
pub fn div_ceil(a: u64, b: u64) -> u64 {
    assert!(b > 0);
    a / b + u64::from(!a.is_multiple_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_small_values() {
        let expect = [
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (7, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
        ];
        for (n, e) in expect {
            assert_eq!(ceil_log2(n), e, "n={n}");
        }
    }

    #[test]
    fn floor_log2_small_values() {
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(2), 1);
        assert_eq!(floor_log2(3), 1);
        assert_eq!(floor_log2(4), 2);
        assert_eq!(floor_log2(u64::MAX), 63);
    }

    #[test]
    fn ceil_n_log2_n_matches_f64_reference() {
        // f64 is plenty accurate away from boundaries; cross-check broadly.
        for n in 1u64..=20_000 {
            let exact = ceil_n_log2_n(n);
            let approx = ((n as f64) * (n as f64).log2()).ceil() as u64;
            assert!(
                exact == approx || exact == approx + 1 || approx == exact + 1,
                "n={n}: exact={exact} approx={approx}"
            );
            // For the vast majority they must agree precisely.
            if !n.is_power_of_two() {
                assert_eq!(exact, approx, "n={n}");
            }
        }
    }

    #[test]
    fn ceil_n_log2_n_power_of_two_exact() {
        for k in 0..30u32 {
            let n = 1u64 << k;
            assert_eq!(ceil_n_log2_n(n), n * k as u64);
        }
    }

    #[test]
    fn paper_example_seven_sets() {
        // §3: for 7 sets the AD lower bound is ⌈7·log₂7⌉/7 = 20/7 ≈ 2.857.
        assert_eq!(ceil_n_log2_n(7), 20);
    }

    #[test]
    fn min_epl_is_at_most_paper_bound_and_tight_at_powers() {
        for n in 1u64..10_000 {
            let paper = ceil_n_log2_n(n);
            let tight = min_external_path_length(n);
            assert!(
                tight >= paper,
                "min external path length can never be below ⌈n log n⌉: n={n} tight={tight} paper={paper}"
            );
            if n.is_power_of_two() {
                assert_eq!(tight, paper, "n={n}");
            }
        }
    }

    #[test]
    fn min_epl_small_values() {
        // n=3: depths {1,2,2} → 5.  n=5: {2,2,2,3,3} → 12. n=6: {2,2,3,3,3,3}→16? no:
        // n=6: 2^(k+1)-n = 2 at depth 2, 2(n-2^k)=4 at depth 3 → 4+12=16.
        assert_eq!(min_external_path_length(1), 0);
        assert_eq!(min_external_path_length(2), 2);
        assert_eq!(min_external_path_length(3), 5);
        assert_eq!(min_external_path_length(4), 8);
        assert_eq!(min_external_path_length(5), 12);
        assert_eq!(min_external_path_length(6), 16);
        assert_eq!(min_external_path_length(7), 20);
        assert_eq!(min_external_path_length(8), 24);
    }

    #[test]
    fn div_ceil_basic() {
        assert_eq!(div_ceil(0, 3), 0);
        assert_eq!(div_ceil(1, 3), 1);
        assert_eq!(div_ceil(3, 3), 1);
        assert_eq!(div_ceil(4, 3), 2);
    }

    #[test]
    fn log2_frac_known_values() {
        // log2(3) = 1.584962500721156...; fractional part ≈ 0.5849625007
        let f = log2_frac_fixed(3) as f64 / 2f64.powi(64);
        assert!((f - 0.584_962_500_721_156).abs() < 1e-12, "{f}");
        let f5 = log2_frac_fixed(5) as f64 / 2f64.powi(64);
        assert!((f5 - 0.321_928_094_887_362).abs() < 1e-12, "{f5}");
    }
}
