//! A reusable scoped worker pool with claim-counter scheduling.
//!
//! Every parallel region in the workspace — `setdisc-eval`'s `par_map`
//! over experiment workloads and the k-LP candidate loop in
//! `setdisc-core::lookahead` — goes through this module, so one knob
//! controls them all: [`configured_threads`] reads the `SETDISC_THREADS`
//! environment variable (clamped to ≥ 1) and falls back to
//! [`std::thread::available_parallelism`].
//!
//! The scheduling design is a single atomic **claim counter** rather than a
//! work queue: each worker `fetch_add`s the next item index, so there is no
//! contended lock and items are handed out in index order — the property
//! the parallel lookahead's deterministic replay relies on (earlier
//! candidates are claimed no later than later ones). Workers are plain
//! [`std::thread::scope`] threads, which keeps the pool free of `unsafe`
//! and lets jobs borrow from the caller's stack; regions therefore pay one
//! thread spawn per worker, and callers gate parallelism on having enough
//! work to amortize it (microseconds, against regions that run for
//! milliseconds).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Worker-count override parse: the value of `SETDISC_THREADS` if set and
/// valid (≥ 1), otherwise `fallback` — plus a diagnostic when the variable
/// was set but unusable (strict parse: garbage and `0` both fall back, and
/// say so rather than silently shrugging). Split out pure for testability —
/// [`configured_threads`] applies it to the real environment exactly once.
pub fn threads_from(env_value: Option<&str>, fallback: usize) -> (usize, Option<String>) {
    let fallback = fallback.max(1);
    match env_value {
        None => (fallback, None),
        Some(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => (n, None),
            Ok(0) => (
                fallback,
                Some(format!(
                    "SETDISC_THREADS=0 is not a worker count; using {fallback}"
                )),
            ),
            _ => (
                fallback,
                Some(format!(
                    "SETDISC_THREADS={raw:?} is not a positive integer; using {fallback}"
                )),
            ),
        },
    }
}

/// The configured worker count for every parallel region in the process:
/// `SETDISC_THREADS` when set (≥ 1; `1` disables parallelism), else the
/// machine's available parallelism. The environment is read **once** — the
/// result is cached for the process lifetime, and a malformed value warns
/// on stderr exactly once instead of being silently re-ignored at every
/// construction site.
pub fn configured_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let fallback = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        let (threads, warning) =
            threads_from(std::env::var("SETDISC_THREADS").ok().as_deref(), fallback);
        if let Some(warning) = warning {
            crate::obs::warn(&warning);
        }
        threads
    })
}

/// An atomic claim counter over `0..len`: each [`Self::claim`] hands out
/// the next unclaimed index exactly once, across any number of threads.
#[derive(Debug)]
pub struct ClaimCounter {
    next: AtomicUsize,
    len: usize,
}

impl ClaimCounter {
    /// Counter over `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
        }
    }

    /// Claims the next index, or `None` when all are taken.
    #[inline]
    pub fn claim(&self) -> Option<usize> {
        let idx = self.next.fetch_add(1, Ordering::Relaxed);
        (idx < self.len).then_some(idx)
    }

    /// Number of indices handed out so far (saturated at the length).
    pub fn claimed(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.len)
    }
}

/// Runs `f(worker_index, &mut state)` once per state on its own scoped
/// thread and returns the per-worker results in state order. With zero or
/// one state the closure runs inline on the caller's thread (no spawn).
///
/// This is the pool's core primitive: per-worker mutable state (scratch
/// arenas, memo caches, local output buffers) lives in `states`, shared
/// read-only state is captured by `f`, and work distribution is the
/// caller's [`ClaimCounter`].
pub fn run_workers<S: Send, R: Send>(
    states: &mut [S],
    f: impl Fn(usize, &mut S) -> R + Sync,
) -> Vec<R> {
    match states {
        [] => Vec::new(),
        [one] => vec![f(0, one)],
        many => std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = many
                .iter_mut()
                .enumerate()
                .map(|(i, state)| scope.spawn(move || f(i, state)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("pool worker panicked"))
                .collect()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_from_parses_and_falls_back() {
        assert_eq!(threads_from(Some("3"), 8), (3, None));
        assert_eq!(threads_from(Some(" 12 "), 8), (12, None));
        assert_eq!(threads_from(None, 8), (8, None));
        // The fallback itself is clamped to ≥ 1.
        assert_eq!(threads_from(None, 0), (1, None));
    }

    #[test]
    fn threads_from_warns_on_garbage_exactly_when_set_and_invalid() {
        for bad in ["0", "nope", "", " -3 ", "2.5"] {
            let (threads, warning) = threads_from(Some(bad), 8);
            assert_eq!(threads, 8, "{bad:?} falls back");
            let warning = warning.unwrap_or_else(|| panic!("{bad:?} must warn"));
            assert!(warning.contains("SETDISC_THREADS"), "{warning}");
        }
        // Valid values and an unset variable stay silent.
        assert_eq!(threads_from(Some("1"), 8).1, None);
        assert_eq!(threads_from(None, 8).1, None);
    }

    #[test]
    fn configured_threads_is_positive_and_stable() {
        let a = configured_threads();
        assert!(a >= 1);
        assert_eq!(a, configured_threads());
    }

    #[test]
    fn claim_counter_hands_out_each_index_once() {
        let counter = ClaimCounter::new(10_000);
        let mut states: Vec<Vec<usize>> = vec![Vec::new(); 8];
        let locals = run_workers(&mut states, |_, local: &mut Vec<usize>| {
            while let Some(i) = counter.claim() {
                local.push(i);
            }
            local.len()
        });
        assert_eq!(locals.iter().sum::<usize>(), 10_000);
        let mut all: Vec<usize> = states.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..10_000).collect::<Vec<_>>());
        assert_eq!(counter.claimed(), 10_000);
        assert_eq!(counter.claim(), None);
    }

    #[test]
    fn run_workers_inline_paths() {
        let mut none: [u32; 0] = [];
        assert!(run_workers(&mut none, |_, _| 1).is_empty());
        let mut one = [41u32];
        assert_eq!(run_workers(&mut one, |_, s| *s + 1), vec![42]);
        assert_eq!(one, [41]);
    }

    #[test]
    fn run_workers_returns_in_state_order() {
        let mut states = [0usize; 6];
        let out = run_workers(&mut states, |i, s| {
            *s = i;
            // Finish out of order; results must still line up by index.
            std::thread::sleep(std::time::Duration::from_millis((6 - i) as u64));
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
        assert_eq!(states, [0, 1, 2, 3, 4, 5]);
    }
}
