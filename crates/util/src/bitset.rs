//! A dense fixed-capacity bitset.
//!
//! A standalone utility for general id-set algebra. The selection hot
//! paths use the specialized `setdisc-core::bitset::IdBitmap` (dense words
//! over a collection's `SetId` space, paired with an inverted
//! `EntityPostings` index) rather than this type, because they recycle raw
//! word buffers through the lookahead scratch arenas;
//! [`DenseBitSet::fingerprint`] keeps the representations interchangeable
//! by digesting to the same value as the id-vector form. The capacity is
//! fixed at construction; all operations that combine two bitsets require
//! equal capacity.

use crate::hash::Fingerprint;

/// Dense bitset over `0..len`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// An empty bitset with capacity for `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitset with all `len` bits set.
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.clear_tail();
        s
    }

    /// Builds from an iterator of bit indices.
    pub fn from_indices(len: usize, indices: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(len);
        for i in indices {
            s.insert(i);
        }
        s
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Bit capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Sets bit `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of capacity {}", self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Tests bit `i`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// In-place intersection with `other` (equal capacity required).
    pub fn intersect_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union with `other` (equal capacity required).
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place difference `self \ other` (equal capacity required).
    pub fn difference_with(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// Iterator over set bit indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros() as usize;
                w &= w - 1;
                Some(wi * 64 + bit)
            })
        })
    }

    /// Raw words (for hashing / canonical keys).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The 128-bit content [`Fingerprint`] of the set of bit indices —
    /// identical to summing [`Fingerprint::of`] over [`Self::iter`], so a
    /// bitset and an id-vector representation of the same set agree on
    /// their digest.
    pub fn fingerprint(&self) -> Fingerprint {
        self.iter().map(|i| Fingerprint::of(i as u64)).sum()
    }
}

impl std::fmt::Debug for DenseBitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = DenseBitSet::new(130);
        assert!(!b.contains(0));
        b.insert(0);
        b.insert(64);
        b.insert(129);
        assert!(b.contains(0) && b.contains(64) && b.contains(129));
        assert_eq!(b.count(), 3);
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn full_respects_capacity_tail() {
        let b = DenseBitSet::full(70);
        assert_eq!(b.count(), 70);
        assert!(b.contains(69));
        assert!(!b.contains(70));
    }

    #[test]
    fn set_algebra() {
        let a = DenseBitSet::from_indices(100, [1, 2, 3, 64, 99]);
        let b = DenseBitSet::from_indices(100, [2, 3, 4, 64]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3, 64]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.count(), 6);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 99]);
    }

    #[test]
    fn iter_ordered_and_complete() {
        let idx = [0usize, 5, 63, 64, 65, 127, 128];
        let b = DenseBitSet::from_indices(200, idx);
        assert_eq!(b.iter().collect::<Vec<_>>(), idx.to_vec());
    }

    #[test]
    fn equality_and_hash_are_structural() {
        use std::collections::HashSet;
        let a = DenseBitSet::from_indices(64, [1, 2]);
        let b = DenseBitSet::from_indices(64, [2, 1]);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn mismatched_capacity_panics() {
        let mut a = DenseBitSet::new(64);
        let b = DenseBitSet::new(65);
        a.intersect_with(&b);
    }

    #[test]
    fn fingerprint_matches_index_sum() {
        let idx = [1usize, 64, 129];
        let b = DenseBitSet::from_indices(200, idx);
        let expect: Fingerprint = idx.iter().map(|&i| Fingerprint::of(i as u64)).sum();
        assert_eq!(b.fingerprint(), expect);
        assert_eq!(DenseBitSet::new(200).fingerprint(), Fingerprint::ZERO);
        // Capacity does not influence the digest, only membership does.
        assert_eq!(
            DenseBitSet::from_indices(500, idx).fingerprint(),
            b.fingerprint()
        );
    }

    #[test]
    fn empty_checks() {
        let mut b = DenseBitSet::new(10);
        assert!(b.is_empty());
        b.insert(9);
        assert!(!b.is_empty());
    }
}
