//! Substrate utilities shared by the interactive-set-discovery crates.
//!
//! Everything here is deliberately dependency-free so the whole workspace can
//! be built offline:
//!
//! * [`hash`] — an `FxHash`-style fast hasher plus `HashMap`/`HashSet` type
//!   aliases keyed on it (hot maps are keyed by small integers, where SipHash
//!   is needlessly slow).
//! * [`bitset`] — a dense, fixed-capacity bitset used for sub-collection keys
//!   in the exact dynamic-programming optimizer.
//! * [`math`] — exact integer math for the paper's cost lower bounds, most
//!   importantly `⌈n·log₂ n⌉` computed in fixed point so pruning decisions
//!   never depend on float rounding.
//! * [`rng`] — a small, seedable xoshiro256++ PRNG with the handful of
//!   distributions the generators need. Keeping the PRNG local makes every
//!   experiment reproducible independent of `rand` version bumps.
//! * [`report`] — minimal table/CSV/markdown emitters for the experiment
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod hash;
pub mod math;
pub mod report;
pub mod rng;

pub use bitset::DenseBitSet;
pub use hash::{FxHashMap, FxHashSet, FxHasher};
pub use rng::Rng;
