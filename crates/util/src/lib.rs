//! Substrate utilities shared by the interactive-set-discovery crates.
//!
//! Everything here is deliberately dependency-free so the whole workspace can
//! be built offline:
//!
//! * [`hash`] — an `FxHash`-style fast hasher plus `HashMap`/`HashSet` type
//!   aliases keyed on it (hot maps are keyed by small integers, where SipHash
//!   is needlessly slow), and the 128-bit incremental [`Fingerprint`] the
//!   selection hot path uses as an allocation-free sub-collection identity.
//! * [`bitset`] — a dense, fixed-capacity bitset for id-set algebra
//!   (currently a standalone utility: the hot paths moved to sorted id
//!   vectors + fingerprints), with a [`Fingerprint`]-compatible content
//!   digest so bitset- and vector-represented sets agree on identity.
//! * [`faults`] — deterministic fault injection behind named hook sites
//!   (seeded schedules of I/O errors, short writes, delays, and panics),
//!   armed by the chaos test suite and the `SETDISC_FAULTS` environment
//!   variable; free (one atomic load) when disarmed.
//! * [`journal`] — rotating, fsync-batched, line-oriented journal files
//!   with a torn-tail-tolerant reader: the durable substrate under the
//!   service's request/response journal and its deterministic replay.
//! * [`obs`] — vendor-free telemetry: a lock-free metric core (monotone
//!   counters, gauges, log2-bucketed histograms merged from per-thread
//!   shards), span timing at the same named sites [`faults`] trips (armed
//!   via `SETDISC_OBS`; one relaxed load when disarmed), and the leveled
//!   stderr logger every binary's diagnostics flow through.
//! * [`pool`] — the scoped worker pool and the single `SETDISC_THREADS`
//!   knob behind every parallel region (experiment `par_map`, the parallel
//!   k-LP candidate loop), scheduled by an atomic claim counter.
//! * [`mem`] — the [`mem::HeapSize`] accounting trait behind the memory
//!   governor's global byte budget: exact owned-heap-bytes reporting for
//!   the workspace's own types, surfaced through the [`obs`] memory
//!   gauges.
//! * [`math`] — exact integer math for the paper's cost lower bounds, most
//!   importantly `⌈n·log₂ n⌉` computed in fixed point so pruning decisions
//!   never depend on float rounding.
//! * [`rng`] — a small, seedable xoshiro256++ PRNG with the handful of
//!   distributions the generators need. Keeping the PRNG local makes every
//!   experiment reproducible independent of `rand` version bumps.
//! * [`report`] — minimal table/CSV/markdown emitters for the experiment
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod faults;
pub mod hash;
pub mod journal;
pub mod math;
pub mod mem;
pub mod obs;
pub mod pool;
pub mod report;
pub mod rng;

pub use bitset::DenseBitSet;
pub use hash::{Fingerprint, FxHashMap, FxHashSet, FxHasher};
pub use rng::Rng;
