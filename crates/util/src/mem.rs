//! Heap-size accounting for the memory-governance subsystem
//! (DESIGN.md §13).
//!
//! [`HeapSize`] reports the bytes a value owns *outside* its own
//! `size_of` footprint — the quantity a byte budget has to govern,
//! because the inline part is already paid for by whoever embeds the
//! value. Implementations are exact where the layout allows (capacity,
//! not length, for growable containers) and deliberately deterministic:
//! the same value always accounts to the same number, so governance
//! decisions replay bit-identically under a fixed request schedule and
//! tests can cold-recount incrementally-maintained counters.
//!
//! The trait lives here in the substrate crate so `core`, `plan`, and
//! `service` can each implement it over their own private layouts; the
//! totals surface through the [`crate::obs`] memory gauges
//! (`setdisc_mem_bytes{component=...}` in the Prometheus exposition).

/// Bytes a value owns on the heap, excluding `size_of::<Self>()`.
pub trait HeapSize {
    /// Owned heap bytes. Exact for the workspace's own types; container
    /// *capacity* counts, not length — a half-full `Vec` still holds its
    /// allocation.
    fn heap_bytes(&self) -> usize;

    /// Heap bytes plus the value's own inline size — what one more of
    /// these costs a parent container slot.
    fn total_bytes(&self) -> usize
    where
        Self: Sized,
    {
        std::mem::size_of::<Self>() + self.heap_bytes()
    }
}

impl HeapSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapSize> HeapSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapSize::heap_bytes)
    }
}

impl<T: HeapSize> HeapSize for Box<T> {
    fn heap_bytes(&self) -> usize {
        std::mem::size_of::<T>() + self.as_ref().heap_bytes()
    }
}

impl<T: HeapSize> HeapSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(HeapSize::heap_bytes).sum::<usize>()
    }
}

/// Heap bytes of a `Vec` whose elements own no heap of their own
/// (ids, counts, fingerprints). Capacity counts, not length.
pub fn vec_bytes<T: Copy>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Heap bytes of a boxed slice of plain elements (exact: boxed slices
/// have no spare capacity).
pub fn boxed_slice_bytes<T: Copy>(s: &[T]) -> usize {
    std::mem::size_of_val(s)
}

/// Deterministic estimate of a hash table's allocation at the given
/// usable capacity: one key-value slot plus one control byte per slot.
/// Not bit-exact against the allocator (bucket rounding and group
/// padding are implementation details), but a fixed insertion sequence
/// always accounts to the same number — which is what replayable
/// governance decisions need.
pub fn map_spine_bytes<K, V>(capacity: usize) -> usize {
    capacity * (std::mem::size_of::<(K, V)>() + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_account_capacity_not_length() {
        let mut s = String::with_capacity(64);
        s.push_str("abc");
        assert_eq!(s.heap_bytes(), 64);
        assert_eq!(s.total_bytes(), std::mem::size_of::<String>() + 64);
        assert_eq!(String::new().heap_bytes(), 0);
    }

    #[test]
    fn nested_containers_sum_exactly() {
        let v: Vec<String> = vec![String::from("xy"), String::new()];
        let spine = v.capacity() * std::mem::size_of::<String>();
        assert_eq!(v.heap_bytes(), spine + 2);
        let boxed: Box<String> = Box::new(String::from("abc"));
        assert_eq!(
            boxed.heap_bytes(),
            std::mem::size_of::<String>() + "abc".len()
        );
        assert_eq!(None::<String>.heap_bytes(), 0);
        assert_eq!(Some(String::from("ab")).heap_bytes(), 2);
    }

    #[test]
    fn plain_helpers_count_allocation_not_length() {
        let mut ids: Vec<u32> = Vec::with_capacity(10);
        ids.push(7);
        assert_eq!(vec_bytes(&ids), 40);
        let slice: Box<[u64]> = vec![1u64, 2, 3].into_boxed_slice();
        assert_eq!(boxed_slice_bytes(&slice), 24);
    }
}
