//! Rotating, fsync-batched, line-oriented journal files.
//!
//! The service layer appends one JSON line per record (the *content* is the
//! caller's business — this module only guarantees durable, ordered,
//! recoverable *lines*). Records land in a directory as
//! `journal-NNNNNN.jsonl` segments; a segment rotates once it crosses a
//! byte threshold **on a record boundary**, so no record ever spans two
//! files. Writes are buffered and fsynced every `SYNC_EVERY` (32)
//! records (and on [`JournalWriter::sync`]/drop), trading a bounded tail of
//! at-risk records for not paying an fsync per request.
//!
//! # Durability contract
//!
//! After a crash (including SIGKILL mid-write) the journal is readable up
//! to the last complete record: [`read_dir`] walks segments in order and
//! tolerates a *torn tail* — trailing bytes after the final newline of the
//! last segment are dropped, and a final newline-terminated line that the
//! caller's parser rejects can be skipped by the caller (the reader itself
//! is content-agnostic). Earlier segments are required to be intact; a torn
//! middle segment indicates corruption beyond a crash tail and is reported
//! as an error.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};

/// Default rotation threshold: segments rotate after crossing 4 MiB.
pub const DEFAULT_ROTATE_BYTES: u64 = 4 << 20;

/// Appends newline-terminated records to rotating segment files.
pub struct JournalWriter {
    dir: PathBuf,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
    rotate_bytes: u64,
    unsynced: u32,
}

/// Batch size: fsync once per this many appended records.
const SYNC_EVERY: u32 = 32;

fn segment_name(index: u64) -> String {
    format!("journal-{index:06}.jsonl")
}

/// Lists the journal segment files in `dir`, sorted by segment index.
pub fn segment_paths(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut found: Vec<(u64, PathBuf)> = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("journal-") else {
            continue;
        };
        let Some(idx) = rest.strip_suffix(".jsonl") else {
            continue;
        };
        let Ok(idx) = idx.parse::<u64>() else {
            continue;
        };
        found.push((idx, entry.path()));
    }
    found.sort();
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

impl JournalWriter {
    /// Opens (creating the directory if needed) a journal in `dir`,
    /// continuing after the highest existing segment so a restarted
    /// process never overwrites history.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        Self::with_rotation(dir, DEFAULT_ROTATE_BYTES)
    }

    /// [`JournalWriter::open`] with an explicit rotation threshold
    /// (tests use tiny thresholds to force rotation boundaries).
    pub fn with_rotation(dir: impl AsRef<Path>, rotate_bytes: u64) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let existing = segment_paths(&dir)?;
        // Never append into an old segment: its tail may be torn from a
        // previous crash, and a fresh segment keeps recovery per-file.
        let seg_index = match existing.last() {
            Some(last) => {
                let name = last.file_name().and_then(|n| n.to_str()).unwrap_or("");
                let idx: u64 = name
                    .trim_start_matches("journal-")
                    .trim_end_matches(".jsonl")
                    .parse()
                    .unwrap_or(0);
                idx + 1
            }
            None => 0,
        };
        let file = Self::create_segment(&dir, seg_index)?;
        Ok(Self {
            dir,
            file,
            seg_index,
            seg_bytes: 0,
            rotate_bytes: rotate_bytes.max(1),
            unsynced: 0,
        })
    }

    fn create_segment(dir: &Path, index: u64) -> io::Result<File> {
        OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(dir.join(segment_name(index)))
    }

    /// Directory this journal writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Appends one record (`line` must not contain `\n`; the terminator is
    /// added here). Rotates to a new segment *before* writing when the
    /// current one is full, so records never straddle segments.
    pub fn append(&mut self, line: &str) -> io::Result<()> {
        debug_assert!(!line.contains('\n'), "journal records are single lines");
        if self.seg_bytes >= self.rotate_bytes {
            self.rotate()?;
        }
        setdisc_crate_faults_check("journal.append")?;
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.seg_bytes += line.len() as u64 + 1;
        self.unsynced += 1;
        if self.unsynced >= SYNC_EVERY {
            self.sync()?;
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.sync()?;
        self.seg_index += 1;
        self.file = Self::create_segment(&self.dir, self.seg_index)?;
        self.seg_bytes = 0;
        Ok(())
    }

    /// Flushes buffered records to stable storage (fsync).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced > 0 {
            self.file.sync_data()?;
            self.unsynced = 0;
        }
        Ok(())
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        self.sync().ok();
    }
}

// `util::journal` sits below `util::faults` conceptually but the fault
// registry is in the same crate — a thin shim keeps the hook name in one
// place and the call free when disarmed.
fn setdisc_crate_faults_check(site: &str) -> io::Result<()> {
    crate::faults::check_io(site)
}

/// Reads every complete record from the journal in `dir`, in append order.
///
/// The final segment tolerates a torn tail: bytes after its last newline
/// are discarded (a crash mid-`write_all` leaves exactly that shape). Any
/// *earlier* segment with a missing trailing newline is real corruption —
/// rotation always syncs the old segment first — and yields an error.
pub fn read_dir(dir: impl AsRef<Path>) -> io::Result<Vec<String>> {
    let paths = segment_paths(dir.as_ref())?;
    let mut out = Vec::new();
    let last = paths.len().saturating_sub(1);
    for (i, path) in paths.iter().enumerate() {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let complete = match bytes.iter().rposition(|&b| b == b'\n') {
            Some(pos) => &bytes[..=pos],
            None if bytes.is_empty() => &bytes[..],
            None if i == last => &[][..], // torn before its first newline
            None => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("journal segment {} has no complete record", path.display()),
                ));
            }
        };
        if i != last && complete.len() != bytes.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("journal segment {} has a torn tail", path.display()),
            ));
        }
        let text = String::from_utf8_lossy(complete);
        out.extend(text.lines().map(|l| l.to_string()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("setdisc_journal_{name}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn append_read_round_trip() {
        let dir = tmp("roundtrip");
        let mut w = JournalWriter::open(&dir).unwrap();
        for i in 0..100 {
            w.append(&format!("{{\"seq\":{i}}}")).unwrap();
        }
        w.sync().unwrap();
        let lines = read_dir(&dir).unwrap();
        assert_eq!(lines.len(), 100);
        assert_eq!(lines[0], "{\"seq\":0}");
        assert_eq!(lines[99], "{\"seq\":99}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_never_splits_a_record() {
        let dir = tmp("rotate");
        // Tiny threshold: every couple of records forces a new segment.
        let mut w = JournalWriter::with_rotation(&dir, 32).unwrap();
        for i in 0..50 {
            w.append(&format!("{{\"seq\":{i},\"pad\":\"xxxxxxxx\"}}"))
                .unwrap();
        }
        drop(w);
        let segs = segment_paths(&dir).unwrap();
        assert!(segs.len() > 1, "rotation must have occurred: {segs:?}");
        for seg in &segs {
            let text = fs::read_to_string(seg).unwrap();
            assert!(
                text.ends_with('\n'),
                "{seg:?} must end on a record boundary"
            );
            for line in text.lines() {
                assert!(line.starts_with("{\"seq\":"), "torn record {line:?}");
            }
        }
        let lines = read_dir(&dir).unwrap();
        assert_eq!(lines.len(), 50);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"seq\":{i},")), "{line}");
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_in_last_segment_is_dropped() {
        let dir = tmp("torn");
        let mut w = JournalWriter::open(&dir).unwrap();
        w.append("{\"seq\":0}").unwrap();
        w.append("{\"seq\":1}").unwrap();
        w.sync().unwrap();
        let seg = segment_paths(&dir).unwrap().pop().unwrap();
        // Simulate a crash mid-append: partial record, no trailing newline.
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(b"{\"seq\":2,\"partia").unwrap();
        drop(f);
        let lines = read_dir(&dir).unwrap();
        assert_eq!(lines, vec!["{\"seq\":0}", "{\"seq\":1}"]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_middle_segment_is_an_error() {
        let dir = tmp("torn_middle");
        let mut w = JournalWriter::with_rotation(&dir, 8).unwrap();
        for i in 0..6 {
            w.append(&format!("{{\"seq\":{i}}}")).unwrap();
        }
        drop(w);
        let segs = segment_paths(&dir).unwrap();
        assert!(segs.len() >= 2);
        // Tear a non-final segment.
        let first = &segs[0];
        let bytes = fs::read(first).unwrap();
        fs::write(first, &bytes[..bytes.len() - 1]).unwrap();
        let err = read_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("torn"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_starts_a_fresh_segment() {
        let dir = tmp("reopen");
        let mut w = JournalWriter::open(&dir).unwrap();
        w.append("{\"seq\":0}").unwrap();
        drop(w);
        let mut w2 = JournalWriter::open(&dir).unwrap();
        w2.append("{\"seq\":1}").unwrap();
        drop(w2);
        assert_eq!(segment_paths(&dir).unwrap().len(), 2);
        let lines = read_dir(&dir).unwrap();
        assert_eq!(lines, vec!["{\"seq\":0}", "{\"seq\":1}"]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_and_missing_directories() {
        let dir = tmp("empty");
        assert!(read_dir(&dir).is_err(), "missing dir is an error");
        fs::create_dir_all(&dir).unwrap();
        assert_eq!(read_dir(&dir).unwrap().len(), 0);
        fs::remove_dir_all(&dir).ok();
    }
}
