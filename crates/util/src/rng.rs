//! A small, seedable PRNG (xoshiro256++) with the distributions the
//! generators need.
//!
//! The synthetic-data experiments must be reproducible bit-for-bit from a
//! `u64` seed across the whole workspace, including crates that do not link
//! `rand`. xoshiro256++ passes BigCrush, is four words of state, and is the
//! same generator family `rand` uses for its small RNGs.

/// xoshiro256++ PRNG, seeded through SplitMix64.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second output of the last Box–Muller draw.
    spare_normal: Option<f64>,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed. Distinct seeds give
    /// statistically independent streams (expanded via SplitMix64).
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Self {
            s,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)` via Lemire's multiply-shift with rejection.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range of empty range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[lo, hi)`. Panics when `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_range((hi - lo) as u64) as usize
    }

    /// Uniform f64 in `[0, 1)` with 53 random bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (caches the paired output).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid log(0).
        let u1 = loop {
            let u = self.f64();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (std::f64::consts::TAU * u2).sin_cos();
        self.spare_normal = Some(r * s);
        r * c
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.normal()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Chooses one element by reference; `None` on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.gen_range(xs.len() as u64) as usize])
        }
    }

    /// Samples `k` distinct indices from `0..n` (k ≤ n), in random order.
    /// Uses a partial Fisher–Yates over an index map so it is O(k) memory
    /// for small k and O(n) only when k approaches n.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        if k * 3 >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            all.truncate(k);
            return all;
        }
        // Sparse Fisher-Yates: swap map holds displaced entries only.
        let mut swap: crate::FxHashMap<usize, usize> = crate::FxHashMap::default();
        let mut out = Vec::with_capacity(k);
        for i in 0..k {
            let j = i + self.gen_range((n - i) as u64) as usize;
            let vi = swap.get(&i).copied().unwrap_or(i);
            let vj = swap.get(&j).copied().unwrap_or(j);
            out.push(vj);
            swap.insert(j, vi);
        }
        out
    }

    /// Forks an independent child stream (e.g. one per thread/worker).
    pub fn fork(&mut self, stream: u64) -> Rng {
        Rng::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.gen_range(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values should appear");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut r = Rng::new(99);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let z = r.normal();
            sum += z;
            sum2 += z * z;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.03, "var={var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut r = Rng::new(11);
        for &(n, k) in &[(100usize, 5usize), (100, 90), (10, 10), (1000, 2)] {
            let s = r.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let uniq: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(uniq.len(), k, "distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_indices_unbiased_smoke() {
        // Each of 0..10 should be sampled ~equally often when k=3.
        let mut r = Rng::new(13);
        let mut counts = [0u32; 10];
        for _ in 0..30_000 {
            for i in r.sample_indices(10, 3) {
                counts[i] += 1;
            }
        }
        let expected = 9_000.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "index {i} count {c}"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn fork_streams_diverge() {
        let mut base = Rng::new(1);
        let mut a = base.fork(1);
        let mut b = base.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
