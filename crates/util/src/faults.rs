//! Deterministic fault injection behind named hook sites.
//!
//! Production code registers *sites* — `faults::trip("engine.select")`,
//! `faults::check_io("plan.save.write")` — that are free when no plan is
//! armed (one relaxed atomic load) and otherwise consult a seeded,
//! per-site deterministic schedule of injectable faults: I/O errors,
//! short writes, delays, allocation-pressure signals, and panics. The
//! chaos test suite arms a plan, drives real traffic, and asserts the
//! service degrades the way DESIGN.md §11 promises instead of wedging.
//!
//! # Spec grammar
//!
//! A plan is parsed from a spec string (programmatically via
//! [`install_spec`], or from the `SETDISC_FAULTS` environment variable via
//! [`init_from_env`], which the `serve` binary calls at boot):
//!
//! ```text
//! spec  := entry (',' entry)*
//! entry := 'seed=' u64
//!        | site '=' kind ':' rate [':' param [':' limit]]
//! kind  := 'err' | 'short' | 'delay' | 'alloc' | 'panic'
//! ```
//!
//! `rate` is the per-call firing probability in `[0, 1]`; `param` is the
//! kind's argument (`delay`: milliseconds to sleep, `short`: bytes to keep
//! of the attempted write, others: unused); `limit` caps the total number
//! of firings at the site (`0` = unlimited). Example:
//!
//! ```text
//! SETDISC_FAULTS='seed=42,server.read=err:0.05,engine.select=panic:1:0:1'
//! ```
//!
//! injects an I/O error on ~5% of socket reads and panics exactly once in
//! the first selection that rolls the die.
//!
//! # Determinism
//!
//! Each site draws from its own counter-indexed stream: the `n`-th call at
//! a site fires iff `splitmix64(seed ⊕ fx(site) ⊕ n)` falls under the
//! rate. Two runs with the same seed and the same per-site call counts
//! therefore inject the same number of faults at the same per-site call
//! indices, independent of cross-site thread interleaving.

use crate::hash::FxHasher;
use crate::rng::Rng;
use std::collections::HashMap;
use std::hash::Hasher as _;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The kinds of fault a site rule can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An `io::Error` (kind `Other`, message names the site).
    Err,
    /// A short write: keep only `param` bytes of the attempted payload.
    Short,
    /// A delay of `param` milliseconds.
    Delay,
    /// Allocation pressure: the caller should behave as if an allocation
    /// was refused (shed, error out) without actually exhausting memory.
    Alloc,
    /// A panic (contained by the service edge's `catch_unwind`).
    Panic,
}

impl FaultKind {
    fn parse(s: &str) -> Result<Self, String> {
        Ok(match s {
            "err" => Self::Err,
            "short" => Self::Short,
            "delay" => Self::Delay,
            "alloc" => Self::Alloc,
            "panic" => Self::Panic,
            other => return Err(format!("unknown fault kind {other:?}")),
        })
    }
}

/// A fault drawn at a site: the kind plus its rule's `param`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    /// What to inject.
    pub kind: FaultKind,
    /// Kind-specific argument (delay ms / short-write byte count).
    pub param: u64,
}

/// One armed rule at a site.
#[derive(Clone, Debug)]
struct SiteRule {
    kind: FaultKind,
    rate: f64,
    param: u64,
    /// Max firings (0 = unlimited).
    limit: u64,
}

#[derive(Default)]
struct SiteState {
    rule: Option<SiteRule>,
    /// Calls seen at this site (indexes the deterministic stream).
    calls: AtomicU64,
    /// Faults actually fired at this site.
    fired: AtomicU64,
}

struct PlanState {
    seed: u64,
    sites: HashMap<String, SiteState>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<PlanState>> = Mutex::new(None);

fn fx(site: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(site.as_bytes());
    h.finish()
}

/// Parses a spec string into a plan and arms it (replacing any previous
/// plan and zeroing all counters). An empty spec disarms injection.
pub fn install_spec(spec: &str) -> Result<(), String> {
    let spec = spec.trim();
    if spec.is_empty() {
        clear();
        return Ok(());
    }
    let mut seed = 0u64;
    let mut sites: HashMap<String, SiteState> = HashMap::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once('=')
            .ok_or_else(|| format!("fault entry {entry:?} is not key=value"))?;
        if key == "seed" {
            seed = value
                .parse()
                .map_err(|_| format!("bad fault seed {value:?}"))?;
            continue;
        }
        let mut parts = value.split(':');
        let kind = FaultKind::parse(parts.next().unwrap_or(""))?;
        let rate: f64 = parts
            .next()
            .ok_or_else(|| format!("fault rule {entry:?} is missing its rate"))?
            .parse()
            .map_err(|_| format!("bad fault rate in {entry:?}"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate in {entry:?} is outside [0,1]"));
        }
        let param: u64 = match parts.next() {
            None => 0,
            Some(p) => p
                .parse()
                .map_err(|_| format!("bad fault param in {entry:?}"))?,
        };
        let limit: u64 = match parts.next() {
            None => 0,
            Some(l) => l
                .parse()
                .map_err(|_| format!("bad fault limit in {entry:?}"))?,
        };
        if parts.next().is_some() {
            return Err(format!("trailing fields in fault rule {entry:?}"));
        }
        sites.insert(
            key.to_string(),
            SiteState {
                rule: Some(SiteRule {
                    kind,
                    rate,
                    param,
                    limit,
                }),
                ..SiteState::default()
            },
        );
    }
    let armed = !sites.is_empty();
    *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = Some(PlanState { seed, sites });
    ARMED.store(armed, Ordering::Release);
    Ok(())
}

/// Arms injection from the `SETDISC_FAULTS` environment variable (no-op
/// when unset or empty). A malformed spec is reported on stderr and
/// ignored — a typo in an ops knob must not take the service down.
pub fn init_from_env() {
    if let Ok(spec) = std::env::var("SETDISC_FAULTS") {
        if let Err(e) = install_spec(&spec) {
            eprintln!("SETDISC_FAULTS ignored: {e}");
        }
    }
}

/// Disarms injection and drops all rules and counters.
pub fn clear() {
    ARMED.store(false, Ordering::Release);
    *PLAN.lock().unwrap_or_else(|p| p.into_inner()) = None;
}

/// True when any fault rule is armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Draws at a site: `None` (by far the common case) to proceed normally,
/// or the fault to inject. Every armed call advances the site's
/// deterministic stream; [`Fault::kind`] dispatch is the caller's job —
/// use the [`trip`] / [`check_io`] / [`short_len`] wrappers where they
/// fit.
pub fn fire(site: &str) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let guard = PLAN.lock().unwrap_or_else(|p| p.into_inner());
    let plan = guard.as_ref()?;
    let state = plan.sites.get(site)?;
    let rule = state.rule.as_ref()?;
    let n = state.calls.fetch_add(1, Ordering::Relaxed);
    // One splitmix-seeded draw per (seed, site, call-index): deterministic
    // under any thread interleaving of *other* sites.
    let draw = Rng::new(plan.seed ^ fx(site) ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15)).f64();
    if draw >= rule.rate {
        return None;
    }
    if rule.limit != 0 && state.fired.load(Ordering::Relaxed) >= rule.limit {
        return None;
    }
    state.fired.fetch_add(1, Ordering::Relaxed);
    Some(Fault {
        kind: rule.kind,
        param: rule.param,
    })
}

/// Number of faults fired at `site` since the plan was armed.
pub fn fired(site: &str) -> u64 {
    let guard = PLAN.lock().unwrap_or_else(|p| p.into_inner());
    guard
        .as_ref()
        .and_then(|p| p.sites.get(site))
        .map_or(0, |s| s.fired.load(Ordering::Relaxed))
}

/// All sites with their fired counts (for reports and assertions).
pub fn counters() -> Vec<(String, u64)> {
    let guard = PLAN.lock().unwrap_or_else(|p| p.into_inner());
    let mut out: Vec<(String, u64)> = guard
        .as_ref()
        .map(|p| {
            p.sites
                .iter()
                .map(|(k, s)| (k.clone(), s.fired.load(Ordering::Relaxed)))
                .collect()
        })
        .unwrap_or_default();
    out.sort();
    out
}

/// Computation-site hook: sleeps on an injected delay, panics on an
/// injected panic, ignores I/O-shaped kinds. The cheap default for hooks
/// inside pure code (`engine.select`, `service.dispatch`).
pub fn trip(site: &str) {
    match fire(site) {
        Some(Fault {
            kind: FaultKind::Delay,
            param,
        }) => std::thread::sleep(Duration::from_millis(param)),
        Some(Fault {
            kind: FaultKind::Panic,
            ..
        }) => panic!("injected fault: panic at {site}"),
        _ => {}
    }
}

/// I/O-site hook: returns an injected `io::Error` (for `Err` and `Alloc`
/// faults), sleeps on `Delay`, panics on `Panic`; `Short` is ignored here
/// (use [`short_len`] where a truncated transfer is representable).
pub fn check_io(site: &str) -> io::Result<()> {
    match fire(site) {
        None
        | Some(Fault {
            kind: FaultKind::Short,
            ..
        }) => Ok(()),
        Some(Fault {
            kind: FaultKind::Delay,
            param,
        }) => {
            std::thread::sleep(Duration::from_millis(param));
            Ok(())
        }
        Some(Fault {
            kind: FaultKind::Panic,
            ..
        }) => panic!("injected fault: panic at {site}"),
        Some(Fault {
            kind: FaultKind::Alloc,
            ..
        }) => Err(io::Error::other(format!(
            "injected fault: allocation pressure at {site}"
        ))),
        Some(Fault {
            kind: FaultKind::Err,
            ..
        }) => Err(io::Error::other(format!(
            "injected fault: io error at {site}"
        ))),
    }
}

/// Allocation-site hook for the memory governor's pressure paths
/// (`registry.load`, `plan.insert`, `snapshot.build`): returns `true`
/// when an `Alloc` fault fires — the caller should behave as if the
/// allocation was refused (degrade, shed) without exhausting real
/// memory. `Delay` sleeps and `Panic` panics as usual; `Err`/`Short`
/// are not allocation-shaped and are ignored here.
pub fn alloc_pressure(site: &str) -> bool {
    match fire(site) {
        Some(Fault {
            kind: FaultKind::Alloc,
            ..
        }) => true,
        Some(Fault {
            kind: FaultKind::Delay,
            param,
        }) => {
            std::thread::sleep(Duration::from_millis(param));
            false
        }
        Some(Fault {
            kind: FaultKind::Panic,
            ..
        }) => panic!("injected fault: panic at {site}"),
        _ => false,
    }
}

/// Transfer-site hook: the number of bytes a write of `len` at this site
/// should actually attempt (`len` unless a `Short` fault fires, then the
/// rule's `param`, capped at `len`).
pub fn short_len(site: &str, len: usize) -> usize {
    match fire(site) {
        Some(Fault {
            kind: FaultKind::Short,
            param,
        }) => len.min(param as usize),
        _ => len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Fault state is process-global: tests touching it serialize here.
    static GUARD: Mutex<()> = Mutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        GUARD.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disarmed_is_silent() {
        let _g = exclusive();
        clear();
        assert!(!armed());
        assert_eq!(fire("anything"), None);
        assert_eq!(fired("anything"), 0);
        trip("anything");
        check_io("anything").unwrap();
        assert_eq!(short_len("anything", 7), 7);
    }

    #[test]
    fn same_seed_same_schedule() {
        let _g = exclusive();
        let draw = |seed: u64| -> Vec<bool> {
            install_spec(&format!("seed={seed},a.site=err:0.3")).unwrap();
            let v = (0..64).map(|_| fire("a.site").is_some()).collect();
            clear();
            v
        };
        let a = draw(42);
        let b = draw(42);
        let c = draw(43);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((1..64).contains(&hits), "rate 0.3 fires sometimes: {hits}");
    }

    #[test]
    fn limits_cap_firing_and_counters_count() {
        let _g = exclusive();
        install_spec("seed=7,b.site=err:1:0:3").unwrap();
        let hits = (0..10).filter(|_| fire("b.site").is_some()).count();
        assert_eq!(hits, 3, "limit caps firings");
        assert_eq!(fired("b.site"), 3);
        assert_eq!(counters(), vec![("b.site".to_string(), 3)]);
        clear();
    }

    #[test]
    fn kinds_dispatch_through_the_wrappers() {
        let _g = exclusive();
        install_spec("seed=1,io.site=err:1,short.site=short:1:5,alloc.site=alloc:1").unwrap();
        let err = check_io("io.site").unwrap_err();
        assert!(err.to_string().contains("io.site"), "{err}");
        assert_eq!(short_len("short.site", 100), 5);
        assert_eq!(short_len("short.site", 3), 3, "short never grows a write");
        assert!(check_io("alloc.site").is_err());
        assert!(alloc_pressure("alloc.site"), "alloc fires as pressure");
        assert!(!alloc_pressure("io.site"), "err is not allocation-shaped");
        assert_eq!(fire("unregistered.site"), None);
        clear();
    }

    #[test]
    fn injected_panics_are_catchable() {
        let _g = exclusive();
        install_spec("seed=1,p.site=panic:1:0:1").unwrap();
        let caught = std::panic::catch_unwind(|| trip("p.site"));
        assert!(caught.is_err(), "panic fault must panic");
        trip("p.site"); // limit reached: no second panic
        assert_eq!(fired("p.site"), 1);
        clear();
    }

    #[test]
    fn spec_errors_are_reported_not_armed() {
        let _g = exclusive();
        clear();
        for bad in [
            "a.site",
            "a.site=zap:0.5",
            "a.site=err",
            "a.site=err:2.0",
            "a.site=err:-0.1",
            "a.site=err:0.5:x",
            "a.site=err:0.5:0:y",
            "a.site=err:0.5:0:1:extra",
            "seed=notanumber",
        ] {
            assert!(install_spec(bad).is_err(), "{bad:?} must be rejected");
            assert!(!armed(), "failed install must not arm: {bad:?}");
        }
        install_spec("").unwrap();
        assert!(!armed());
    }
}
