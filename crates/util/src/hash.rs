//! Fast non-cryptographic hashing: the Fx-style [`FxHasher`] plus 128-bit
//! incremental [`Fingerprint`]s.
//!
//! The lookahead memo caches hash sub-collection identities millions of
//! times per tree; SipHash dominates profiles there. [`FxHasher`] is the
//! classic Fx/FireFox mix — multiply by a large odd constant and rotate.
//! [`Fingerprint`] is a commutative 128-bit content digest (two independent
//! splitmix64 lanes summed over the elements) that supports O(1) incremental
//! update: adding or removing an element is a wrapping add/sub per lane, and
//! the digest of a set difference is the difference of digests. That last
//! property is what makes allocation-free partitioning possible — a view
//! split computes the yes-side digest while merging and derives the no-side
//! digest by subtraction.
//!
//! Neither primitive offers HashDoS protection, which is fine — every key
//! hashed in this workspace is produced by the program itself, never by an
//! adversary. Fingerprint equality is probabilistic: two distinct id sets
//! collide with probability ≈ `p²/2¹²⁸` over `p` distinct fingerprints ever
//! compared, negligible for any realizable workload (`p = 2⁴⁰` gives
//! ≈ `2⁻⁴⁸`).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx mix (64-bit golden-ratio odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher; see module docs for the trade-offs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// The splitmix64 finalizer: a strong 64-bit bijective mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Lane-separation constants (digits of π and e) so the two fingerprint
/// lanes mix the same element through unrelated bijections.
const LANE_LO: u64 = 0x243F_6A88_85A3_08D3;
const LANE_HI: u64 = 0xB7E1_5162_8AED_2A6A;

/// A 128-bit commutative content digest over a set of `u64` elements.
///
/// `Fingerprint` of a set is the lane-wise wrapping sum of
/// [`Fingerprint::of`] over its elements, so it is order-independent,
/// incrementally maintainable (`+=` / `-=` one element's digest), and
/// subtractive across set difference. Equality is probabilistic with
/// collision odds ≈ `p²/2¹²⁸` (see the module docs); every use in this
/// workspace pairs the digest with the set length for extra safety.
#[derive(Copy, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Fingerprint {
    lo: u64,
    hi: u64,
}

impl Fingerprint {
    /// The digest of the empty set.
    pub const ZERO: Fingerprint = Fingerprint { lo: 0, hi: 0 };

    /// The digest of the singleton set `{x}`.
    #[inline]
    pub fn of(x: u64) -> Self {
        let lo = mix64(x ^ LANE_LO);
        Self {
            lo,
            // Chain through the lo lane so the two lanes are unrelated even
            // for structured inputs like consecutive integers.
            hi: mix64(lo ^ LANE_HI),
        }
    }

    /// True for the empty-set digest.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// The raw 128-bit value (for diagnostics and serialization).
    #[inline]
    pub fn as_u128(self) -> u128 {
        (self.hi as u128) << 64 | self.lo as u128
    }

    /// Reconstructs a digest from its [`Self::as_u128`] value (the
    /// deserialization inverse — no mixing happens here).
    #[inline]
    pub fn from_u128(raw: u128) -> Self {
        Self {
            lo: raw as u64,
            hi: (raw >> 64) as u64,
        }
    }
}

impl std::ops::Add for Fingerprint {
    type Output = Fingerprint;
    #[inline]
    fn add(self, rhs: Fingerprint) -> Fingerprint {
        Fingerprint {
            lo: self.lo.wrapping_add(rhs.lo),
            hi: self.hi.wrapping_add(rhs.hi),
        }
    }
}

impl std::ops::AddAssign for Fingerprint {
    #[inline]
    fn add_assign(&mut self, rhs: Fingerprint) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for Fingerprint {
    type Output = Fingerprint;
    #[inline]
    fn sub(self, rhs: Fingerprint) -> Fingerprint {
        Fingerprint {
            lo: self.lo.wrapping_sub(rhs.lo),
            hi: self.hi.wrapping_sub(rhs.hi),
        }
    }
}

impl std::ops::SubAssign for Fingerprint {
    #[inline]
    fn sub_assign(&mut self, rhs: Fingerprint) {
        *self = *self - rhs;
    }
}

impl std::iter::Sum for Fingerprint {
    fn sum<I: Iterator<Item = Fingerprint>>(iter: I) -> Fingerprint {
        iter.fold(Fingerprint::ZERO, |acc, fp| acc + fp)
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
    }

    #[test]
    fn distinguishes_lengths_of_zero_padding() {
        // A trailing partial chunk encodes its length, so `[0]` and `[0,0]`
        // must hash differently even though the padded words are equal.
        assert_ne!(hash_bytes(&[0]), hash_bytes(&[0, 0]));
        assert_ne!(hash_bytes(&[]), hash_bytes(&[0]));
    }

    #[test]
    fn distinguishes_neighbouring_integers() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn fingerprint_is_commutative_and_subtractive() {
        let a = Fingerprint::of(3);
        let b = Fingerprint::of(1_000_000);
        let c = Fingerprint::of(u64::MAX);
        assert_eq!(a + b + c, c + a + b);
        assert_eq!((a + b + c) - b, a + c);
        let mut inc = Fingerprint::ZERO;
        inc += a;
        inc += b;
        assert_eq!(inc, a + b);
        inc -= a;
        assert_eq!(inc, b);
        assert_eq!([a, b, c].into_iter().sum::<Fingerprint>(), a + b + c);
    }

    #[test]
    fn fingerprint_zero_is_empty_digest() {
        assert!(Fingerprint::ZERO.is_zero());
        assert_eq!(Fingerprint::default(), Fingerprint::ZERO);
        assert!(!Fingerprint::of(0).is_zero(), "element 0 must still mix");
        assert_eq!(Fingerprint::ZERO.as_u128(), 0);
    }

    #[test]
    fn fingerprint_u128_round_trips() {
        for fp in [
            Fingerprint::ZERO,
            Fingerprint::of(0),
            Fingerprint::of(42) + Fingerprint::of(u64::MAX),
        ] {
            assert_eq!(Fingerprint::from_u128(fp.as_u128()), fp);
        }
    }

    #[test]
    fn fingerprints_of_dense_ids_are_distinct() {
        // Consecutive small integers are the worst case for an additive
        // digest; both lanes must separate them and their pairwise sums.
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..2_000 {
            assert!(seen.insert(Fingerprint::of(i)), "singleton collision {i}");
        }
        // All 2-subsets of a small range — an additive digest over a weak
        // element hash (e.g. identity) would collide constantly here.
        let mut pair_seen = std::collections::HashSet::new();
        for i in 0u64..64 {
            for j in (i + 1)..64 {
                let fp = Fingerprint::of(i) + Fingerprint::of(j);
                assert!(pair_seen.insert(fp), "pair collision {{{i},{j}}}");
            }
        }
    }

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        // Zero is the mixer's fixed point; Fingerprint::of pre-whitens with
        // a lane constant so no real input ever hits it.
        assert_eq!(mix64(0), 0);
        assert_ne!(mix64(1), 0);
        assert_ne!(mix64(1), mix64(2));
    }

    #[test]
    fn chunked_writes_match_single_write() {
        // Hashing the same logical bytes through `write` must not depend on
        // how callers split their buffers only when split on 8-byte borders.
        let data: Vec<u8> = (0..64).collect();
        let whole = hash_bytes(&data);
        let mut h = FxHasher::default();
        h.write(&data[..32]);
        h.write(&data[32..]);
        assert_eq!(whole, h.finish());
    }
}
