//! A fast, non-cryptographic hasher in the style of rustc's `FxHasher`.
//!
//! The lookahead memo cache hashes boxed slices of 32-bit set ids millions of
//! times per tree; SipHash dominates profiles there. This is the classic
//! Fx/FireFox mix: multiply by a large odd constant and rotate. It offers no
//! HashDoS protection, which is fine — every key hashed in this workspace is
//! produced by the program itself, never by an adversary.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant used by the Fx mix (64-bit golden-ratio odd).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast non-cryptographic hasher; see module docs for the trade-offs.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(bytes: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(bytes);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"hello world"), hash_bytes(b"hello world"));
    }

    #[test]
    fn distinguishes_lengths_of_zero_padding() {
        // A trailing partial chunk encodes its length, so `[0]` and `[0,0]`
        // must hash differently even though the padded words are equal.
        assert_ne!(hash_bytes(&[0]), hash_bytes(&[0, 0]));
        assert_ne!(hash_bytes(&[]), hash_bytes(&[0]));
    }

    #[test]
    fn distinguishes_neighbouring_integers() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn map_alias_works() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn chunked_writes_match_single_write() {
        // Hashing the same logical bytes through `write` must not depend on
        // how callers split their buffers only when split on 8-byte borders.
        let data: Vec<u8> = (0..64).collect();
        let whole = hash_bytes(&data);
        let mut h = FxHasher::default();
        h.write(&data[..32]);
        h.write(&data[32..]);
        assert_eq!(whole, h.finish());
    }
}
