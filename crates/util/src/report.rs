//! Minimal tabular report emitters (markdown and CSV) for the experiment
//! harness. Hand-rolled so the workspace carries no serialization
//! dependencies; the formats are trivial.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// A simple table: a header row plus data rows of equal arity.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table with a bold title line.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }
}

/// A minimal JSON object builder for flat benchmark artifacts
/// (`BENCH_*.json`). Hand-rolled like [`Table`] so the workspace stays
/// dependency-free; supports exactly the shapes the bench emitters need:
/// string / integer / float fields and arrays of nested objects.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    // Values are stored pre-encoded; keys are escaped at encode time.
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// New empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Adds an unsigned integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field; non-finite values encode as `null`.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let enc = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), enc));
        self
    }

    /// Adds an array-of-strings field.
    pub fn strs(mut self, key: &str, items: &[String]) -> Self {
        let inner: Vec<String> = items
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect();
        self.fields
            .push((key.to_string(), format!("[{}]", inner.join(","))));
        self
    }

    /// Adds an array-of-unsigned-integers field.
    pub fn ints(mut self, key: &str, items: impl IntoIterator<Item = u64>) -> Self {
        let inner: Vec<String> = items.into_iter().map(|v| v.to_string()).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", inner.join(","))));
        self
    }

    /// Adds a nested-object field.
    pub fn obj(mut self, key: &str, value: JsonObject) -> Self {
        self.fields.push((key.to_string(), value.encode()));
        self
    }

    /// Adds an array-of-objects field.
    pub fn array(mut self, key: &str, items: Vec<JsonObject>) -> Self {
        let inner: Vec<String> = items.iter().map(JsonObject::encode).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", inner.join(","))));
        self
    }

    /// Encodes as a compact JSON object.
    pub fn encode(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Encodes with a trailing newline and writes to `path`, creating parent
    /// directories.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.encode().as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()
    }
}

/// A parsed JSON value — the read half of the hand-rolled JSON story
/// ([`JsonObject`] is the write half). Objects preserve field order; keys
/// may repeat (last probe via [`JsonValue::get`] returns the first match,
/// mirroring typical reader behaviour).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object as an ordered field list.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Field lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact unsigned integer (rejects negatives,
    /// fractions, and magnitudes beyond 2⁵³ where f64 loses exactness).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Error from [`parse_json`]: a message plus the byte offset it refers to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Minimal but strict: full escape handling including
/// `\uXXXX` surrogate pairs, standard number grammar, and a nesting-depth
/// limit of 128 so adversarial wire input cannot overflow the stack.
pub fn parse_json(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const JSON_MAX_DEPTH: usize = 128;

impl JsonParser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > JSON_MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.expect_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.expect_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.expect_literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if !self.eat(b':') {
                return Err(self.err("expected `:` after key"));
            }
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b'}') {
                return Ok(JsonValue::Object(fields));
            }
            return Err(self.err("expected `,` or `}`"));
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            if self.eat(b']') {
                return Ok(JsonValue::Array(items));
            }
            return Err(self.err("expected `,` or `]`"));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // consume '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !(self.eat(b'\\') && self.eat(b'u')) {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character"));
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid by construction).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end])
                            .expect("input was a valid &str"),
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.eat(b'.') {
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Grammar-valid overflow parses to ±inf rather than Err; reject it
        // explicitly so a non-finite Num can never enter the value space
        // (the JsonObject writer encodes non-finite as null, so letting it
        // through would break the reader/writer round-trip).
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(JsonValue::Num(n)),
            _ => Err(self.err("number out of range")),
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a duration compactly: `412ns`, `3.21µs`, `14.8ms`, `2.35s`, `1m04s`.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns < 60 * 1_000_000_000u128 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else {
        let secs = d.as_secs();
        format!("{}m{:02}s", secs / 60, secs % 60)
    }
}

/// Formats a float with `prec` decimals, trimming `-0.000` to `0.000`.
pub fn fmt_f64(x: f64, prec: usize) -> String {
    let s = format!("{x:.prec$}");
    if s.starts_with('-') && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("**Demo**"));
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 1 | 2  |"));
        assert_eq!(md.lines().count(), 5); // title, blank, header, sep, row
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["h1", "h,2"]);
        t.row(vec!["plain".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "h1,\"h,2\"");
        assert_eq!(lines.next().unwrap(), "plain,\"quo\"\"te\"");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("setdisc-util-test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["v".into()]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\nv\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_object_encodes_and_escapes() {
        let obj = JsonObject::new()
            .str("name", "he said \"hi\"\n")
            .int("iters", 10)
            .num("median_ns", 1234.5)
            .num("bad", f64::NAN)
            .array("kernels", vec![JsonObject::new().str("kernel", "klp")]);
        assert_eq!(
            obj.encode(),
            "{\"name\":\"he said \\\"hi\\\"\\n\",\"iters\":10,\
             \"median_ns\":1234.5,\"bad\":null,\
             \"kernels\":[{\"kernel\":\"klp\"}]}"
        );
    }

    #[test]
    fn json_write_roundtrip() {
        let dir = std::env::temp_dir().join("setdisc-util-json-test");
        let path = dir.join("b.json");
        JsonObject::new().int("x", 1).write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":1}\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_parse_scalars_and_structure() {
        assert_eq!(parse_json("null").unwrap(), JsonValue::Null);
        assert_eq!(parse_json(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse_json("-12.5e1").unwrap(), JsonValue::Num(-125.0));
        assert_eq!(
            parse_json("\"a\\nb\"").unwrap(),
            JsonValue::Str("a\nb".into())
        );
        let v = parse_json(r#"{"op":"create","k":2,"examples":["x","y"],"deep":{"a":[1,null]}}"#)
            .unwrap();
        assert_eq!(v.get("op").and_then(JsonValue::as_str), Some("create"));
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(2));
        let ex = v.get("examples").and_then(JsonValue::as_array).unwrap();
        assert_eq!(ex.len(), 2);
        assert_eq!(
            v.get("deep")
                .unwrap()
                .get("a")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            2
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn json_parse_escapes_and_unicode() {
        let v = parse_json(r#""\u00e9\u20ac\ud83d\ude00\t\"\\""#).unwrap();
        assert_eq!(v.as_str(), Some("é€😀\t\"\\"));
        // Raw multi-byte UTF-8 passes through untouched.
        assert_eq!(parse_json("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn json_parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "[1,]",
            "[1 2]",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\q\"",
            "\"\\ud800\"",
            "truex",
            "null null",
            "1e999",
            "-1e999",
            "{\"a\":1} trailing",
            "\u{1}",
        ] {
            let err = parse_json(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.to_string().contains("invalid JSON"));
        }
        // Depth bomb must error, not overflow the stack.
        let bomb = "[".repeat(100_000);
        assert!(parse_json(&bomb).is_err());
    }

    #[test]
    fn json_reader_roundtrips_writer_output() {
        let doc = JsonObject::new()
            .str("name", "he said \"hi\"\n")
            .int("iters", 10)
            .num("median_ns", 1234.5)
            .array("kernels", vec![JsonObject::new().str("kernel", "klp")]);
        let v = parse_json(&doc.encode()).unwrap();
        assert_eq!(
            v.get("name").and_then(JsonValue::as_str),
            Some("he said \"hi\"\n")
        );
        assert_eq!(v.get("iters").and_then(JsonValue::as_u64), Some(10));
        assert_eq!(v.get("median_ns").and_then(JsonValue::as_f64), Some(1234.5));
        let kernels = v.get("kernels").and_then(JsonValue::as_array).unwrap();
        assert_eq!(
            kernels[0].get("kernel").and_then(JsonValue::as_str),
            Some("klp")
        );
    }

    #[test]
    fn json_u64_accessor_is_exact() {
        assert_eq!(parse_json("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse_json("-1").unwrap().as_u64(), None);
        assert_eq!(parse_json("1.5").unwrap().as_u64(), None);
        assert_eq!(parse_json("1e300").unwrap().as_u64(), None);
        assert_eq!(parse_json("\"3\"").unwrap().as_u64(), None);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_nanos(412)), "412ns");
        assert_eq!(fmt_duration(Duration::from_micros(3210)), "3.21ms");
        assert_eq!(fmt_duration(Duration::from_millis(2350)), "2.35s");
        assert_eq!(fmt_duration(Duration::from_secs(64)), "1m04s");
    }

    #[test]
    fn f64_formats() {
        assert_eq!(fmt_f64(2.857142, 3), "2.857");
        assert_eq!(fmt_f64(-0.00001, 3), "0.000");
        assert_eq!(fmt_f64(-1.5, 1), "-1.5");
    }
}
