//! Minimal tabular report emitters (markdown and CSV) for the experiment
//! harness. Hand-rolled so the workspace carries no serialization
//! dependencies; the formats are trivial.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// A simple table: a header row plus data rows of equal arity.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as a GitHub-flavored markdown table with a bold title line.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "**{}**\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {cell:<w$} |");
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }
}

/// A minimal JSON object builder for flat benchmark artifacts
/// (`BENCH_*.json`). Hand-rolled like [`Table`] so the workspace stays
/// dependency-free; supports exactly the shapes the bench emitters need:
/// string / integer / float fields and arrays of nested objects.
#[derive(Clone, Debug, Default)]
pub struct JsonObject {
    // Values are stored pre-encoded; keys are escaped at encode time.
    fields: Vec<(String, String)>,
}

impl JsonObject {
    /// New empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.fields
            .push((key.to_string(), format!("\"{}\"", json_escape(value))));
        self
    }

    /// Adds an unsigned integer field.
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.fields.push((key.to_string(), value.to_string()));
        self
    }

    /// Adds a float field; non-finite values encode as `null`.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        let enc = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.fields.push((key.to_string(), enc));
        self
    }

    /// Adds an array-of-objects field.
    pub fn array(mut self, key: &str, items: Vec<JsonObject>) -> Self {
        let inner: Vec<String> = items.iter().map(JsonObject::encode).collect();
        self.fields
            .push((key.to_string(), format!("[{}]", inner.join(","))));
        self
    }

    /// Encodes as a compact JSON object.
    pub fn encode(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Encodes with a trailing newline and writes to `path`, creating parent
    /// directories.
    pub fn write(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.encode().as_bytes())?;
        f.write_all(b"\n")?;
        f.flush()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a duration compactly: `412ns`, `3.21µs`, `14.8ms`, `2.35s`, `1m04s`.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns < 60 * 1_000_000_000u128 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else {
        let secs = d.as_secs();
        format!("{}m{:02}s", secs / 60, secs % 60)
    }
}

/// Formats a float with `prec` decimals, trimming `-0.000` to `0.000`.
pub fn fmt_f64(x: f64, prec: usize) -> String {
    let s = format!("{x:.prec$}");
    if s.starts_with('-') && s[1..].chars().all(|c| c == '0' || c == '.') {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("**Demo**"));
        assert!(md.contains("| a | bb |"));
        assert!(md.contains("| 1 | 2  |"));
        assert_eq!(md.lines().count(), 5); // title, blank, header, sep, row
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["h1", "h,2"]);
        t.row(vec!["plain".into(), "quo\"te".into()]);
        let csv = t.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next().unwrap(), "h1,\"h,2\"");
        assert_eq!(lines.next().unwrap(), "plain,\"quo\"\"te\"");
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        Table::new("x", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn write_csv_roundtrip() {
        let dir = std::env::temp_dir().join("setdisc-util-test");
        let path = dir.join("t.csv");
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["v".into()]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "a\nv\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn json_object_encodes_and_escapes() {
        let obj = JsonObject::new()
            .str("name", "he said \"hi\"\n")
            .int("iters", 10)
            .num("median_ns", 1234.5)
            .num("bad", f64::NAN)
            .array("kernels", vec![JsonObject::new().str("kernel", "klp")]);
        assert_eq!(
            obj.encode(),
            "{\"name\":\"he said \\\"hi\\\"\\n\",\"iters\":10,\
             \"median_ns\":1234.5,\"bad\":null,\
             \"kernels\":[{\"kernel\":\"klp\"}]}"
        );
    }

    #[test]
    fn json_write_roundtrip() {
        let dir = std::env::temp_dir().join("setdisc-util-json-test");
        let path = dir.join("b.json");
        JsonObject::new().int("x", 1).write(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"x\":1}\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(fmt_duration(Duration::from_nanos(412)), "412ns");
        assert_eq!(fmt_duration(Duration::from_micros(3210)), "3.21ms");
        assert_eq!(fmt_duration(Duration::from_millis(2350)), "2.35s");
        assert_eq!(fmt_duration(Duration::from_secs(64)), "1m04s");
    }

    #[test]
    fn f64_formats() {
        assert_eq!(fmt_f64(2.857142, 3), "2.857");
        assert_eq!(fmt_f64(-0.00001, 3), "0.000");
        assert_eq!(fmt_f64(-1.5, 1), "-1.5");
    }
}
