//! Vendor-free telemetry: a lock-free metric core, hot-path span timing
//! at named sites, and a tiny leveled stderr logger (DESIGN.md §12).
//!
//! The design mirrors [`crate::faults`]: the same named hook sites that
//! PR 7 compiled into production paths for chaos injection here get
//! *eyes* instead. Disarmed, every hook costs one relaxed atomic load;
//! armed (via [`arm`], the `SETDISC_OBS` environment variable, or the
//! `serve --metrics` flag), spans record elapsed microseconds into
//! log2-bucketed histograms.
//!
//! **Lock-free by sharding.** Recording never contends: each thread owns
//! a private shard (a fixed `Site`-indexed array of histograms) that it
//! bumps with relaxed atomic adds. Shards are registered once per thread
//! under a mutex and merged only at [`snapshot`] time, so the hot path
//! takes no lock and shares no cache line with other recorders. Counts
//! are monotone: shards of dead threads are retained, never reset, so a
//! later snapshot can only grow.
//!
//! **Histograms.** Values land in `⌊log₂ v⌋`-indexed buckets (bucket 0
//! holds zero). Quantile extraction walks the cumulative counts and
//! reports the *inclusive upper bound* of the bucket holding the q-th
//! event — exact to within one power of two, which is the honesty level
//! a 40-word fixed array can promise without allocation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of log2 buckets per histogram. Bucket 0 holds zeros; bucket
/// `b ≥ 1` holds values in `[2^(b-1), 2^b)`; the last bucket absorbs
/// everything above (`2^38` µs is ~76 hours — far past any span here).
pub const BUCKETS: usize = 40;

/// The named instrumentation sites — the same taxonomy `crate::faults`
/// trips, plus the counter-only plan and prune sites. Fixed at compile
/// time so a shard is a flat array and recording is an index, not a map.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Site {
    /// `Engine::next_question` — one event per selection (span, µs).
    EngineSelect,
    /// `Engine::answer_full` — one event per applied answer (span, µs).
    EngineAnswer,
    /// `SubCollection::partition_into` (span, µs).
    Partition,
    /// The subcollection counting kernel (span, µs).
    Count,
    /// Plan-cache lookup served a cached selection (count).
    PlanHit,
    /// Plan-cache lookup missed; the strategy ran (count).
    PlanMiss,
    /// A fresh selection was recorded into the plan cache (count).
    PlanRecord,
    /// `setdisc_plan::save_plan` (span, µs).
    PlanSave,
    /// One periodic plan-checkpointer persist (span, µs).
    PlanCheckpoint,
    /// `Service::dispatch` — one event per wire request (span, µs).
    ServiceDispatch,
    /// One transport read syscall (span, µs — includes peer think time).
    ServerRead,
    /// One response line written + flushed (span, µs).
    ServerWrite,
    /// One accepted TCP connection (count).
    ServerAccept,
    /// Table-4 prune statistic: informative entities per selection
    /// (value histogram; `sum` is the paper's column total).
    SelectInformative,
    /// Table-4 prune statistic: entities actually evaluated per
    /// selection after pruning (value histogram).
    SelectEvaluated,
    /// Cost-model calibration: measured element-pass cost in milli-ns
    /// per element, recorded at the counting-dispatch sites when the
    /// element kernel runs (value histogram; feeds the `core::cost`
    /// re-fit).
    CostModelElements,
    /// Cost-model calibration: measured postings-sweep cost in milli-ns
    /// per scan-cost unit (value histogram).
    CostModelPostings,
}

/// Every site, in stable exposition order.
pub const SITES: [Site; 17] = [
    Site::EngineSelect,
    Site::EngineAnswer,
    Site::Partition,
    Site::Count,
    Site::PlanHit,
    Site::PlanMiss,
    Site::PlanRecord,
    Site::PlanSave,
    Site::PlanCheckpoint,
    Site::ServiceDispatch,
    Site::ServerRead,
    Site::ServerWrite,
    Site::ServerAccept,
    Site::SelectInformative,
    Site::SelectEvaluated,
    Site::CostModelElements,
    Site::CostModelPostings,
];

impl Site {
    /// The wire/exposition name (shared with the `faults` site taxonomy
    /// where a fault hook exists at the same place).
    pub fn name(self) -> &'static str {
        match self {
            Site::EngineSelect => "engine.select",
            Site::EngineAnswer => "engine.answer",
            Site::Partition => "partition",
            Site::Count => "count",
            Site::PlanHit => "plan.hit",
            Site::PlanMiss => "plan.miss",
            Site::PlanRecord => "plan.record",
            Site::PlanSave => "plan.save",
            Site::PlanCheckpoint => "plan.checkpoint",
            Site::ServiceDispatch => "service.dispatch",
            Site::ServerRead => "server.read",
            Site::ServerWrite => "server.write",
            Site::ServerAccept => "server.accept",
            Site::SelectInformative => "select.informative",
            Site::SelectEvaluated => "select.evaluated",
            Site::CostModelElements => "cost_model.elements",
            Site::CostModelPostings => "cost_model.postings",
        }
    }

    fn index(self) -> usize {
        // Declaration order matches [`SITES`] (asserted in tests).
        self as usize
    }
}

/// A monotone counter — the metric core's storage type for values that
/// only grow (the service's edge counters live on this, so `status` and
/// `metrics` read the *same* cells and can never disagree).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const so it can seed statics).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one (relaxed — counters tolerate reordering, never loss).
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge for level-style values (resident bytes, open
/// sessions). Unlike [`Counter`] it may move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Sets the level.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The memory-accounting components whose byte levels the governor
/// publishes (DESIGN.md §13). Fixed at compile time so the gauges are a
/// flat array and the Prometheus label set is closed.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemComponent {
    /// Loaded snapshot collections (bitmaps, postings, labels, tables).
    Collections,
    /// Plan caches, per-shard counters summed across collections.
    PlanCaches,
    /// Session-table entries (engines, pending queues, trace rings).
    Sessions,
}

/// Every memory component, in stable exposition order.
pub const MEM_COMPONENTS: [MemComponent; 3] = [
    MemComponent::Collections,
    MemComponent::PlanCaches,
    MemComponent::Sessions,
];

impl MemComponent {
    /// The `component` label value in `setdisc_mem_bytes{component=...}`
    /// and the field suffix in `{"op":"metrics"}`.
    pub fn name(self) -> &'static str {
        match self {
            MemComponent::Collections => "collections",
            MemComponent::PlanCaches => "plan_caches",
            MemComponent::Sessions => "sessions",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// The always-on memory gauges — unlike the span histograms these are
/// not gated on [`armed`]: byte accounting is what the governor steers
/// by, so it is never optional.
static MEM_GAUGES: [Gauge; 3] = [const { Gauge::new() }; 3];

/// Publishes the accounted byte level for one component.
pub fn mem_set(component: MemComponent, bytes: u64) {
    MEM_GAUGES[component.index()].set(bytes);
}

/// The last published byte level for one component.
pub fn mem_bytes(component: MemComponent) -> u64 {
    MEM_GAUGES[component.index()].get()
}

/// Sum of every component's last published level.
pub fn mem_total() -> u64 {
    MEM_COMPONENTS.iter().map(|c| mem_bytes(*c)).sum()
}

/// A lock-free log2-bucketed histogram: concurrent recorders bump
/// relaxed atomics, readers fold the buckets into a
/// [`HistogramSnapshot`]. No count is ever lost — `record` is a single
/// `fetch_add` per cell.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Folds the current cells into an owned snapshot. Concurrent
    /// recording may land between cell reads — the snapshot is a
    /// consistent *lower bound* per cell, never a corruption.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: [0; BUCKETS],
        };
        for (out, cell) in snap.buckets.iter_mut().zip(&self.buckets) {
            *out = cell.load(Ordering::Relaxed);
        }
        snap
    }
}

/// The log2 bucket index for a value.
pub fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The inclusive upper bound a bucket reports as its representative.
pub fn bucket_upper(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= 63 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// An owned, mergeable histogram state — also the workspace's shared
/// percentile type (the load harness folds its latency samples through
/// this instead of private sorting code).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Events recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket event counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Records one value (the single-threaded twin of
    /// [`Histogram::record`]).
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_of(v)] += 1;
    }

    /// Adds every cell of `other` into `self`. Merging is commutative
    /// and associative, which is the whole shard argument: any merge
    /// order of per-thread shards yields the same totals.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// The q-quantile (`0.0 ..= 1.0`) as the inclusive upper bound of
    /// the bucket holding the ⌈q·count⌉-th event; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        bucket_upper(BUCKETS - 1)
    }
}

/// One thread's private cells: a histogram per site.
struct Shard {
    cells: [Histogram; 17],
}

impl Shard {
    fn new() -> Self {
        Self {
            cells: [const { Histogram::new() }; 17],
        }
    }
}

/// Registry of every live (or once-live) thread shard. Locked only on
/// thread-first-record and on snapshot — never on the recording path.
static SHARDS: Mutex<Vec<Arc<Shard>>> = Mutex::new(Vec::new());

/// Whether recording is armed. Relaxed load — the only cost a disarmed
/// hook pays.
static ARMED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static LOCAL: Arc<Shard> = {
        let shard = Arc::new(Shard::new());
        SHARDS
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(Arc::clone(&shard));
        shard
    };
}

/// True when telemetry is recording.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Arms or disarms recording process-wide. Counts survive disarming
/// (they are monotone); only *new* events stop.
pub fn arm(on: bool) {
    ARMED.store(on, Ordering::Release);
}

/// Arms from the `SETDISC_OBS` environment variable (`1`/`true`/`on`,
/// case-insensitive). Anything else — including unset — leaves the
/// current state alone, so `--metrics` and the env compose.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("SETDISC_OBS") {
        if matches!(v.to_ascii_lowercase().as_str(), "1" | "true" | "on") {
            arm(true);
        }
    }
}

/// Records `value` at `site` when armed; one relaxed load otherwise.
pub fn record(site: Site, value: u64) {
    if !armed() {
        return;
    }
    LOCAL.with(|shard| shard.cells[site.index()].record(value));
}

/// Counts one event at `site` (a zero-valued record — bumps `count`,
/// leaves `sum` alone).
pub fn hit(site: Site) {
    record(site, 0);
}

/// An armed-at-creation span; records elapsed µs at drop. Disarmed it
/// holds no timestamp and drops for free.
pub struct SpanGuard {
    site: Site,
    started: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(started) = self.started {
            let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            LOCAL.with(|shard| shard.cells[self.site.index()].record(us));
        }
    }
}

/// Starts a span at `site`. The disarmed fast path is one relaxed load
/// and a `None` — no clock read, no allocation.
pub fn span(site: Site) -> SpanGuard {
    SpanGuard {
        site,
        started: armed().then(Instant::now),
    }
}

/// Per-site aggregate served to the exposition surface.
#[derive(Clone, Debug)]
pub struct SiteStats {
    /// The site's exposition name.
    pub name: &'static str,
    /// Merged histogram across every thread shard.
    pub histogram: HistogramSnapshot,
}

/// Merges every thread shard into a per-site aggregate, in [`SITES`]
/// order. Sites that never recorded report zeroed histograms, so the
/// schema is stable from the first scrape.
pub fn snapshot() -> Vec<SiteStats> {
    let shards: Vec<Arc<Shard>> = SHARDS
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .map(Arc::clone)
        .collect();
    SITES
        .iter()
        .enumerate()
        .map(|(i, site)| {
            let mut merged = HistogramSnapshot::default();
            for shard in &shards {
                merged.merge(&shard.cells[i].snapshot());
            }
            SiteStats {
                name: site.name(),
                histogram: merged,
            }
        })
        .collect()
}

/// Severity for [`log`] lines.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Level {
    /// Normal operational notices (boot, persist, drain).
    Info,
    /// Degraded but continuing (corrupt plan set aside, bad env knob).
    Warn,
    /// Failing an operation (unused so far; kept for symmetry).
    Error,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Formats one diagnostic line: uniform `setdisc <level>: ` prefix,
/// deliberately timestamp-free so transcripts diff cleanly and scripts
/// can grep message substrings.
pub fn format_line(level: Level, msg: &str) -> String {
    format!("setdisc {}: {msg}", level.tag())
}

/// Emits one diagnostic line to stderr.
pub fn log(level: Level, msg: &str) {
    eprintln!("{}", format_line(level, msg));
}

/// Shorthand for [`log`]`(Level::Info, ..)`.
pub fn info(msg: &str) {
    log(Level::Info, msg);
}

/// Shorthand for [`log`]`(Level::Warn, ..)`.
pub fn warn(msg: &str) {
    log(Level::Warn, msg);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Process-global armed state: tests that arm serialize here (same
    /// pattern as `faults::tests`).
    static GUARD: Mutex<()> = Mutex::new(());

    fn site_count(name: &str) -> u64 {
        snapshot()
            .iter()
            .find(|s| s.name == name)
            .expect("known site")
            .histogram
            .count
    }

    #[test]
    fn site_indices_match_exposition_order() {
        for (i, site) in SITES.iter().enumerate() {
            assert_eq!(site.index(), i, "{}", site.name());
        }
    }

    #[test]
    fn buckets_partition_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for b in 1..BUCKETS - 1 {
            // The representative upper bound lives in its own bucket.
            assert_eq!(bucket_of(bucket_upper(b)), b, "bucket {b}");
        }
    }

    #[test]
    fn quantiles_walk_cumulative_buckets() {
        let mut h = HistogramSnapshot::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 1106);
        // Median event is the 3rd (value 3, bucket 2, upper bound 3).
        assert_eq!(h.quantile(0.5), 3);
        // The tail event (1000) lands in bucket 10 → upper 1023.
        assert_eq!(h.quantile(1.0), 1023);
        assert_eq!(h.quantile(0.0), 1, "rank clamps to the first event");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact() {
        let mut h = HistogramSnapshot::default();
        let mut values: Vec<u64> = (0..500).map(|i| (i * i * 7 + 13) % 9001).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = values[((values.len() - 1) as f64 * q).round() as usize];
            let approx = h.quantile(q);
            let (a, b) = (bucket_of(exact), bucket_of(approx));
            assert!(
                a.abs_diff(b) <= 1,
                "q={q}: exact {exact} (bucket {a}) vs {approx} (bucket {b})"
            );
        }
    }

    #[test]
    fn merge_is_lossless_and_order_free() {
        let mut parts: Vec<HistogramSnapshot> = Vec::new();
        let mut reference = HistogramSnapshot::default();
        for chunk in 0..4u64 {
            let mut part = HistogramSnapshot::default();
            for i in 0..100 {
                let v = chunk * 1000 + i * 37;
                part.record(v);
                reference.record(v);
            }
            parts.push(part);
        }
        let mut forward = HistogramSnapshot::default();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = HistogramSnapshot::default();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, reference);
        assert_eq!(backward, reference);
    }

    #[test]
    fn disarmed_hooks_record_nothing() {
        let _guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        arm(false);
        let before = site_count("plan.save");
        record(Site::PlanSave, 42);
        hit(Site::PlanSave);
        drop(span(Site::PlanSave));
        assert_eq!(site_count("plan.save"), before);
    }

    #[test]
    fn armed_spans_and_counts_land_in_the_snapshot() {
        let _guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        arm(true);
        let before = site_count("plan.checkpoint");
        record(Site::PlanCheckpoint, 7);
        hit(Site::PlanCheckpoint);
        drop(span(Site::PlanCheckpoint));
        arm(false);
        assert_eq!(site_count("plan.checkpoint"), before + 3);
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let _guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        arm(true);
        let before = site_count("select.evaluated");
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                scope.spawn(move || {
                    for i in 0..1000 {
                        record(Site::SelectEvaluated, t * 1000 + i);
                    }
                });
            }
        });
        arm(false);
        assert_eq!(site_count("select.evaluated"), before + 8000);
    }

    #[test]
    fn counters_and_gauges_read_back() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(9);
        assert_eq!(g.get(), 9);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn mem_gauges_are_always_on_and_total_sums_components() {
        let _guard = GUARD.lock().unwrap_or_else(|p| p.into_inner());
        arm(false); // gauges must work disarmed — they are never optional
        for c in MEM_COMPONENTS {
            mem_set(c, 0);
        }
        mem_set(MemComponent::Collections, 100);
        mem_set(MemComponent::PlanCaches, 40);
        mem_set(MemComponent::Sessions, 2);
        assert_eq!(mem_bytes(MemComponent::Collections), 100);
        assert_eq!(mem_total(), 142);
        mem_set(MemComponent::Collections, 10); // gauges move both ways
        assert_eq!(mem_total(), 52);
        assert_eq!(
            MEM_COMPONENTS.map(MemComponent::name),
            ["collections", "plan_caches", "sessions"]
        );
        for c in MEM_COMPONENTS {
            mem_set(c, 0);
        }
    }

    #[test]
    fn log_lines_are_uniformly_prefixed_and_timestamp_free() {
        assert_eq!(
            format_line(Level::Warn, "SETDISC_THREADS=0 ignored"),
            "setdisc warn: SETDISC_THREADS=0 ignored"
        );
        assert_eq!(
            format_line(Level::Info, "loaded plan cache: 12 nodes"),
            "setdisc info: loaded plan cache: 12 nodes"
        );
        assert_eq!(format_line(Level::Error, "x"), "setdisc error: x");
    }
}
