//! Fuzz-style totality properties for `report::parse_json`, the parser
//! every wire request and response goes through. Three contracts: the
//! parser is total (never panics, any input → `Ok` or a positioned
//! `JsonError`), field order and unknown fields never matter for the
//! session-mode request/response shapes, and malformed `confident` /
//! `prior` / `choice` payloads are rejected with a byte offset — either
//! by the grammar or by the typed accessors.

use proptest::prelude::*;
use setdisc_util::report::{parse_json, JsonValue};

/// Encodes a `JsonValue` back to a document the parser must accept and
/// reproduce exactly. Numbers are restricted to integers by the
/// generator below, so `{}` formatting is lossless here.
fn encode(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".into(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => {
            if n.fract() == 0.0 {
                format!("{}", *n as i64)
            } else {
                format!("{n}")
            }
        }
        JsonValue::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        JsonValue::Array(items) => {
            let inner: Vec<String> = items.iter().map(encode).collect();
            format!("[{}]", inner.join(","))
        }
        JsonValue::Object(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(k, v)| format!("{}:{}", encode(&JsonValue::Str(k.clone())), encode(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// A short lowercase identifier derived from one seed word.
fn key_from(word: u64) -> String {
    let mut w = word | 1;
    let len = 1 + (word % 6) as usize;
    let mut s = String::new();
    for _ in 0..len {
        s.push((b'a' + (w % 26) as u8) as char);
        w = w.rotate_left(7).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    s
}

/// A printable-ASCII string (quotes and backslashes included on purpose —
/// the encoder must escape them) derived from one seed word.
fn str_from(word: u64) -> String {
    let mut w = word.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1;
    let len = (word % 10) as usize;
    let mut s = String::new();
    for _ in 0..len {
        s.push((0x20 + (w % 95) as u8) as char); // all of ' '..='~'
        w = w.rotate_left(11).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    }
    s
}

/// Deterministically folds a stream of seed words into a JSON tree,
/// depth-limited so the encoded document stays within the parser's
/// nesting cap. Consumes words until the stream dries up (then leaves
/// nulls), so the tree shape is entirely proptest-driven.
fn tree_from(words: &mut std::vec::IntoIter<u64>, depth: usize) -> JsonValue {
    let Some(w) = words.next() else {
        return JsonValue::Null;
    };
    match if depth == 0 { w % 4 } else { w % 6 } {
        0 => JsonValue::Null,
        1 => JsonValue::Bool(w & 16 != 0),
        2 => JsonValue::Num(((w % 2_000_001) as i64 - 1_000_000) as f64),
        3 => JsonValue::Str(str_from(w)),
        4 => {
            let n = (w >> 8) % 4;
            JsonValue::Array((0..n).map(|_| tree_from(words, depth - 1)).collect())
        }
        _ => {
            let n = (w >> 8) % 4;
            JsonValue::Object(
                (0..n)
                    .map(|i| {
                        let k = key_from(w.rotate_left(13 + i as u32));
                        (k, tree_from(words, depth - 1))
                    })
                    .collect(),
            )
        }
    }
}

fn tree(seed: Vec<u64>) -> JsonValue {
    tree_from(&mut seed.into_iter(), 3)
}

/// The session-mode answer request, assembled field by field so the
/// properties below can permute the order and splice unknown fields in.
fn answer_request_fields() -> Vec<(String, String)> {
    vec![
        ("op".into(), "\"answer\"".into()),
        ("session".into(), "7".into()),
        ("entity".into(), "\"e\"".into()),
        ("answer".into(), "\"yes\"".into()),
        ("confident".into(), "false".into()),
        ("choice".into(), "2".into()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Totality on arbitrary input: any byte soup either parses or yields
    /// an error whose offset points into (or just past) the input — never
    /// a panic, never an out-of-range position.
    #[test]
    fn parser_is_total_on_arbitrary_input(bytes in prop::collection::vec(0u16..256, 0usize..64)) {
        let text = String::from_utf8_lossy(
            &bytes.iter().map(|&b| b as u8).collect::<Vec<_>>(),
        )
        .into_owned();
        match parse_json(&text) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(
                    e.offset <= text.len(),
                    "offset {} past input length {}", e.offset, text.len()
                );
                let shown = e.to_string();
                prop_assert!(
                    shown.starts_with(&format!("invalid JSON at byte {}: ", e.offset)),
                    "error display drifted: {}", shown
                );
            }
        }
    }

    /// Mutational totality: valid session-mode documents with random bytes
    /// spliced in at random positions still never panic the parser.
    #[test]
    fn parser_survives_corrupted_wire_requests(
        pick in 0usize..4,
        at in 0usize..128,
        junk in prop::collection::vec(0u16..256, 1usize..6),
    ) {
        let base: &str = [
            r#"{"op":"create","collection":"figure1","strategy":"klp","k":2,"prior":[1,50,1,1,1,1,1],"recover":true}"#,
            r#"{"op":"answer","session":1,"entity":"e","answer":"yes","confident":false}"#,
            r#"{"op":"ask","session":3,"choices":3}"#,
            r#"{"op":"answer","session":3,"choice":2}"#,
        ][pick];
        let mut bytes = base.as_bytes().to_vec();
        let at = at % (bytes.len() + 1);
        for (i, b) in junk.iter().enumerate() {
            bytes.insert((at + i).min(bytes.len()), *b as u8);
        }
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let _ = parse_json(&text); // must return, Ok or Err — never panic
    }

    /// Exact round trip: encode(tree) reparses to the identical tree, so
    /// every response shape the service emits is readable by this parser.
    #[test]
    fn encode_parse_round_trip_is_exact(seed in prop::collection::vec(0u64..u64::MAX, 1usize..40)) {
        let v = tree(seed);
        let text = encode(&v);
        let back = parse_json(&text)
            .map_err(|e| TestCaseError::fail(format!("{e} in {text}")))?;
        prop_assert_eq!(&back, &v, "round trip diverged for {}", &text);
    }

    /// Field order never matters and unknown fields are ignored: a
    /// session-mode answer request parses to the same field values under
    /// every permutation, with an arbitrary extra field spliced in.
    #[test]
    fn field_order_and_unknown_fields_are_immaterial(
        perm in prop::collection::vec(0usize..6, 6usize..7),
        extra_at in 0usize..7,
        extra_seed in prop::collection::vec(0u64..u64::MAX, 1usize..12),
    ) {
        let mut fields = answer_request_fields();
        // Sampled-index swaps: a cheap uniform-ish permutation.
        let n = fields.len();
        for (i, &j) in perm.iter().enumerate() {
            fields.swap(i, j % n);
        }
        // An unknown field anywhere must be carried, not rejected.
        fields.insert(
            extra_at % (fields.len() + 1),
            ("x_unknown_extension".into(), encode(&tree(extra_seed))),
        );
        let text = format!(
            "{{{}}}",
            fields
                .iter()
                .map(|(k, v)| format!("\"{k}\":{v}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        let doc = parse_json(&text)
            .map_err(|e| TestCaseError::fail(format!("{e} in {text}")))?;
        prop_assert_eq!(doc.get("op").and_then(JsonValue::as_str), Some("answer"));
        prop_assert_eq!(doc.get("session").and_then(JsonValue::as_u64), Some(7));
        prop_assert_eq!(doc.get("entity").and_then(JsonValue::as_str), Some("e"));
        prop_assert_eq!(doc.get("confident").and_then(JsonValue::as_bool), Some(false));
        prop_assert_eq!(doc.get("choice").and_then(JsonValue::as_u64), Some(2));
        prop_assert!(doc.get("x_unknown_extension").is_some(), "extra field dropped");
    }
}

/// Malformed session-mode payloads: grammar-level breakage is rejected
/// with the byte offset of the offending token, and well-formed JSON with
/// the wrong *type* is caught by the typed accessors the service uses.
#[test]
fn malformed_mode_fields_are_rejected_with_positions() {
    // Grammar-level: (input, offset of the reported error).
    let syntactic = [
        (r#"{"op":"answer","confident":tru}"#, 27),
        (r#"{"op":"answer","choice":0x2}"#, 25),
        (r#"{"op":"create","prior":[1,50,]}"#, 29),
        (r#"{"op":"create","prior":[1 50]}"#, 26),
        (r#"{"op":"answer","confident":False}"#, 27),
        (r#"{"op":"answer","choice":+2}"#, 24),
    ];
    for (text, want_offset) in syntactic {
        let err = parse_json(text).expect_err(text);
        assert_eq!(
            err.offset, want_offset,
            "{text}: reported `{err}` (offset {}), want byte {want_offset}",
            err.offset
        );
        assert_eq!(
            err.to_string(),
            format!("invalid JSON at byte {}: {}", err.offset, err.message)
        );
    }

    // Type-level: parses fine, but the accessor the dispatcher uses says no.
    let doc = parse_json(
        r#"{"confident":0.5,"choice":1.5,"neg":-3,"big":18446744073709551615,"prior":[1,"2"]}"#,
    )
    .unwrap();
    assert_eq!(doc.get("confident").and_then(JsonValue::as_bool), None);
    assert_eq!(doc.get("choice").and_then(JsonValue::as_u64), None);
    assert_eq!(doc.get("neg").and_then(JsonValue::as_u64), None);
    assert_eq!(
        doc.get("big").and_then(JsonValue::as_u64),
        None,
        "2^64-1 is not f64-exact"
    );
    let prior = doc.get("prior").and_then(JsonValue::as_array).unwrap();
    assert_eq!(prior[0].as_u64(), Some(1));
    assert_eq!(prior[1].as_u64(), None, "a quoted weight is not a number");
}
