//! Property coverage for the `obs` metric core's shard-merge argument:
//! splitting a value stream across concurrent per-thread histograms and
//! merging the snapshots must lose no counts, reproduce the sequential
//! bucket state exactly, and keep every quantile within one log2 bucket
//! of a sorted-reference percentile.

use proptest::prelude::*;
use setdisc_util::obs::{bucket_of, Histogram, HistogramSnapshot};

/// The sorted-reference percentile the load harness used to compute by
/// hand: the value at index `round((len-1) · q)`.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Concurrent recording into per-thread histograms, merged in an
    /// arbitrary order, equals one sequential histogram over the same
    /// stream — cell for cell.
    #[test]
    fn concurrent_shard_merge_loses_no_counts(
        values in prop::collection::vec(0u64..1_000_000, 1usize..400),
        threads in 1usize..8,
    ) {
        let shards: Vec<Histogram> = (0..threads).map(|_| Histogram::new()).collect();
        std::thread::scope(|scope| {
            for (t, shard) in shards.iter().enumerate() {
                let chunk: Vec<u64> = values
                    .iter()
                    .copied()
                    .skip(t)
                    .step_by(threads)
                    .collect();
                scope.spawn(move || {
                    for v in chunk {
                        shard.record(v);
                    }
                });
            }
        });
        let mut merged = HistogramSnapshot::default();
        for shard in shards.iter().rev() {
            merged.merge(&shard.snapshot());
        }
        let mut sequential = HistogramSnapshot::default();
        for &v in &values {
            sequential.record(v);
        }
        prop_assert_eq!(merged, sequential);
    }

    /// Every extracted quantile stays within one log2 bucket of the
    /// sorted-reference percentile over the same samples.
    #[test]
    fn quantiles_stay_within_one_bucket_of_sorted_reference(
        values in prop::collection::vec(0u64..10_000_000, 1usize..400),
    ) {
        let mut h = HistogramSnapshot::default();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let exact = exact_percentile(&sorted, q);
            let approx = h.quantile(q);
            prop_assert!(
                bucket_of(exact).abs_diff(bucket_of(approx)) <= 1,
                "q={} exact={} (bucket {}) approx={} (bucket {})",
                q, exact, bucket_of(exact), approx, bucket_of(approx)
            );
        }
    }

    /// One *shared* histogram under true concurrent writers still counts
    /// every event (the lock-free claim: relaxed `fetch_add` per cell).
    #[test]
    fn shared_histogram_is_lock_free_lossless(
        per_thread in 1usize..300,
        threads in 2usize..8,
    ) {
        let h = Histogram::new();
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record((t * 1009 + i * 31) as u64);
                    }
                });
            }
        });
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, (threads * per_thread) as u64);
        prop_assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }
}
