//! Sans-IO discovery engine — Algorithm 2 as a pure state machine.
//!
//! [`Engine`] owns the candidate state of one interactive discovery and
//! exposes exactly three verbs: [`Engine::next_question`] (Algorithm 2,
//! line 6), [`Engine::answer`] (lines 8–12) and [`Engine::outcome`]. No
//! oracle, socket, or prompt appears anywhere in the loop — answer *sources*
//! are drivers layered on top (the [`crate::discovery::Oracle`] adapters,
//! the `discover` CLI, the `setdisc-service` wire protocol), which is what
//! lets one implementation serve in-process evaluation, an interactive
//! terminal, and a concurrent network service with bit-identical question
//! sequences.
//!
//! The engine is generic over *how the collection is held* via
//! [`CollectionRef`]: a borrowed `&Collection` gives the classic scoped
//! [`crate::discovery::Session`], while an `Arc<Collection>` (or any other
//! cheaply-cloneable owning handle) gives [`OwnedSession`] — a `'static`,
//! `Send` value that can be parked in a session table and resumed from any
//! thread. Candidate state is a [`SubStorage`] (sorted id vector plus its
//! dense bitmap) and its 128-bit fingerprint; every narrowing step recycles
//! the storage buffers through the word-parallel
//! [`SubCollection::partition_into`], so steady-state stepping performs no
//! heap allocation beyond what the strategy itself needs.

use crate::collection::Collection;
use crate::discovery::{Answer, Oracle, Outcome};
use crate::entity::{EntityId, SetId};
use crate::error::{Result, SetDiscError};
use crate::strategy::{SelectionDetail, SelectionStrategy};
use crate::subcollection::{SubCollection, SubStorage};
use setdisc_util::{Fingerprint, FxHashSet};
use std::mem;
use std::ops::Deref;
use std::sync::Arc;

/// A shared cache of per-view selections — the engine's pluggable hook for
/// the cross-session plan cache (`setdisc-plan`).
///
/// The engine consults [`Self::lookup`] before running its strategy and
/// calls [`Self::record`] with the strategy's answer after a miss, **only
/// when no entity is excluded** — a "don't know" reply changes what the
/// strategy may pick without changing the view's `(fingerprint, len)`
/// identity, so excluded-path selections are never served from or written
/// to the cache. Losslessness therefore requires exactly what the in-
/// strategy memos already require: implementations must only return
/// selections recorded for the *same* collection and the *same*
/// deterministic strategy configuration (attach nothing for randomized
/// strategies).
pub trait SelectionCache: Send + Sync {
    /// The cached selection for this view, or `None` on a miss.
    fn lookup(&self, view: &SubCollection<'_>) -> Option<EntityId>;

    /// Records a freshly computed selection for this view.
    fn record(&self, view: &SubCollection<'_>, detail: &SelectionDetail);
}

/// A cheaply-cloneable handle to an immutable [`Collection`].
///
/// Blanket-implemented for everything that derefs to a collection —
/// `&Collection`, `Arc<Collection>`, `Rc<Collection>`, and wrapper types
/// such as a service snapshot handle. The engine never mutates the
/// collection; the handle only decides the engine's lifetime story.
pub trait CollectionRef: Deref<Target = Collection> + Clone {}

impl<T: Deref<Target = Collection> + Clone> CollectionRef for T {}

/// The sans-IO discovery state machine (Algorithm 2 of the paper).
///
/// One engine = one discovery in progress: the candidate sets consistent
/// with every answer so far, the selection strategy Υ, the set of entities
/// excluded by "don't know" replies, and the question/answer transcript.
/// Drive it by alternating [`Self::next_question`] and [`Self::answer`]
/// until [`Self::is_resolved`]; or use the [`Self::run`] /
/// [`Self::run_bounded`] drivers when answers come from an [`Oracle`].
pub struct Engine<C, S> {
    collection: C,
    store: SubStorage,
    fp: Fingerprint,
    spare_a: SubStorage,
    spare_b: SubStorage,
    strategy: S,
    plan: Option<Arc<dyn SelectionCache>>,
    excluded: FxHashSet<EntityId>,
    history: Vec<(EntityId, Answer)>,
    questions: usize,
    unknowns: usize,
}

/// A discovery session that owns its collection snapshot — `'static`,
/// storable, and `Send` (given a `Send` strategy), as required to park
/// sessions in a concurrent service table.
pub type OwnedSession<S> = Engine<Arc<Collection>, S>;

impl<C: CollectionRef, S: SelectionStrategy> Engine<C, S> {
    /// Starts an engine over the supersets of `initial` (Algorithm 2,
    /// lines 1–4). An empty `initial` considers every set.
    pub fn new(collection: C, initial: &[EntityId], strategy: S) -> Self {
        let view = collection.supersets_of(initial);
        let fp = view.fingerprint();
        let store = view.into_storage();
        Self::from_parts(collection, store, fp, strategy)
    }

    /// Starts an engine over an explicit candidate id list (sorted and
    /// deduplicated here; panics on an id out of range, mirroring
    /// [`SubCollection::from_ids`]).
    pub fn with_candidates(collection: C, ids: Vec<SetId>, strategy: S) -> Self {
        let view = SubCollection::from_ids(collection.deref(), ids);
        let fp = view.fingerprint();
        let store = view.into_storage();
        Self::from_parts(collection, store, fp, strategy)
    }

    fn from_parts(collection: C, store: SubStorage, fp: Fingerprint, strategy: S) -> Self {
        Self {
            collection,
            store,
            fp,
            spare_a: SubStorage::default(),
            spare_b: SubStorage::default(),
            strategy,
            plan: None,
            excluded: FxHashSet::default(),
            history: Vec::new(),
            questions: 0,
            unknowns: 0,
        }
    }

    /// The collection handle this engine snapshots.
    pub fn collection(&self) -> &C {
        &self.collection
    }

    /// Sorted ids of the candidate sets still consistent with every answer.
    #[inline]
    pub fn candidate_ids(&self) -> &[SetId] {
        &self.store.ids
    }

    /// Number of candidate sets remaining.
    #[inline]
    pub fn candidate_count(&self) -> usize {
        self.store.ids.len()
    }

    /// A fresh view over the current candidates (clones the id list; meant
    /// for inspection and reporting, not the stepping hot path).
    pub fn candidates(&self) -> SubCollection<'_> {
        SubCollection::from_parts_unchecked(
            self.collection.deref(),
            self.store.ids.clone(),
            self.fp,
        )
    }

    /// True when at most one candidate remains.
    pub fn is_resolved(&self) -> bool {
        self.store.ids.len() <= 1
    }

    /// Questions answered yes/no so far.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }

    /// "Don't know" replies received so far.
    pub fn unknowns(&self) -> usize {
        self.unknowns
    }

    /// Full question/answer history, including Unknowns.
    pub fn history(&self) -> &[(EntityId, Answer)] {
        &self.history
    }

    /// Access to the strategy (e.g. to read prune statistics).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Mutable access to the strategy.
    pub fn strategy_mut(&mut self) -> &mut S {
        &mut self.strategy
    }

    /// Attaches (or detaches, with `None`) a shared [`SelectionCache`].
    /// The cache must have been populated by the *same* deterministic
    /// strategy configuration over the *same* collection; see the trait
    /// docs for the losslessness contract.
    pub fn set_selection_cache(&mut self, cache: Option<Arc<dyn SelectionCache>>) {
        self.plan = cache;
    }

    /// Builder form of [`Self::set_selection_cache`].
    pub fn with_selection_cache(mut self, cache: Arc<dyn SelectionCache>) -> Self {
        self.plan = Some(cache);
        self
    }

    /// Selects the next question (Algorithm 2, line 6); `None` when the
    /// session is resolved or every informative entity has been excluded.
    ///
    /// Pure selection: asking is *not* committing. The engine stays
    /// unchanged until [`Self::answer`] is called, and with a deterministic
    /// strategy repeated calls return the same entity — the property the
    /// wire protocol's idempotent `ask` relies on.
    pub fn next_question(&mut self) -> Option<EntityId> {
        if self.is_resolved() {
            return None;
        }
        let store = mem::take(&mut self.store);
        let view = SubCollection::from_storage_unchecked(self.collection.deref(), store, self.fp);
        // The plan cache only speaks for exclusion-free selections (see
        // [`SelectionCache`]): consult it before running the strategy,
        // populate it after a miss. With exclusions (the "don't know"
        // path) selection always runs the strategy directly.
        let pick = match &self.plan {
            Some(cache) if self.excluded.is_empty() => match cache.lookup(&view) {
                Some(entity) => Some(entity),
                None => {
                    let detail = self.strategy.select_with_detail(&view, &self.excluded);
                    if let Some(detail) = &detail {
                        cache.record(&view, detail);
                    }
                    detail.map(|d| d.entity)
                }
            },
            _ => self.strategy.select_excluding(&view, &self.excluded),
        };
        self.store = view.into_storage();
        pick
    }

    /// Applies an answer for `entity` (Algorithm 2, lines 8–12), narrowing
    /// the candidates on Yes/No and excluding the entity on Unknown.
    ///
    /// The caller may apply answers about arbitrary entities (not only the
    /// last selected one) — that is the constraint-assertion API the §6
    /// extensions and the service's out-of-order clients use. Inconsistent
    /// assertions empty the candidate list rather than panicking.
    pub fn answer(&mut self, entity: EntityId, answer: Answer) {
        self.history.push((entity, answer));
        match answer {
            Answer::Yes | Answer::No => {
                self.questions += 1;
                let store = mem::take(&mut self.store);
                let yes_buf = mem::take(&mut self.spare_a);
                let no_buf = mem::take(&mut self.spare_b);
                let view =
                    SubCollection::from_storage_unchecked(self.collection.deref(), store, self.fp);
                let (yes, no) = view.partition_into(entity, yes_buf, no_buf);
                let (keep, discard) = if answer == Answer::Yes {
                    (yes, no)
                } else {
                    (no, yes)
                };
                self.fp = keep.fingerprint();
                // Materialize the surviving ids eagerly: the engine's
                // public accessors ([`Self::candidate_ids`],
                // [`Self::outcome`]) borrow them, and the next
                // [`Self::next_question`] resumes through the
                // materialized-storage fast path.
                let _ = keep.ids();
                self.store = keep.into_storage();
                self.spare_a = discard.into_storage();
                self.spare_b = view.into_storage();
            }
            Answer::Unknown => {
                self.unknowns += 1;
                self.excluded.insert(entity);
            }
        }
    }

    /// Snapshot of the current state as an [`Outcome`].
    pub fn outcome(&self) -> Outcome {
        Outcome {
            candidates: self.store.ids.clone(),
            questions: self.questions,
            unknowns: self.unknowns,
        }
    }

    /// Driver: runs the loop to resolution with no question budget.
    pub fn run(&mut self, oracle: &mut dyn Oracle) -> Result<Outcome> {
        self.run_bounded(oracle, usize::MAX)
    }

    /// Driver: runs until resolved, the budget is exhausted, or no further
    /// question can be asked (the halt condition Γ). This is the only loop
    /// in the crate that touches an [`Oracle`]; it is itself written against
    /// the public sans-IO verbs.
    pub fn run_bounded(
        &mut self,
        oracle: &mut dyn Oracle,
        max_questions: usize,
    ) -> Result<Outcome> {
        while !self.is_resolved() && self.questions < max_questions {
            let Some(entity) = self.next_question() else {
                break; // everything informative excluded — return survivors
            };
            let answer = oracle.answer(entity);
            self.answer(entity, answer);
            if self.store.ids.is_empty() {
                return Err(SetDiscError::ContradictoryAnswers {
                    after_questions: self.questions,
                });
            }
        }
        Ok(self.outcome())
    }
}

impl<'c, S: SelectionStrategy> Engine<&'c Collection, S> {
    /// Starts a borrowed-collection engine over an explicit candidate view
    /// (the classic [`crate::discovery::Session::over`] entry point).
    pub fn over(candidates: SubCollection<'c>, strategy: S) -> Self {
        let collection = candidates.collection();
        let fp = candidates.fingerprint();
        // The view may arrive lazily materialized (e.g. straight out of a
        // partition); the engine's storage invariant requires the id
        // vector, so force the decode before taking the buffers.
        let _ = candidates.ids();
        let store = candidates.into_storage();
        Self::from_parts(collection, store, fp, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvgDepth;
    use crate::discovery::SimulatedOracle;
    use crate::lookahead::KLp;
    use crate::strategy::MostEven;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn owned_sessions_are_static_send_and_resumable_across_threads() {
        fn assert_send<T: Send + 'static>(_: &T) {}
        let collection = Arc::new(figure1());
        let mut engine: OwnedSession<KLp<AvgDepth>> =
            Engine::new(Arc::clone(&collection), &[], KLp::<AvgDepth>::new(2));
        assert_send(&engine);
        // Step once on this thread, finish on another — the table-resume
        // pattern of the service layer.
        let e = engine.next_question().unwrap();
        engine.answer(e, Answer::No);
        let handle = std::thread::spawn(move || {
            let target = engine.collection().set(engine.candidate_ids()[0]).clone();
            let outcome = engine.run(&mut SimulatedOracle::new(&target)).unwrap();
            outcome.discovered().unwrap()
        });
        let _ = handle.join().unwrap();
    }

    #[test]
    fn boxed_send_strategies_compose() {
        // The exact type the service's session table stores.
        let collection = Arc::new(figure1());
        let strategy: Box<dyn SelectionStrategy + Send> = Box::new(KLp::<AvgDepth>::new(2));
        let mut engine: OwnedSession<Box<dyn SelectionStrategy + Send>> =
            Engine::new(collection, &[], strategy);
        let target = engine.collection().set(crate::entity::SetId(4)).clone();
        let outcome = engine.run(&mut SimulatedOracle::new(&target)).unwrap();
        assert_eq!(outcome.discovered(), Some(crate::entity::SetId(4)));
    }

    #[test]
    fn borrowed_and_owned_engines_ask_identical_sequences() {
        let c = figure1();
        let arc = Arc::new(figure1());
        for id in 0..c.len() as u32 {
            let id = crate::entity::SetId(id);
            let target = c.set(id).clone();
            let mut borrowed = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
            let mut owned = Engine::new(Arc::clone(&arc), &[], KLp::<AvgDepth>::new(2));
            loop {
                let qb = borrowed.next_question();
                let qo = owned.next_question();
                assert_eq!(qb, qo, "question divergence at target {id}");
                let Some(e) = qb else { break };
                let a = if target.contains(e) {
                    Answer::Yes
                } else {
                    Answer::No
                };
                borrowed.answer(e, a);
                owned.answer(e, a);
            }
            assert_eq!(borrowed.outcome(), owned.outcome());
            assert_eq!(borrowed.outcome().discovered(), Some(id));
        }
    }

    #[test]
    fn next_question_is_pure_and_repeatable() {
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        let q1 = engine.next_question().unwrap();
        let q2 = engine.next_question().unwrap();
        assert_eq!(q1, q2, "asking must not mutate the candidate state");
        assert_eq!(engine.questions_asked(), 0);
        assert!(engine.history().is_empty());
    }

    #[test]
    fn over_accepts_lazily_materialized_views() {
        // A partition child arrives with its id vector unmaterialized; the
        // engine must still see every candidate (regression: `over` once
        // stored the empty lazy vector, reporting an instantly resolved
        // session).
        let c = figure1();
        let (yes, _) = c.full_view().partition(crate::entity::EntityId(3));
        assert_eq!(yes.len(), 3);
        let mut engine = Engine::over(yes, MostEven::new());
        assert_eq!(engine.candidate_count(), 3);
        assert!(!engine.is_resolved());
        let target = c.set(crate::entity::SetId(1)).clone();
        let outcome = engine.run(&mut SimulatedOracle::new(&target)).unwrap();
        assert_eq!(outcome.discovered(), Some(crate::entity::SetId(1)));
    }

    #[test]
    fn with_candidates_sorts_and_dedups() {
        let c = figure1();
        use crate::entity::SetId;
        let engine =
            Engine::with_candidates(&c, vec![SetId(4), SetId(1), SetId(4)], MostEven::new());
        assert_eq!(engine.candidate_ids(), &[SetId(1), SetId(4)]);
        assert_eq!(engine.candidates().fingerprint(), {
            SubCollection::from_ids(&c, vec![SetId(1), SetId(4)]).fingerprint()
        });
    }

    /// A hash-map [`SelectionCache`] for hook tests (the real sharded,
    /// persistable implementation lives in `setdisc-plan`).
    #[derive(Default)]
    struct TestCache {
        map: std::sync::Mutex<std::collections::HashMap<(u128, usize), EntityId>>,
        hits: std::sync::atomic::AtomicUsize,
        records: std::sync::atomic::AtomicUsize,
    }

    impl SelectionCache for TestCache {
        fn lookup(&self, view: &SubCollection<'_>) -> Option<EntityId> {
            let hit = self
                .map
                .lock()
                .unwrap()
                .get(&(view.fingerprint().as_u128(), view.len()))
                .copied();
            if hit.is_some() {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            hit
        }

        fn record(&self, view: &SubCollection<'_>, detail: &crate::strategy::SelectionDetail) {
            self.records
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.map
                .lock()
                .unwrap()
                .insert((view.fingerprint().as_u128(), view.len()), detail.entity);
        }
    }

    #[test]
    fn selection_cache_serves_identical_sequences_and_skips_exclusions() {
        let c = figure1();
        let cache = Arc::new(TestCache::default());
        let run = |cache: Option<Arc<TestCache>>, unknown_at: Option<usize>| {
            let mut engine = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
            if let Some(cache) = cache {
                engine.set_selection_cache(Some(cache));
            }
            let target = c.set(crate::entity::SetId(4)).clone();
            let mut asked = Vec::new();
            while let Some(e) = engine.next_question() {
                let answer = if unknown_at == Some(asked.len()) {
                    Answer::Unknown
                } else if target.contains(e) {
                    Answer::Yes
                } else {
                    Answer::No
                };
                asked.push(e);
                engine.answer(e, answer);
            }
            (asked, engine.outcome())
        };
        // Cold pass records, warm pass hits; both match the cache-off run.
        let plain = run(None, None);
        let cold = run(Some(Arc::clone(&cache)), None);
        assert!(cache.records.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert_eq!(cache.hits.load(std::sync::atomic::Ordering::Relaxed), 0);
        let warm = run(Some(Arc::clone(&cache)), None);
        assert_eq!(plain, cold);
        assert_eq!(plain, warm);
        assert!(cache.hits.load(std::sync::atomic::Ordering::Relaxed) > 0);
        // An Unknown answer excludes an entity: every later selection must
        // bypass the cache (neither lookups nor records).
        let hits_before = cache.hits.load(std::sync::atomic::Ordering::Relaxed);
        let records_before = cache.records.load(std::sync::atomic::Ordering::Relaxed);
        let with_unknown = run(Some(Arc::clone(&cache)), Some(0));
        assert!(
            with_unknown.0.len() > 1,
            "session continued past the Unknown"
        );
        assert_eq!(
            cache.hits.load(std::sync::atomic::Ordering::Relaxed),
            hits_before + 1,
            "only the pre-Unknown root selection may hit"
        );
        assert_eq!(
            cache.records.load(std::sync::atomic::Ordering::Relaxed),
            records_before,
            "excluded-path selections are never recorded"
        );
        // And the unknown run matches a cache-off run of the same plan.
        assert_eq!(with_unknown, run(None, Some(0)));
    }

    #[test]
    fn partition_buffers_are_recycled() {
        // After the first two answers the three id buffers rotate through
        // the engine; subsequent answers must not grow capacity beyond the
        // initial candidate count.
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        let target = c.set(crate::entity::SetId(5)).clone();
        while let Some(e) = engine.next_question() {
            let a = if target.contains(e) {
                Answer::Yes
            } else {
                Answer::No
            };
            engine.answer(e, a);
        }
        assert_eq!(engine.outcome().discovered(), Some(crate::entity::SetId(5)));
        assert!(engine.spare_a.ids.capacity() <= 7);
        assert!(engine.spare_b.ids.capacity() <= 7);
    }
}
